"""Quantifier elimination layer (the Theorem 3 substitution — see DESIGN.md).

The paper imports quantifier elimination for bounded-expansion classes from
Dvořák–Král–Thomas [7].  This module provides the documented substitute:

* :func:`eliminate_quantifiers` rewrites a formula innermost-first,
  *materializing* each quantified subformula as a fresh relation of the
  structure.  Subformulas with at most one free variable become unary
  predicates — this is Gaifman-preserving and covers the FOC1-style uses
  (Grohe–Schweikardt [12]); the preprocessing is polynomial rather than
  linear, which is the substitution's honesty price.
* Subformulas with ≥ 2 free variables may materialize non-clique tuples,
  which would densify the Gaifman graph; that requires an explicit
  ``allow_densify=True`` opt-in (and is outside the paper's linear-time
  guarantee), except when every answer happens to be a Gaifman clique.
* Existential *sentences* need no elimination at all: summation in B
  introduces existential quantifiers (paper §8), see
  :func:`existential_sentence_value`.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from ..logic.fo import (And, Atom, Eq, Exists, Forall, Formula, LabelAtom,
                        Not, Or, Truth, conj, disj, exists,
                        is_quantifier_free, negate)
from ..logic.naive import StructureModel, eval_formula
from ..logic.weighted import Bracket, Sum
from ..semirings import BOOLEAN
from ..structures import Structure

_FRESH = itertools.count()


def eliminate_quantifiers(structure: Structure, formula: Formula,
                          allow_densify: bool = False) -> Formula:
    """Return a quantifier-free formula equivalent to ``formula`` over the
    (extended) ``structure``; fresh relations are added in place.

    Elimination proceeds innermost-first, so arbitrarily nested
    quantification (including alternation) is supported; each elimination
    costs ``O(n^(free+bound))`` by naive evaluation — the documented
    substitution for [7]'s linear-time procedure.
    """
    if isinstance(formula, (Atom, Eq, Truth, LabelAtom)):
        return formula
    if isinstance(formula, Not):
        return negate(eliminate_quantifiers(structure, formula.inner,
                                            allow_densify))
    if isinstance(formula, And):
        return conj(*(eliminate_quantifiers(structure, p, allow_densify)
                      for p in formula.parts))
    if isinstance(formula, Or):
        return disj(*(eliminate_quantifiers(structure, p, allow_densify)
                      for p in formula.parts))
    if isinstance(formula, (Exists, Forall)):
        inner = eliminate_quantifiers(structure, formula.inner,
                                      allow_densify)
        if isinstance(formula, Forall):
            # ∀ȳ ψ  ==  ¬∃ȳ ¬ψ
            rewritten = negate(_materialize_exists(
                structure, formula.vars, negate(inner), allow_densify))
        else:
            rewritten = _materialize_exists(structure, formula.vars, inner,
                                            allow_densify)
        return rewritten
    raise TypeError(f"unknown formula {formula!r}")


def _materialize_exists(structure: Structure, bound: Tuple[str, ...],
                        matrix: Formula, allow_densify: bool) -> Formula:
    free = tuple(sorted(matrix.free_vars() - set(bound)))
    model = StructureModel(structure)
    if not free:
        # A sentence: fold to a constant.
        value = eval_formula(exists(bound, matrix), model)
        return Truth(value)
    answers: List[Tuple] = []
    for values in itertools.product(structure.domain, repeat=len(free)):
        env = dict(zip(free, values))
        if eval_formula(exists(bound, matrix), model, env):
            answers.append(values)
    if len(free) >= 2 and not allow_densify:
        gaifman = structure.gaifman()
        for tup in answers:
            distinct = list(dict.fromkeys(tup))
            for i, a in enumerate(distinct):
                for b in distinct[i + 1:]:
                    if not gaifman.has_edge(a, b):
                        raise ValueError(
                            f"materializing {len(free)}-ary subformula "
                            f"would add the non-clique tuple {tup!r} and "
                            f"densify the Gaifman graph; pass "
                            f"allow_densify=True to accept the loss of "
                            f"the sparsity guarantee")
    fresh = f"_qe{next(_FRESH)}"
    for tup in answers:
        structure.add_tuple(fresh, tup)
    structure.relations.setdefault(fresh, set())
    structure._arity.setdefault(fresh, len(free))
    return Atom(fresh, free)


def existential_sentence_value(structure: Structure, bound, matrix: Formula
                               ) -> bool:
    """Model-check an existential sentence ``∃x̄ φ`` (φ quantifier-free)
    through the circuit pipeline: summation in the boolean semiring *is*
    existential quantification (paper §8) — no elimination required."""
    from ..core import _compile_structure_query
    if not is_quantifier_free(matrix):
        raise ValueError("matrix must be quantifier-free")
    if isinstance(bound, str):
        bound = (bound,)
    if set(matrix.free_vars()) - set(bound):
        raise ValueError("existential_sentence_value needs a sentence")
    compiled = _compile_structure_query(structure,
                                        Sum(tuple(bound), Bracket(matrix)))
    return compiled.evaluate(BOOLEAN)
