"""Quantifier elimination substitute (system S12) — see DESIGN.md §2."""

from .materialize import eliminate_quantifiers, existential_sentence_value

__all__ = ["eliminate_quantifiers", "existential_sentence_value"]
