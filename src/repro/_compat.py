"""Deprecation plumbing for the pre-``repro.api`` entry points.

PR 4 unified the four historical entry points (``compile_structure_query``
/ ``CompiledQuery``, ``CompiledQuery.dynamic`` / ``DynamicQuery``,
``WeightedQueryEngine``, ``QueryService``) behind the
:class:`repro.api.Database` facade.  The old seams keep working as thin
delegating shims that emit exactly one :class:`DeprecationWarning` per
use; all internal code (the facade itself, the serving layer, fog,
enumeration) reaches the implementations through private constructors
that bypass the warning, so a migrated program is warning-free.
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, new: str, stacklevel: int = 3) -> None:
    """Emit the one shared deprecation warning for an old entry point.

    ``stacklevel`` defaults to 3 so the warning is attributed to the
    *caller* of the deprecated seam (the shims add one frame each).
    """
    warnings.warn(
        f"{old} is deprecated; use {new} (see the repro.api facade and the "
        f"README migration table)",
        DeprecationWarning, stacklevel=stacklevel)
