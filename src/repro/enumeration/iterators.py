"""Bi-directional constant-delay cursors (paper §5, "Iterators").

A cursor ranges cyclically over a nonempty sequence of *monomials* (tuples
of generator identifiers).  ``advance``/``retreat`` move by one position
and report wrap-around — the paper's ``next``/``previous`` modulo length.
Compound cursors (products, concatenations) compose child cursors with
O(1) extra work per step, which is what makes the overall enumerator
constant-delay for bounded-depth circuits.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

Monomial = Tuple[Hashable, ...]


class Cursor:
    """Cyclic bi-directional cursor over a nonempty monomial sequence."""

    def current(self) -> Monomial:
        raise NotImplementedError

    def advance(self) -> bool:
        """Move forward; True when wrapping from the last to the first."""
        raise NotImplementedError

    def retreat(self) -> bool:
        """Move backward; True when wrapping from the first to the last."""
        raise NotImplementedError

    def seek_last(self) -> None:
        """Position on the last element (fresh cursors start at the first)."""
        self.retreat()

    def iterate(self, limit: Optional[int] = None) -> Iterable[Monomial]:
        """One full cycle of monomials (test/demo helper)."""
        count = 0
        while True:
            yield self.current()
            count += 1
            if limit is not None and count >= limit:
                return
            if self.advance():
                return


class ListCursor(Cursor):
    """Cursor over an explicit list (input gates, constants)."""

    def __init__(self, items: Sequence[Monomial]):
        if not items:
            raise ValueError("cursor over an empty list")
        self.items = list(items)
        self.index = 0

    def current(self) -> Monomial:
        return self.items[self.index]

    def advance(self) -> bool:
        self.index += 1
        if self.index == len(self.items):
            self.index = 0
            return True
        return False

    def retreat(self) -> bool:
        self.index -= 1
        if self.index < 0:
            self.index = len(self.items) - 1
            return True
        return False


class ProductCursor(Cursor):
    """Lexicographic product: the monomial is the concatenation of the
    children's monomials; the rightmost child moves fastest."""

    def __init__(self, children: Sequence[Cursor]):
        if not children:
            raise ValueError("product of zero cursors")
        self.children = list(children)

    def current(self) -> Monomial:
        out: Tuple[Hashable, ...] = ()
        for child in self.children:
            out = out + child.current()
        return out

    def advance(self) -> bool:
        for child in reversed(self.children):
            if not child.advance():
                return False
        return True

    def retreat(self) -> bool:
        for child in reversed(self.children):
            if not child.retreat():
                return False
        return True


class ConcatCursor(Cursor):
    """Concatenation of nonempty child enumerations (addition gates).

    ``factories`` produce a fresh cursor per child; children are visited in
    order, cycling back to the first after the last.
    """

    def __init__(self, factories: Sequence[Callable[[], Cursor]]):
        if not factories:
            raise ValueError("concatenation of zero cursors")
        self.factories = list(factories)
        self.position = 0
        self.child = self.factories[0]()

    def current(self) -> Monomial:
        return self.child.current()

    def advance(self) -> bool:
        if not self.child.advance():
            return False
        self.position += 1
        if self.position == len(self.factories):
            self.position = 0
            self.child = self.factories[0]()
            return True
        self.child = self.factories[self.position]()
        return False

    def retreat(self) -> bool:
        wrapped = False
        # A fresh child sits on its first element; retreating from it moves
        # to the previous child's last element.
        if self.child.retreat():
            self.position -= 1
            if self.position < 0:
                self.position = len(self.factories) - 1
                wrapped = True
            self.child = self.factories[self.position]()
            self.child.seek_last()
        return wrapped


class LinkedSet:
    """Insertion-ordered set with O(1) add/remove/first/next/prev.

    The per-type column lists of Lemma 39: doubly linked via dictionaries.
    """

    _HEAD = object()

    def __init__(self):
        self.next: Dict = {self._HEAD: self._HEAD}
        self.prev: Dict = {self._HEAD: self._HEAD}

    def __len__(self) -> int:
        return len(self.next) - 1

    def __contains__(self, item) -> bool:
        return item in self.next

    def add(self, item) -> None:
        if item in self.next:
            return
        tail = self.prev[self._HEAD]
        self.next[tail] = item
        self.prev[item] = tail
        self.next[item] = self._HEAD
        self.prev[self._HEAD] = item

    def remove(self, item) -> None:
        if item not in self.next:
            return
        before, after = self.prev[item], self.next[item]
        self.next[before] = after
        self.prev[after] = before
        del self.next[item]
        del self.prev[item]

    def first(self):
        item = self.next[self._HEAD]
        return None if item is self._HEAD else item

    def last(self):
        item = self.prev[self._HEAD]
        return None if item is self._HEAD else item

    def after(self, item):
        nxt = self.next[item]
        return None if nxt is self._HEAD else nxt

    def before(self, item):
        prv = self.prev[item]
        return None if prv is self._HEAD else prv

    def items(self) -> List:
        out = []
        item = self.first()
        while item is not None:
            out.append(item)
            item = self.after(item)
        return out
