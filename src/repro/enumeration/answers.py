"""Theorems 22 and 24: provenance enumeration and FO answer enumeration.

*Theorem 24* (dynamic query enumeration): for a quantifier-free formula
``φ(x)`` — after quantifier elimination, see ``repro.qe`` — build the
weighted expression ``Σ_x [φ(x)] · w_1(x_1) ··· w_k(x_k)`` whose weights
are unique generators ``e^i_a`` of the free semiring; the circuit's value
is the formal sum with exactly one monomial per answer (the shape
decomposition is mutually exclusive), and the enumeration context yields a
constant-delay, bi-directional, repetition-free enumerator.  Updates that
preserve the Gaifman graph (declared dynamic relations) are constant-time
support flips.

*Theorem 22* (provenance): the same machinery with user-supplied weight
values in the free semiring (Poly objects, generator ids, or explicit
monomial lists).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from ..core import CompiledQuery, _compile_structure_query
from ..logic.fo import Formula, is_quantifier_free
from ..logic.weighted import Bracket, Sum, WExpr, WMul, Weight
from ..semirings import NATURAL, Poly
from ..structures import Structure
from .context import EnumerationContext
from .iterators import Cursor, Monomial

ENUM_WEIGHT = "_answer"


def _monomials_of(value: Any) -> List[Monomial]:
    """Interpret a stored weight value as a list of monomials."""
    if isinstance(value, Poly):
        return list(value.monomials())
    if isinstance(value, list):
        return [tuple(m) for m in value]
    if isinstance(value, bool):
        return [()] if value else []
    if isinstance(value, int):
        return [()] * max(0, value)
    # A bare hashable is a single generator.
    return [(value,)]


def _base_valuation(compiled: CompiledQuery) -> Dict[Hashable, List[Monomial]]:
    base: Dict[Hashable, List[Monomial]] = {}
    for key, (kind, raw) in compiled.recorded.items():
        if kind == "b":
            base[key] = [()] if raw else []
        else:
            base[key] = _monomials_of(raw)
    return base


class ProvenanceEnumerator:
    """Theorem 22: constant-delay enumeration of a query's provenance.

    ``structure`` carries free-semiring weight values; the enumerator
    yields the monomials of ``f_A(w)`` (with repetition multiplicities,
    as in the paper).
    """

    def __init__(self, structure: Structure, expr: WExpr,
                 dynamic_relations: Sequence[str] = (),
                 optimize: bool = True, verify: Optional[bool] = None):
        self.compiled = _compile_structure_query(
            structure, expr, dynamic_relations=dynamic_relations,
            optimize=optimize, verify=verify)
        self.context = EnumerationContext(self.compiled.circuit,
                                          _base_valuation(self.compiled))

    def is_zero(self) -> bool:
        return not self.context.supported()

    def cursor(self) -> Cursor:
        return self.context.cursor()

    def monomials(self) -> Iterator[Monomial]:
        """One full enumeration round (sorted generators per monomial)."""
        if self.is_zero():
            return
        cursor = self.cursor()
        while True:
            yield tuple(sorted(cursor.current(), key=repr))
            if cursor.advance():
                return

    def update_weight(self, name: str, tup: Tuple, value: Any) -> int:
        """Replace a weight's free-semiring value (iterator swap)."""
        compiled = self.compiled
        tup = tuple(tup)
        if tup not in compiled.structure.weights.get(name, {}):
            raise KeyError(f"{name}{tup} was not declared at compile time")
        # Through set_weight so the structure's content caches stay
        # honest, and with the input-gate invalidation hook so the
        # memoized batched-evaluation base goes stale with us.
        compiled.structure.set_weight(name, tup, value)
        key = ("w", name, tup)
        if key not in compiled.recorded:
            return 0
        compiled.recorded[key] = ("w", value)
        compiled._invalidate_inputs()
        return self.context.set_input(key, _monomials_of(value))

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        touched = 0
        for key, state in self.compiled.mark_relation(name, tup, present):
            touched += self.context.set_input(key, [()] if state else [])
        return touched


class AnswerEnumerator:
    """Theorem 24: enumerate the answers of a quantifier-free ``φ(x)``.

    Constant-delay, repetition-free, bi-directional; supports
    Gaifman-preserving updates for relations declared dynamic.  The same
    compiled circuit evaluated in (N, +, ·) counts the answers.
    """

    def __init__(self, structure: Structure, formula: Formula,
                 free_order: Optional[Sequence[str]] = None,
                 dynamic_relations: Sequence[str] = (),
                 optimize: bool = True, verify: Optional[bool] = None):
        if not is_quantifier_free(formula):
            raise ValueError("Theorem 24 applies after quantifier "
                             "elimination; see repro.qe")
        self.vars: Tuple[str, ...] = tuple(
            free_order if free_order is not None
            else sorted(formula.free_vars()))
        if set(self.vars) != set(formula.free_vars()):
            raise ValueError("free_order must list the formula's free "
                             "variables")
        if not self.vars:
            raise ValueError("boolean sentences have no answers to "
                             "enumerate; evaluate [φ] in B instead")
        weight_names = [(ENUM_WEIGHT, i) for i in range(len(self.vars))]
        for name in weight_names:
            for element in structure.domain:
                structure.set_weight(name, (element,), 1)
        expr = Sum(self.vars, WMul(
            (Bracket(formula),)
            + tuple(Weight(name, (var,))
                    for name, var in zip(weight_names, self.vars))))
        self.compiled = _compile_structure_query(
            structure, expr, dynamic_relations=dynamic_relations,
            optimize=optimize, verify=verify)
        base = {}
        for key, (kind, raw) in self.compiled.recorded.items():
            if kind == "b":
                base[key] = [()] if raw else []
            else:
                _, name, tup = key
                if isinstance(name, tuple) and name[0] == ENUM_WEIGHT:
                    base[key] = [((name[1], tup[0]),)]
                else:  # pragma: no cover - φ contains no other weights
                    raise AssertionError(f"unexpected weight input {key!r}")
        self.context = EnumerationContext(self.compiled.circuit, base)

    # -- enumeration -------------------------------------------------------------

    def _decode(self, monomial: Monomial) -> Tuple:
        by_index = dict(monomial)
        return tuple(by_index[i] for i in range(len(self.vars)))

    def has_answers(self) -> bool:
        return self.context.supported()

    def cursor(self) -> "AnswerCursor":
        return AnswerCursor(self.context.cursor(), self._decode)

    def __iter__(self) -> Iterator[Tuple]:
        if not self.has_answers():
            return
        cursor = self.context.cursor()
        while True:
            yield self._decode(cursor.current())
            if cursor.advance():
                return

    def count(self) -> int:
        """Answer count via the same circuit in (N, +, ·)."""
        return self.compiled.evaluate(NATURAL)

    # -- dynamics ----------------------------------------------------------------

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        """Gaifman-preserving update; constant-time support maintenance.
        Outstanding cursors are invalidated (obtain a fresh one)."""
        touched = 0
        for key, state in self.compiled.mark_relation(name, tup, present):
            touched += self.context.set_input(key, [()] if state else [])
        return touched


class AnswerCursor:
    """Bi-directional cursor decoding monomials into answer tuples."""

    def __init__(self, cursor: Cursor, decode):
        self._cursor = cursor
        self._decode = decode

    def current(self) -> Tuple:
        return self._decode(self._cursor.current())

    def advance(self) -> bool:
        return self._cursor.advance()

    def retreat(self) -> bool:
        return self._cursor.retreat()
