"""Provenance & enumeration (systems S9, S10): Theorems 22 and 24."""

from .answers import (ENUM_WEIGHT, AnswerCursor, AnswerEnumerator,
                      ProvenanceEnumerator)
from .context import EnumerationContext, PermCursor, PermSupport
from .iterators import (ConcatCursor, Cursor, LinkedSet, ListCursor,
                        Monomial, ProductCursor)

__all__ = [
    "Cursor", "ListCursor", "ProductCursor", "ConcatCursor", "LinkedSet",
    "Monomial", "EnumerationContext", "PermSupport", "PermCursor",
    "AnswerEnumerator", "AnswerCursor", "ProvenanceEnumerator",
    "ENUM_WEIGHT",
]
