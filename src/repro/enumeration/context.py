"""Enumeration of circuit values in the free semiring (Theorem 22).

An :class:`EnumerationContext` interprets a compiled circuit over the free
semiring F_A, representing every gate's value *lazily* by constant-delay
bi-directional cursors:

* the boolean *support* of every gate (the homomorphism ``F_A -> B`` of
  Lemma 23) is maintained explicitly, with counters on addition and
  multiplication gates and the Lemma 39 column-type structure on permanent
  gates, so one input update costs O(affected gates);
* cursors compose: products are lexicographic, additions walk the linked
  set of supported children, and permanent gates run the recursive
  expansion ``perm(M) = Σ_c M[r,c] · perm(M^{rc})`` with Hall-condition
  matchability tests over column types — constant work per step for a
  bounded number of rows.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..circuits import (AddGate, Circuit, ConstGate, GateId, InputGate,
                        MulGate, PermGate)
from .iterators import (Cursor, LinkedSet, ListCursor, Monomial,
                        ProductCursor)


class PermSupport:
    """Lemma 39's structure for one permanent gate.

    ``col_mask[c]`` is the bitmask of rows whose entry in column ``c`` is
    present and currently supported; columns are bucketed into linked lists
    by mask, with counts, so matchability (Hall's condition over at most
    ``2^k`` types) and candidate iteration are O_k(1).
    """

    def __init__(self, gate: PermGate, supported: Callable[[GateId], bool]):
        self.gate = gate
        self.k = gate.rows
        self.full = (1 << self.k) - 1
        self.col_mask: List[int] = []
        self.lists: Dict[int, LinkedSet] = {}
        self.counts: Dict[int, int] = {}
        for col in range(gate.cols):
            mask = 0
            for row in range(self.k):
                entry = gate.entries[row][col]
                if entry is not None and supported(entry):
                    mask |= 1 << row
            self.col_mask.append(mask)
            self._insert(col, mask)

    def _insert(self, col: int, mask: int) -> None:
        bucket = self.lists.get(mask)
        if bucket is None:
            bucket = self.lists[mask] = LinkedSet()
        bucket.add(col)
        self.counts[mask] = self.counts.get(mask, 0) + 1

    def _discard(self, col: int, mask: int) -> None:
        self.lists[mask].remove(col)
        self.counts[mask] -= 1

    def set_entry_support(self, row: int, col: int, supported: bool) -> None:
        old = self.col_mask[col]
        new = (old | (1 << row)) if supported else (old & ~(1 << row))
        if new == old:
            return
        self._discard(col, old)
        self.col_mask[col] = new
        self._insert(col, new)

    def available(self, mask: int, excluded: Sequence[int]) -> int:
        """Columns of exactly this type, minus specific exclusions."""
        count = self.counts.get(mask, 0)
        for exc in excluded:
            if exc == mask:
                count -= 1
        return count

    def matchable(self, rows_mask: int, excluded_masks: Sequence[int] = ()
                  ) -> bool:
        """Hall's condition: can the rows in ``rows_mask`` be matched to
        distinct supported columns, with ``excluded_masks`` removed?"""
        if rows_mask == 0:
            return True
        # Iterate subsets S of rows_mask; need |N(S)| >= |S|.
        subset = rows_mask
        while True:
            hitting = 0
            for mask, count in self.counts.items():
                if mask & subset:
                    hitting += count
            for exc in excluded_masks:
                if exc & subset:
                    hitting -= 1
            if hitting < bin(subset).count("1"):
                return False
            if subset == 0:
                return True
            subset = (subset - 1) & rows_mask
            if subset == 0:
                return True


class EnumerationContext:
    """Lazy free-semiring evaluation of a circuit with dynamic supports.

    ``base`` maps input keys to lists of monomials (the bi-directional
    iterators of the input weights).  Updates via :meth:`set_input`
    invalidate previously created cursors (the paper's phases: updates and
    enumeration interleave, but an enumerator is obtained fresh after an
    update round).
    """

    def __init__(self, circuit: Circuit,
                 base: Dict[Hashable, Sequence[Monomial]]):
        self.circuit = circuit
        self.live = circuit.live_gates()
        self.live_set = set(self.live)
        self.values: Dict[GateId, List[Monomial]] = {}
        self.support: Dict[GateId, bool] = {}
        self.perm: Dict[GateId, PermSupport] = {}
        #: supported (position, child) pairs per addition gate
        self.add_children: Dict[GateId, LinkedSet] = {}
        self.mul_bad: Dict[GateId, int] = {}
        self.parents: Dict[GateId, List[Tuple[GateId, Tuple]]] = \
            {g: [] for g in self.live}
        self.version = 0
        for gate_id in self.live:
            gate = circuit.gates[gate_id]
            if isinstance(gate, InputGate):
                items = list(base.get(gate.key, []))
                self.values[gate_id] = items
                self.support[gate_id] = bool(items)
            elif isinstance(gate, ConstGate):
                count = gate.value if isinstance(gate.value, int) \
                    else (1 if gate.value else 0)
                items = [()] * max(0, count)
                self.values[gate_id] = items
                self.support[gate_id] = bool(items)
            elif isinstance(gate, AddGate):
                bucket = LinkedSet()
                for position, child in enumerate(gate.children):
                    self.parents[child].append(
                        (gate_id, ("add", position)))
                    if self.support[child]:
                        bucket.add((position, child))
                self.add_children[gate_id] = bucket
                self.support[gate_id] = len(bucket) > 0
            elif isinstance(gate, MulGate):
                bad = 0
                for child in gate.children:
                    self.parents[child].append((gate_id, ("mul",)))
                    if not self.support[child]:
                        bad += 1
                self.mul_bad[gate_id] = bad
                self.support[gate_id] = bad == 0
            elif isinstance(gate, PermGate):
                for row, entries in enumerate(gate.entries):
                    for col, entry in enumerate(entries):
                        if entry is not None:
                            self.parents[entry].append(
                                (gate_id, ("perm", row, col)))
                ps = PermSupport(gate, lambda g: self.support[g])
                self.perm[gate_id] = ps
                self.support[gate_id] = ps.matchable(ps.full)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown gate {gate!r}")

    # -- dynamic maintenance ------------------------------------------------------

    def set_input(self, key: Hashable, monomials: Sequence[Monomial]) -> int:
        """Replace an input's monomial list; maintains supports upward."""
        gate_id = self.circuit.inputs.get(key)
        if gate_id is None or gate_id not in self.live_set:
            return 0
        self.version += 1
        self.values[gate_id] = list(monomials)
        new_support = bool(monomials)
        if new_support == self.support[gate_id]:
            return 1
        return self._flip(gate_id, new_support)

    def _flip(self, gate_id: GateId, new_support: bool) -> int:
        self.support[gate_id] = new_support
        pending: List[GateId] = []
        queued = set()
        self._notify_parents(gate_id, new_support, pending, queued)
        touched = 1
        while pending:
            current = heapq.heappop(pending)
            queued.discard(current)
            touched += 1
            gate = self.circuit.gates[current]
            if isinstance(gate, AddGate):
                new = len(self.add_children[current]) > 0
            elif isinstance(gate, MulGate):
                new = self.mul_bad[current] == 0
            else:
                ps = self.perm[current]
                new = ps.matchable(ps.full)
            if new == self.support[current]:
                continue
            self.support[current] = new
            self._notify_parents(current, new, pending, queued)
        return touched

    def _notify_parents(self, gate_id: GateId, supported: bool,
                        pending: List[GateId], queued: set) -> None:
        for parent, position in self.parents[gate_id]:
            kind = position[0]
            if kind == "add":
                pair = (position[1], gate_id)
                if supported:
                    self.add_children[parent].add(pair)
                else:
                    self.add_children[parent].remove(pair)
            elif kind == "mul":
                self.mul_bad[parent] += -1 if supported else 1
            else:
                _, row, col = position
                self.perm[parent].set_entry_support(row, col, supported)
            if parent not in queued:
                queued.add(parent)
                heapq.heappush(pending, parent)

    # -- cursors ---------------------------------------------------------------

    def supported(self) -> bool:
        return self.support[self.circuit.output]

    def cursor(self, gate_id: Optional[GateId] = None) -> Cursor:
        """A fresh cursor over the gate's monomials (gate must be
        supported); default: the output gate."""
        if gate_id is None:
            gate_id = self.circuit.output
        if not self.support[gate_id]:
            raise ValueError("cannot enumerate an unsupported (zero) gate")
        gate = self.circuit.gates[gate_id]
        if isinstance(gate, (InputGate, ConstGate)):
            return ListCursor(self.values[gate_id])
        if isinstance(gate, AddGate):
            return ConcatCursorLinked(self, gate_id)
        if isinstance(gate, MulGate):
            return ProductCursor([self.cursor(c) for c in gate.children])
        if isinstance(gate, PermGate):
            return PermCursor(self, gate_id)
        raise TypeError(f"unknown gate {gate!r}")  # pragma: no cover


class ConcatCursorLinked(Cursor):
    """ConcatCursor over a LinkedSet of (position, child) pairs."""

    def __init__(self, ctx: EnumerationContext, gate_id: GateId):
        self.ctx = ctx
        self.linked = ctx.add_children[gate_id]
        self.item = self.linked.first()
        self.child = ctx.cursor(self.item[1])

    def current(self) -> Monomial:
        return self.child.current()

    def advance(self) -> bool:
        if not self.child.advance():
            return False
        nxt = self.linked.after(self.item)
        wrapped = nxt is None
        self.item = self.linked.first() if wrapped else nxt
        self.child = self.ctx.cursor(self.item[1])
        return wrapped

    def retreat(self) -> bool:
        wrapped = False
        if self.child.retreat():
            prv = self.linked.before(self.item)
            wrapped = prv is None
            self.item = self.linked.last() if wrapped else prv
            self.child = self.ctx.cursor(self.item[1])
            self.child.seek_last()
        return wrapped


class PermCursor(Cursor):
    """Lemma 23: bi-directional enumeration of a permanent gate's value.

    Levels follow the fixed row order; each level holds a chosen column
    (valid: entry supported, unused, remainder matchable) and a cursor into
    the entry's own monomials.  Steps are O_k(1): candidate columns come
    from the per-type linked lists, skipping at most ``k`` used columns.
    """

    def __init__(self, ctx: EnumerationContext, gate_id: GateId):
        self.ctx = ctx
        self.gate: PermGate = ctx.circuit.gates[gate_id]
        self.ps = ctx.perm[gate_id]
        self.k = self.ps.k
        self.columns: List[Optional[int]] = [None] * self.k
        self.entry_cursors: List[Optional[Cursor]] = [None] * self.k
        if not self._build_from(0, last=False):  # pragma: no cover
            raise ValueError("permanent gate is unsupported")

    # -- helpers ---------------------------------------------------------------

    def _used_masks(self, level: int) -> List[int]:
        return [self.ps.col_mask[self.columns[i]] for i in range(level)]

    def _rest_mask(self, level: int) -> int:
        """Rows strictly below ``level`` (still to be assigned)."""
        return self.ps.full & ~((1 << (level + 1)) - 1)

    def _mask_ok(self, level: int, mask: int) -> bool:
        if not (mask >> level) & 1:
            return False
        used = self._used_masks(level)
        if self.ps.available(mask, used) < 1:
            return False
        return self.ps.matchable(self._rest_mask(level), used + [mask])

    def _valid_masks(self, level: int) -> List[int]:
        return [m for m in sorted(self.ps.lists)
                if self.ps.counts.get(m, 0) > 0 and self._mask_ok(level, m)]

    def _col_ok(self, level: int, col: int) -> bool:
        return col not in self.columns[:level]

    def _scan(self, level: int, mask: int, col: Optional[int],
              forward: bool) -> Optional[int]:
        """Next unused column of this type after/before ``col`` (or the
        first/last when ``col`` is None); skips at most k used columns."""
        bucket = self.ps.lists[mask]
        if col is None:
            col = bucket.first() if forward else bucket.last()
        else:
            col = bucket.after(col) if forward else bucket.before(col)
        while col is not None and not self._col_ok(level, col):
            col = bucket.after(col) if forward else bucket.before(col)
        return col

    def _enter_level(self, level: int, last: bool) -> bool:
        """Position ``level`` on its first (or last) valid column."""
        masks = self._valid_masks(level)
        if not masks:
            return False
        ordered = masks if not last else list(reversed(masks))
        for mask in ordered:
            col = self._scan(level, mask, None, forward=not last)
            if col is not None:
                self._set_column(level, col, last)
                return True
        return False  # pragma: no cover - masks imply availability

    def _set_column(self, level: int, col: int, last: bool) -> None:
        self.columns[level] = col
        entry = self.gate.entries[level][col]
        cursor = self.ctx.cursor(entry)
        if last:
            cursor.seek_last()
        self.entry_cursors[level] = cursor

    def _build_from(self, level: int, last: bool) -> bool:
        for lvl in range(level, self.k):
            if not self._enter_level(lvl, last):
                return False
        return True

    def _shift_column(self, level: int, forward: bool) -> bool:
        """Move this level to the next/previous valid column."""
        current = self.columns[level]
        mask = self.ps.col_mask[current]
        col = self._scan(level, mask, current, forward)
        if col is not None:
            self._set_column(level, col, last=not forward)
            return True
        masks = self._valid_masks(level)
        index = masks.index(mask) if mask in masks else -1
        candidates = masks[index + 1:] if forward else \
            list(reversed(masks[:index])) if index >= 0 else []
        for nxt in candidates:
            col = self._scan(level, nxt, None, forward)
            if col is not None:
                self._set_column(level, col, last=not forward)
                return True
        return False

    # -- Cursor interface --------------------------------------------------------

    def current(self) -> Monomial:
        out: Tuple[Hashable, ...] = ()
        for cursor in self.entry_cursors:
            out = out + cursor.current()
        return out

    def _step(self, forward: bool) -> bool:
        """One odometer step over the digit sequence
        ``col_0, ent_0, ..., col_{k-1}, ent_{k-1}`` (rightmost fastest).

        When a level's entry cursor moves without wrapping, or its column
        shifts, all deeper levels reset to their first (resp. last)
        configuration — which always succeeds because the shallower prefix
        was chosen rest-matchable.
        """
        last = not forward
        for level in reversed(range(self.k)):
            cursor = self.entry_cursors[level]
            wrapped = cursor.advance() if forward else cursor.retreat()
            if not wrapped:
                if not self._build_from(level + 1, last):  # pragma: no cover
                    raise AssertionError("prefix lost its completion")
                return False
            if self._shift_column(level, forward):
                if not self._build_from(level + 1, last):  # pragma: no cover
                    raise AssertionError("matchable column lost completion")
                return False
        self._build_from(0, last)
        return True

    def advance(self) -> bool:
        return self._step(forward=True)

    def retreat(self) -> bool:
        return self._step(forward=False)
