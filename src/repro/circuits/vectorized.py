"""Vectorized batched evaluation over a layer schedule (NumPy backend).

:class:`VectorizedEvaluator` evaluates one circuit over an N-valuation
batch layer by layer (see :mod:`repro.circuits.schedule`): all values
live in one ``(num_gates, N)`` array, and each ``add``/``mul`` group of
``g`` gates with uniform fan-in ``f`` is evaluated with two NumPy
operations — a fancy-index gather ``V[children] -> (g, f, N)`` and an
elementwise reduction over the fan-in axis.  Per-gate Python dispatch,
the cost that dominates :class:`~repro.circuits.evaluation.BatchedEvaluator`,
is amortized over whole groups.

A semiring participates through an :class:`ArrayKernel` — a dtype plus
the two fan-in reductions.  Kernels ship for the numeric carriers and
the tropical carriers (min-plus, max-plus, min-max on ``float64``);
semirings without an array carrier (boolean, provenance, finite tables,
products) report no kernel and callers fall back to the pure-Python
:class:`~repro.circuits.evaluation.BatchedEvaluator`.

The exact carriers (``N``/``Z``/``Q``) default to *overflow-guarded
native fast paths* instead of the historically object-dtype kernels:

* ``N``/``Z`` evaluate on ``int64`` arrays.  Every fan-in reduction
  steps through checked binary ops — the two's-complement sign trick
  for additions, a division-based product check (with a magnitude
  pre-filter so the in-range hot path pays no division) for
  multiplications — so a wrapped result can never go unnoticed.  No
  ``np.errstate`` machinery is involved: NumPy integer arrays wrap
  silently and the guards are explicit bound checks.
* ``Q`` evaluates on ``float64`` when every input is an integer-valued
  rational inside the exact-float window (|v| < 2^53) — the
  small-denominator detection — guarding each reduction step against
  leaving that window, where float arithmetic on integers is provably
  exact.

Any guard trip *promotes* the evaluation: the value array is converted
to the exact object carrier, the affected group is re-reduced on the
object kernel (its children are still exact — trips are detected before
a wrapped value is consumed), and the remaining layers run on the
object kernel.  Results are therefore always exact; the fast path only
ever costs a retry, never a wrong answer.  ``exact_mode`` (validated in
:mod:`repro.circuits.backends`) selects the kernel: ``"auto"``/
``"int64"`` pick the guarded fast path, ``"object"`` forces the exact
object-dtype kernel.  Evaluators report ``kernel_requested`` /
``kernel_used`` / ``fallbacks`` so callers (``CompiledQuery.stats()``,
``PreparedQuery.explain()``) can say which kernel actually ran.

Note the tropical kernels realize the carrier ``R u {inf}`` as
``float64``: weights outside the 2^53 exact-integer window (or exact
``Fraction`` weights) are rounded, where the pure-Python backend would
keep Python's unbounded arithmetic.  Pass ``backend="python"`` (or
:func:`register_kernel` an object-dtype kernel) when tropical weights
need exactness beyond ``float64``.  Permanent gates
have no rectangular reduction and are evaluated per gate with the exact
semiring permanent, reading operands out of (and writing back into) the
value array.

NumPy itself is optional: this module imports without it and
:data:`HAVE_NUMPY` / :func:`kernel_for` let callers pick a backend.
"""

from __future__ import annotations

import math as _math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Type

from ..algebra import permanent
from ..semirings import (FloatField, IntegerRing, MaxPlus, MinMax, MinPlus,
                         NaturalSemiring, RationalField, Semiring)
from .backends import validate_exact_mode
from .evaluation import Valuation
from .gates import Circuit, GateId, PermGate
from .schedule import (KIND_ADD, KIND_MUL, KIND_PERM, LayerSchedule,
                       build_schedule)

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when NumPy importing succeeded and the backend is usable.
HAVE_NUMPY = _np is not None


class GuardTrip(Exception):
    """Internal signal: a value cannot be represented on the fast path
    (caught by the evaluator, which promotes to the object kernel)."""


@dataclass(frozen=True)
class ArrayKernel:
    """How one semiring maps onto NumPy arrays.

    ``add_reduce``/``mul_reduce`` fold the semiring ``+``/``*`` over one
    axis of a stacked array (signature ``(array, axis) -> array``);
    ``dtype`` is the carrier dtype (``object`` keeps exact Python
    arithmetic, e.g. unbounded ints and :class:`~fractions.Fraction`).

    A *guarded* kernel (``checked=True``) is a native fast path whose
    reductions return ``(array, tripped)`` instead of a bare array and
    whose ``fallback`` is the exact kernel to promote to when a guard
    trips (or an input does not fit the native dtype):

    ``cast_in``
        Per-value conversion into the native dtype, raising
        :class:`GuardTrip` for unrepresentable values (``None`` when
        NumPy's own conversion errors — ``OverflowError`` for int64 —
        already police the dtype).
    ``cast_out``
        Per-value conversion of native results back into the carrier
        (``None`` when ``tolist()`` already yields carrier values).
    ``promote``
        Whole-array conversion into the ``fallback`` kernel's exact
        object representation, used mid-evaluation on a guard trip.
    """

    name: str
    dtype: Any
    add_reduce: Callable[[Any, int], Any]
    mul_reduce: Callable[[Any, int], Any]
    checked: bool = False
    fallback: Optional["ArrayKernel"] = None
    cast_in: Optional[Callable[[Any], Any]] = None
    cast_out: Optional[Callable[[Any], Any]] = None
    promote: Optional[Callable[[Any], Any]] = None


#: Semiring type -> kernel factory (instance -> kernel or None).
_KERNEL_FACTORIES: Dict[Type[Semiring],
                        Callable[[Semiring], Optional[ArrayKernel]]] = {}


def register_kernel(semiring_type: Type[Semiring],
                    factory: Callable[[Semiring], Optional[ArrayKernel]]
                    ) -> None:
    """Register an array carrier for a semiring type (extension point)."""
    _KERNEL_FACTORIES[semiring_type] = factory


def kernel_for(sr: Semiring,
               exact_mode: str = "auto") -> Optional[ArrayKernel]:
    """The array kernel for ``sr``, or ``None`` (no array carrier or no
    NumPy) — the caller's cue to fall back to the pure-Python backend.

    ``exact_mode`` selects among a guarded kernel's variants:
    ``"auto"``/``"int64"`` return the guarded native fast path,
    ``"object"`` its exact object-dtype fallback.  Kernels without a
    guarded variant (floats, tropical, extensions) ignore the knob.
    """
    validate_exact_mode(exact_mode)
    if not HAVE_NUMPY:
        return None
    factory = _KERNEL_FACTORIES.get(type(sr))
    if factory is None:
        return None
    kernel = factory(sr)
    if kernel is not None and exact_mode == "object" \
            and kernel.fallback is not None:
        return kernel.fallback
    return kernel


# -- overflow-guarded reductions ------------------------------------------------

_INT64_MAX = 2 ** 63 - 1
_INT64_MIN = -(2 ** 63)
#: The exact-integer window of float64: integer arithmetic staying
#: strictly below this magnitude is provably exact.
_F64_EXACT = float(2 ** 53)


def _int_nth_root(maximum: int, n: int) -> int:
    """The largest ``b >= 1`` with ``b ** n <= maximum`` (small ``n``)."""
    if n <= 1:
        return maximum
    root = int(maximum ** (1.0 / n))
    while root ** n > maximum:
        root -= 1
    while (root + 1) ** n <= maximum:
        root += 1
    return max(root, 1)


#: fan-in -> per-operand magnitude bound under which a whole group's
#: sum (resp. product) provably fits int64 — the one-pass prechecks.
_ADD_BOUNDS: Dict[int, int] = {}
_MUL_BOUNDS: Dict[int, int] = {}


def _within_int64(stacked, bound: int) -> bool:
    """Every element in ``[-bound, bound]`` — two allocation-free
    reduction passes (min/max, which unlike ``np.abs`` cannot be
    defeated by ``INT64_MIN`` wrapping)."""
    return stacked.size == 0 or \
        (int(stacked.min()) >= -bound and int(stacked.max()) <= bound)


def _checked_int64_add(stacked, axis: int):
    """int64 fan-in sum with overflow detection (no ``np.errstate``).

    Fast tier: one bounds pass — every operand within ``INT64_MAX //
    fan_in`` makes the whole reduction provably safe, and the plain C
    reduce runs.  Slow tier: step through the fan-in with the
    two's-complement sign trick (``a + b`` wrapped iff the result's
    sign differs from both operands': ``((a ^ c) & (b ^ c)) < 0``).
    Exact — no false positives, so e.g. a sum landing exactly on
    ``2^63 - 1`` stays on the fast path.
    """
    width = stacked.shape[axis]
    if width == 0:
        return _np.add.reduce(stacked, axis=axis), False
    bound = _ADD_BOUNDS.get(width)
    if bound is None:
        bound = _ADD_BOUNDS.setdefault(width, _INT64_MAX // width)
    if _within_int64(stacked, bound):
        return _np.add.reduce(stacked, axis=axis), False
    acc = stacked.take(0, axis=axis)
    for step in range(1, width):
        term = stacked.take(step, axis=axis)
        total = acc + term  # wraps silently on overflow
        if (((acc ^ total) & (term ^ total)) < 0).any():
            return acc, True
        acc = total
    return acc, False


def _checked_int64_mul(stacked, axis: int):
    """int64 fan-in product with overflow detection (no ``np.errstate``).

    Fast tier: one bounds pass — every operand within the fan_in-th
    root of ``INT64_MAX`` makes the product provably safe.  Slow tier:
    per-step exact division check (``c // b == a`` iff no wrap, since a
    wrap shifts the quotient by at least ``2^64 / |b| > 1``), with the
    one case whose division itself overflows (``INT64_MIN * -1``)
    masked explicitly.
    """
    width = stacked.shape[axis]
    if width == 0:
        return _np.multiply.reduce(stacked, axis=axis), False
    bound = _MUL_BOUNDS.get(width)
    if bound is None:
        bound = _MUL_BOUNDS.setdefault(width,
                                       _int_nth_root(_INT64_MAX, width))
    if _within_int64(stacked, bound):
        return _np.multiply.reduce(stacked, axis=axis), False
    acc = stacked.take(0, axis=axis)
    for step in range(1, width):
        term = stacked.take(step, axis=axis)
        min_mul = ((acc == _INT64_MIN) & (term == -1)) \
            | ((term == _INT64_MIN) & (acc == -1))
        divisor = _np.where((term == 0) | min_mul, 1, term)
        product = acc * term  # wraps silently on overflow
        wrapped = ((term != 0) & (product // divisor != acc)) | min_mul
        if wrapped.any():
            return acc, True
        acc = product
    return acc, False


def _checked_f64int_add(stacked, axis: int):
    """Integer-valued float64 fan-in sum, guarded to the exact window.

    Every operand is an exact integer with |v| < 2^53 (the input cast
    enforces it).  Fast tier: all operands within ``2^53 / fan_in``
    keep every partial sum exact — plain C reduce.  Slow tier: step and
    trip the moment a partial sum leaves the window.
    """
    width = stacked.shape[axis]
    if width == 0:
        return _np.add.reduce(stacked, axis=axis), False
    bound = _F64_EXACT / width
    if stacked.size == 0 or \
            (-bound < stacked.min() and stacked.max() < bound):
        return _np.add.reduce(stacked, axis=axis), False
    acc = stacked.take(0, axis=axis)
    for step in range(1, width):
        acc = acc + stacked.take(step, axis=axis)
        if (_np.abs(acc) >= _F64_EXACT).any():
            return acc, True
    return acc, False


def _checked_f64int_mul(stacked, axis: int):
    """Integer-valued float64 fan-in product, guarded to the exact window."""
    width = stacked.shape[axis]
    if width == 0:
        return _np.multiply.reduce(stacked, axis=axis), False
    bound = float(_int_nth_root(2 ** 53 - 1, width))
    if stacked.size == 0 or \
            (-bound <= stacked.min() and stacked.max() <= bound):
        return _np.multiply.reduce(stacked, axis=axis), False
    acc = stacked.take(0, axis=axis)
    for step in range(1, width):
        acc = acc * stacked.take(step, axis=axis)
        if (_np.abs(acc) >= _F64_EXACT).any():
            return acc, True
    return acc, False


def _q_cast_in(value: Any) -> float:
    """A ``Q`` carrier value as an exact float64, or :class:`GuardTrip`.

    The small-denominator detection: only integer-valued rationals
    inside the exact-float window ride the fast path (a denominator
    > 1 — or a blown-up one from e.g. PageRank weights — falls back to
    the exact object kernel before any precision is lost).
    """
    if isinstance(value, Fraction):
        if value.denominator != 1:
            raise GuardTrip(value)
        value = value.numerator
    elif not isinstance(value, int):  # floats/decimals: keep object path
        raise GuardTrip(value)
    if not -(2 ** 53) < value < 2 ** 53:
        raise GuardTrip(value)
    return float(value)


def _q_cast_out(value: float) -> Fraction:
    return Fraction(int(value))


def _q_promote(value: float) -> Fraction:
    """Total over arbitrary float bit patterns: mid-run promotion walks
    the *whole* value array, whose not-yet-computed (and never-scheduled
    dead-gate) slots still hold ``np.empty`` heap garbage — possibly
    NaN/Inf, which ``int()`` rejects.  Those slots are always written
    before any read, so garbage maps to a placeholder, never an error."""
    if not _math.isfinite(value):
        return Fraction(0)
    return Fraction(int(value))


def _register_default_kernels() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - numpy-less interpreter
        return

    def int64_kernel(sr: Semiring) -> ArrayKernel:
        exact = ArrayKernel(name=f"{sr.name}-object", dtype=object,
                            add_reduce=_np.add.reduce,
                            mul_reduce=_np.multiply.reduce)
        return ArrayKernel(
            name=f"{sr.name}-int64", dtype=_np.int64,
            add_reduce=_checked_int64_add, mul_reduce=_checked_int64_mul,
            checked=True, fallback=exact,
            promote=lambda array: array.astype(object))

    for semiring_type in (NaturalSemiring, IntegerRing):
        register_kernel(semiring_type, int64_kernel)

    def rational_kernel(sr: Semiring) -> ArrayKernel:
        exact = ArrayKernel(name=f"{sr.name}-object", dtype=object,
                            add_reduce=_np.add.reduce,
                            mul_reduce=_np.multiply.reduce)
        return ArrayKernel(
            name=f"{sr.name}-f64int", dtype=_np.float64,
            add_reduce=_checked_f64int_add, mul_reduce=_checked_f64int_mul,
            checked=True, fallback=exact,
            cast_in=_q_cast_in, cast_out=_q_cast_out,
            promote=_np.frompyfunc(_q_promote, 1, 1))

    register_kernel(RationalField, rational_kernel)
    register_kernel(FloatField, lambda sr: ArrayKernel(
        name="float64", dtype=_np.float64,
        add_reduce=_np.add.reduce, mul_reduce=_np.multiply.reduce))
    register_kernel(MinPlus, lambda sr: ArrayKernel(
        name="min-plus-f64", dtype=_np.float64,
        add_reduce=_np.minimum.reduce, mul_reduce=_np.add.reduce))
    register_kernel(MaxPlus, lambda sr: ArrayKernel(
        name="max-plus-f64", dtype=_np.float64,
        add_reduce=_np.maximum.reduce, mul_reduce=_np.add.reduce))
    register_kernel(MinMax, lambda sr: ArrayKernel(
        name="min-max-f64", dtype=_np.float64,
        add_reduce=_np.minimum.reduce, mul_reduce=_np.maximum.reduce))


_register_default_kernels()


def _index_plan(schedule: LayerSchedule) -> Dict[int, Any]:
    """Per-group NumPy index arrays, memoized on the schedule object.

    Schedules (like circuits) are immutable once built, so the plan is
    computed once per schedule and reused across evaluations/batches.
    """
    plan = getattr(schedule, "_vector_plan", None)
    if plan is None:
        plan = {}
        for layer in schedule.layers:
            for group in layer.groups:
                if group.kind in (KIND_ADD, KIND_MUL):
                    plan[id(group)] = (
                        _np.array(group.gate_ids, dtype=_np.intp),
                        _np.array(group.children, dtype=_np.intp))
        schedule._vector_plan = plan
    return plan


@dataclass(frozen=True)
class PreparedBase:
    """A precomputed base input column for override batches: the input
    gates' base values as one ``(slots, 1)`` array, plus the key->slot
    map, the gate-id list to scatter the filled matrix with, and the
    name of the kernel whose dtype the column is in (a guarded kernel's
    base build falls back to its object kernel when a base value does
    not fit the native dtype)."""

    column: Any
    slot_of: Dict[Any, int]
    gate_ids: List[GateId]
    kernel_name: str = ""


class VectorizedEvaluator:
    """Evaluate one circuit over N valuations, one layer at a time.

    Mirrors :class:`~repro.circuits.evaluation.BatchedEvaluator`'s
    interface (``results`` / ``value`` / ``values_of``).  Construct with
    N valuation callables, or — much faster when the batch is a set of
    sparse edits of one base valuation — via :meth:`from_overrides`,
    which broadcasts the base input column once and then applies only
    the per-valuation overrides.

    After construction, ``kernel_requested`` / ``kernel_used`` name the
    kernel asked for and the one that actually produced the results,
    and ``fallbacks`` counts the guard trips that promoted (part of)
    the evaluation onto the exact object kernel.
    """

    def __init__(self, circuit: Circuit, sr: Semiring,
                 valuations: Sequence[Valuation],
                 schedule: Optional[LayerSchedule] = None,
                 kernel: Optional[ArrayKernel] = None):
        self._prepare(circuit, sr, len(valuations), schedule, kernel)
        rows = [[valuation(key) for valuation in valuations]
                for _, key in self.schedule.input_gates]
        self._load_inputs(rows)
        self._run()

    @classmethod
    def prepare_base(cls, circuit: Circuit, sr: Semiring,
                     base: Mapping[Any, Any],
                     schedule: Optional[LayerSchedule] = None,
                     kernel: Optional[ArrayKernel] = None) -> "PreparedBase":
        """Precompute the base input column for :meth:`from_overrides`.

        Serving workloads evaluate thousands of override batches against
        one slowly-changing base valuation; rebuilding the column (a walk
        over every input gate) per batch is pure overhead.  The returned
        :class:`PreparedBase` is immutable — build a new one when the
        base valuation changes (``CompiledQuery`` memoizes this, keyed by
        its update epoch and the kernel).  A base value that does not
        fit a guarded kernel's native dtype drops the whole column to
        the kernel's exact fallback (recorded in ``kernel_name``)."""
        if schedule is None:
            schedule = build_schedule(circuit)
        if kernel is None:
            kernel = kernel_for(sr)
            if kernel is None:
                raise ValueError(f"semiring {sr.name} has no array kernel")
        zero = sr.zero
        input_gates = schedule.input_gates
        raw = [base.get(key, zero) for _, key in input_gates]
        while True:
            try:
                data = raw if kernel.cast_in is None \
                    else [kernel.cast_in(value) for value in raw]
                column = _np.array(data,
                                   dtype=kernel.dtype).reshape(-1, 1)
                break
            except (OverflowError, GuardTrip):
                if kernel.fallback is None:
                    raise
                kernel = kernel.fallback
        return PreparedBase(
            column=column,
            slot_of={key: slot for slot, (_, key) in enumerate(input_gates)},
            gate_ids=[gate_id for gate_id, _ in input_gates],
            kernel_name=kernel.name)

    @classmethod
    def from_overrides(cls, circuit: Circuit, sr: Semiring,
                       base: "Mapping[Any, Any] | PreparedBase",
                       overrides: Sequence[Mapping[Any, Any]],
                       schedule: Optional[LayerSchedule] = None,
                       kernel: Optional[ArrayKernel] = None
                       ) -> "VectorizedEvaluator":
        """Batch = ``base`` valuation + one sparse override mapping per
        batch element (unknown override keys are ignored, matching the
        mapping semantics of ``CompiledQuery.evaluate_batch``).  ``base``
        is either a plain mapping or a :class:`PreparedBase` from
        :meth:`prepare_base` (the amortized form)."""
        self = cls.__new__(cls)
        self._prepare(circuit, sr, len(overrides), schedule, kernel)
        if not isinstance(base, PreparedBase):
            base = cls.prepare_base(self.circuit, sr, base,
                                    schedule=self.schedule,
                                    kernel=self.kernel)
        column = base.column
        if base.kernel_name != self.kernel.name and self.kernel.checked:
            # The base column was (or was memoized) already demoted to
            # the exact kernel — the whole evaluation follows it there.
            column = self._fall_back_input(column)
        try:
            matrix = self._fill_overrides(column, base.slot_of, overrides)
        except (OverflowError, GuardTrip):
            # An override value does not fit the native dtype: demote
            # the base column and refill on the exact kernel.
            matrix = self._fill_overrides(self._fall_back_input(column),
                                          base.slot_of, overrides)
        self._values[base.gate_ids] = matrix
        self._run()
        return self

    @classmethod
    def from_uniform_overrides(cls, circuit: Circuit, sr: Semiring,
                               base: "Mapping[Any, Any] | PreparedBase",
                               key_columns: Sequence[Sequence[Any]],
                               value: Any,
                               schedule: Optional[LayerSchedule] = None,
                               kernel: Optional[ArrayKernel] = None
                               ) -> "VectorizedEvaluator":
        """Batch column ``i`` = ``base`` with every key of
        ``key_columns[i]`` overridden to the *same* carrier ``value``.

        This is the grouped-aggregation sweep (each group raises its
        selector weights to ``sr.one``): because all overrides share one
        value, the whole batch's edits collapse into a single fancy-index
        scatter ``matrix[slots, columns] = cast(value)`` instead of the
        per-column dict fills of :meth:`from_overrides`.  Unknown keys
        are ignored, matching the override mapping semantics.
        """
        self = cls.__new__(cls)
        self._prepare(circuit, sr, len(key_columns), schedule, kernel)
        if not isinstance(base, PreparedBase):
            base = cls.prepare_base(self.circuit, sr, base,
                                    schedule=self.schedule,
                                    kernel=self.kernel)
        column = base.column
        if base.kernel_name != self.kernel.name and self.kernel.checked:
            column = self._fall_back_input(column)
        slot_of = base.slot_of
        rows: List[int] = []
        cols: List[int] = []
        for index, keys in enumerate(key_columns):
            for key in keys:
                slot = slot_of.get(key)
                if slot is not None:
                    rows.append(slot)
                    cols.append(index)
        try:
            matrix = self._scatter_uniform(column, rows, cols, value)
        except (OverflowError, GuardTrip):
            # ``value`` does not fit the native dtype: demote the base
            # column and re-scatter on the exact kernel.
            matrix = self._scatter_uniform(self._fall_back_input(column),
                                           rows, cols, value)
        self._values[base.gate_ids] = matrix
        self._run()
        return self

    # -- internals -------------------------------------------------------------

    def _scatter_uniform(self, column: Any, rows: Sequence[int],
                         cols: Sequence[int], value: Any) -> Any:
        """Broadcast ``column`` across the batch, then write ``value``
        at every ``(rows[i], cols[i])`` in one vectorized scatter."""
        cast_in = self.kernel.cast_in
        matrix = _np.empty((column.shape[0], self.batch_size),
                           dtype=self.kernel.dtype)
        matrix[:, :] = column
        if rows:
            native = value if cast_in is None else cast_in(value)
            matrix[_np.asarray(rows, dtype=_np.intp),
                   _np.asarray(cols, dtype=_np.intp)] = native
        return matrix

    def _prepare(self, circuit: Circuit, sr: Semiring, batch_size: int,
                 schedule: Optional[LayerSchedule],
                 kernel: Optional[ArrayKernel]) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("VectorizedEvaluator requires numpy; install "
                               "the 'numpy' extra or use BatchedEvaluator")
        if kernel is None:
            kernel = kernel_for(sr)
        if kernel is None:
            raise ValueError(f"semiring {sr.name} has no array kernel; use "
                             f"BatchedEvaluator (backend='python')")
        self.circuit = circuit
        self.sr = sr
        self.kernel = kernel
        self.kernel_requested = kernel.name
        self.kernel_used = kernel.name
        self.fallbacks = 0
        self.batch_size = batch_size
        self.schedule = schedule if schedule is not None \
            else build_schedule(circuit)
        self._values = _np.empty((len(circuit.gates), batch_size),
                                 dtype=kernel.dtype)

    def _fall_back(self) -> ArrayKernel:
        """Switch to the exact fallback kernel (counted; callers fix up
        the value array — or rebuild their inputs — themselves)."""
        fallback = self.kernel.fallback
        if fallback is None:  # pragma: no cover - guarded kernels have one
            raise RuntimeError(
                f"kernel {self.kernel.name} tripped a guard but has no "
                f"fallback kernel")
        self.fallbacks += 1
        self.kernel = fallback
        self.kernel_used = fallback.name
        return fallback

    def _fall_back_input(self, column: Any) -> Any:
        """Demote before any gate ran: swap in the fallback kernel, a
        fresh object value array, and the base column promoted (or
        passed through, when it was built on the object kernel)."""
        promote = self.kernel.promote
        fallback = self._fall_back()
        self._values = _np.empty(self._values.shape, dtype=fallback.dtype)
        if column.dtype == fallback.dtype:
            return column
        return promote(column) if promote is not None \
            else column.astype(fallback.dtype)

    def _fill_overrides(self, column: Any, slot_of: Dict[Any, int],
                        overrides: Sequence[Mapping[Any, Any]]) -> Any:
        cast_in = self.kernel.cast_in
        matrix = _np.empty((column.shape[0], self.batch_size),
                           dtype=self.kernel.dtype)
        matrix[:, :] = column
        for index, override in enumerate(overrides):
            for key, value in override.items():
                slot = slot_of.get(key)
                if slot is not None:
                    matrix[slot, index] = value if cast_in is None \
                        else cast_in(value)
        return matrix

    def _load_inputs(self, rows: List[List[Any]]) -> None:
        input_gates = self.schedule.input_gates
        if not input_gates:
            return
        cast_in = self.kernel.cast_in
        try:
            data = rows if cast_in is None \
                else [[cast_in(value) for value in row] for row in rows]
            matrix = _np.array(data, dtype=self.kernel.dtype)
        except (OverflowError, GuardTrip):
            # An input does not fit the native dtype: the whole
            # evaluation runs on the exact fallback kernel.
            fallback = self._fall_back()
            self._values = _np.empty(self._values.shape,
                                     dtype=fallback.dtype)
            matrix = _np.array(rows, dtype=fallback.dtype)
        self._values[[gate_id for gate_id, _ in input_gates]] = \
            matrix.reshape(len(input_gates), self.batch_size)

    def _promote_values(self) -> None:
        """Mid-run guard trip: convert the value array to the exact
        object carrier and continue on the fallback kernel.  Values
        computed so far are exact (trips are detected before a wrapped
        result is consumed), so the promotion preserves them all."""
        promote = self.kernel.promote
        values = self._values
        self._fall_back()
        self._values = promote(values) if promote is not None \
            else values.astype(object)

    def _write_consts(self) -> None:
        sr, values = self.sr, self._values
        cast_in = self.kernel.cast_in
        for gate_id, raw in self.schedule.const_gates:
            value = sr.coerce(raw)
            try:
                values[gate_id] = value if cast_in is None \
                    else cast_in(value)
            except (OverflowError, GuardTrip):
                self._promote_values()
                cast_in = self.kernel.cast_in
                self._values[gate_id] = value
                values = self._values

    def _run(self) -> None:
        self._write_consts()
        plan = _index_plan(self.schedule)
        for layer in self.schedule.layers:
            for group in layer.groups:
                if group.kind in (KIND_ADD, KIND_MUL):
                    ids, children = plan[id(group)]
                    reduce_ = (self.kernel.add_reduce
                               if group.kind == KIND_ADD
                               else self.kernel.mul_reduce)
                    if self.kernel.checked:
                        result, tripped = reduce_(self._values[children], 1)
                        if tripped:
                            # The children are still exact: promote and
                            # re-run just this group on the object kernel.
                            self._promote_values()
                            reduce_ = (self.kernel.add_reduce
                                       if group.kind == KIND_ADD
                                       else self.kernel.mul_reduce)
                            result = reduce_(self._values[children], axis=1)
                        self._values[ids] = result
                    else:
                        self._values[ids] = reduce_(self._values[children],
                                                    axis=1)
                elif group.kind == KIND_PERM:
                    for gate_id in group.gate_ids:
                        self._eval_perm(gate_id)

    def _eval_perm(self, gate_id: GateId) -> None:
        """Permanent gates: exact per-gate evaluation (no rectangular
        reduction exists), operands read from the value array.  On a
        guarded kernel the operands are cast back to exact carrier
        values first (the permanent's internal sums of products must not
        run on the native dtype unguarded), and a result outside the
        native range promotes the evaluation."""
        sr = self.sr
        gate: PermGate = self.circuit.gates[gate_id]
        zero = sr.zero
        zeros = [zero] * self.batch_size
        cast_out = self.kernel.cast_out

        def operand_row(entry):
            if entry is None:
                return zeros
            row = self._values[entry].tolist()
            return row if cast_out is None else [cast_out(v) for v in row]

        entry_rows = [[operand_row(entry) for entry in row]
                      for row in gate.entries]
        results = [permanent([[column[i] for column in entry_row]
                              for entry_row in entry_rows], sr)
                   for i in range(self.batch_size)]
        cast_in = self.kernel.cast_in
        try:
            data = results if cast_in is None \
                else [cast_in(value) for value in results]
            self._values[gate_id] = _np.array(data, dtype=self.kernel.dtype)
        except (OverflowError, GuardTrip):
            self._promote_values()
            self._values[gate_id] = _np.array(results, dtype=object)

    # -- results ----------------------------------------------------------------

    def _cast_row(self, row: List[Any]) -> List[Any]:
        cast_out = self.kernel.cast_out
        return row if cast_out is None else [cast_out(v) for v in row]

    def value(self, index: int) -> Any:
        """The output value under valuation ``index`` (converted alone —
        not via a whole-row cast)."""
        value = self._values[self.circuit.output, index]
        if isinstance(value, _np.generic):
            value = value.item()
        cast_out = self.kernel.cast_out
        return value if cast_out is None else cast_out(value)

    def results(self) -> List[Any]:
        """Output values for the whole batch, in valuation order."""
        return self._cast_row(self._values[self.circuit.output].tolist())

    def values_of(self, gate_id: GateId) -> List[Any]:
        """The per-valuation values of an arbitrary live gate."""
        if gate_id not in self.schedule.layer_of:
            raise KeyError(f"gate {gate_id} is not live in this circuit")
        return self._cast_row(self._values[gate_id].tolist())

    def kernel_stats(self) -> Dict[str, Any]:
        """Which kernel was requested, which produced the results, and
        how many guard trips fell back to the exact kernel."""
        return {"requested": self.kernel_requested,
                "used": self.kernel_used,
                "fallbacks": self.fallbacks}
