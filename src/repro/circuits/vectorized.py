"""Vectorized batched evaluation over a layer schedule (NumPy backend).

:class:`VectorizedEvaluator` evaluates one circuit over an N-valuation
batch layer by layer (see :mod:`repro.circuits.schedule`): all values
live in one ``(num_gates, N)`` array, and each ``add``/``mul`` group of
``g`` gates with uniform fan-in ``f`` is evaluated with two NumPy
operations — a fancy-index gather ``V[children] -> (g, f, N)`` and an
elementwise reduction over the fan-in axis.  Per-gate Python dispatch,
the cost that dominates :class:`~repro.circuits.evaluation.BatchedEvaluator`,
is amortized over whole groups.

A semiring participates through an :class:`ArrayKernel` — a dtype plus
the two fan-in reductions.  Kernels ship for the numeric carriers
(``N``/``Z`` and ``Q`` on exact object arrays, floats on ``float64``)
and the tropical carriers (min-plus, max-plus, min-max on ``float64``);
semirings without an array carrier (boolean, provenance, finite tables,
products) report no kernel and callers fall back to the pure-Python
:class:`~repro.circuits.evaluation.BatchedEvaluator`.

Note the tropical kernels realize the carrier ``R u {inf}`` as
``float64``: weights outside the 2^53 exact-integer window (or exact
``Fraction`` weights) are rounded, where the pure-Python backend would
keep Python's unbounded arithmetic.  Pass ``backend="python"`` (or
:func:`register_kernel` an object-dtype kernel) when tropical weights
need exactness beyond ``float64``.  Permanent gates
have no rectangular reduction and are evaluated per gate with the exact
semiring permanent, reading operands out of (and writing back into) the
value array.

NumPy itself is optional: this module imports without it and
:data:`HAVE_NUMPY` / :func:`kernel_for` let callers pick a backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Type

from ..algebra import permanent
from ..semirings import (FloatField, IntegerRing, MaxPlus, MinMax, MinPlus,
                         NaturalSemiring, RationalField, Semiring)
from .evaluation import Valuation
from .gates import Circuit, GateId, PermGate
from .schedule import (KIND_ADD, KIND_MUL, KIND_PERM, LayerSchedule,
                       build_schedule)

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: True when NumPy importing succeeded and the backend is usable.
HAVE_NUMPY = _np is not None


@dataclass(frozen=True)
class ArrayKernel:
    """How one semiring maps onto NumPy arrays.

    ``add_reduce``/``mul_reduce`` fold the semiring ``+``/``*`` over one
    axis of a stacked array (signature ``(array, axis) -> array``);
    ``dtype`` is the carrier dtype (``object`` keeps exact Python
    arithmetic, e.g. unbounded ints and :class:`~fractions.Fraction`).
    """

    name: str
    dtype: Any
    add_reduce: Callable[[Any, int], Any]
    mul_reduce: Callable[[Any, int], Any]


#: Semiring type -> kernel factory (instance -> kernel or None).
_KERNEL_FACTORIES: Dict[Type[Semiring],
                        Callable[[Semiring], Optional[ArrayKernel]]] = {}


def register_kernel(semiring_type: Type[Semiring],
                    factory: Callable[[Semiring], Optional[ArrayKernel]]
                    ) -> None:
    """Register an array carrier for a semiring type (extension point)."""
    _KERNEL_FACTORIES[semiring_type] = factory


def kernel_for(sr: Semiring) -> Optional[ArrayKernel]:
    """The array kernel for ``sr``, or ``None`` (no array carrier or no
    NumPy) — the caller's cue to fall back to the pure-Python backend."""
    if not HAVE_NUMPY:
        return None
    factory = _KERNEL_FACTORIES.get(type(sr))
    return factory(sr) if factory is not None else None


def _register_default_kernels() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - numpy-less interpreter
        return
    exact = dict(dtype=object, add_reduce=_np.add.reduce,
                 mul_reduce=_np.multiply.reduce)
    for semiring_type in (NaturalSemiring, IntegerRing, RationalField):
        register_kernel(
            semiring_type,
            lambda sr, _e=exact: ArrayKernel(name=f"{sr.name}-object", **_e))
    register_kernel(FloatField, lambda sr: ArrayKernel(
        name="float64", dtype=_np.float64,
        add_reduce=_np.add.reduce, mul_reduce=_np.multiply.reduce))
    register_kernel(MinPlus, lambda sr: ArrayKernel(
        name="min-plus-f64", dtype=_np.float64,
        add_reduce=_np.minimum.reduce, mul_reduce=_np.add.reduce))
    register_kernel(MaxPlus, lambda sr: ArrayKernel(
        name="max-plus-f64", dtype=_np.float64,
        add_reduce=_np.maximum.reduce, mul_reduce=_np.add.reduce))
    register_kernel(MinMax, lambda sr: ArrayKernel(
        name="min-max-f64", dtype=_np.float64,
        add_reduce=_np.minimum.reduce, mul_reduce=_np.maximum.reduce))


_register_default_kernels()


def _index_plan(schedule: LayerSchedule) -> Dict[int, Any]:
    """Per-group NumPy index arrays, memoized on the schedule object.

    Schedules (like circuits) are immutable once built, so the plan is
    computed once per schedule and reused across evaluations/batches.
    """
    plan = getattr(schedule, "_vector_plan", None)
    if plan is None:
        plan = {}
        for layer in schedule.layers:
            for group in layer.groups:
                if group.kind in (KIND_ADD, KIND_MUL):
                    plan[id(group)] = (
                        _np.array(group.gate_ids, dtype=_np.intp),
                        _np.array(group.children, dtype=_np.intp))
        schedule._vector_plan = plan
    return plan


@dataclass(frozen=True)
class PreparedBase:
    """A precomputed base input column for override batches: the input
    gates' base values as one ``(slots, 1)`` array, plus the key->slot
    map and the gate-id list to scatter the filled matrix with."""

    column: Any
    slot_of: Dict[Any, int]
    gate_ids: List[GateId]


class VectorizedEvaluator:
    """Evaluate one circuit over N valuations, one layer at a time.

    Mirrors :class:`~repro.circuits.evaluation.BatchedEvaluator`'s
    interface (``results`` / ``value`` / ``values_of``).  Construct with
    N valuation callables, or — much faster when the batch is a set of
    sparse edits of one base valuation — via :meth:`from_overrides`,
    which broadcasts the base input column once and then applies only
    the per-valuation overrides.
    """

    def __init__(self, circuit: Circuit, sr: Semiring,
                 valuations: Sequence[Valuation],
                 schedule: Optional[LayerSchedule] = None,
                 kernel: Optional[ArrayKernel] = None):
        self._prepare(circuit, sr, len(valuations), schedule, kernel)
        rows = [[valuation(key) for valuation in valuations]
                for _, key in self.schedule.input_gates]
        self._load_inputs(rows)
        self._run()

    @classmethod
    def prepare_base(cls, circuit: Circuit, sr: Semiring,
                     base: Mapping[Any, Any],
                     schedule: Optional[LayerSchedule] = None,
                     kernel: Optional[ArrayKernel] = None) -> "PreparedBase":
        """Precompute the base input column for :meth:`from_overrides`.

        Serving workloads evaluate thousands of override batches against
        one slowly-changing base valuation; rebuilding the column (a walk
        over every input gate) per batch is pure overhead.  The returned
        :class:`PreparedBase` is immutable — build a new one when the
        base valuation changes (``CompiledQuery`` memoizes this, keyed by
        its update epoch)."""
        if schedule is None:
            schedule = build_schedule(circuit)
        if kernel is None:
            kernel = kernel_for(sr)
            if kernel is None:
                raise ValueError(f"semiring {sr.name} has no array kernel")
        zero = sr.zero
        input_gates = schedule.input_gates
        column = _np.array([base.get(key, zero) for _, key in input_gates],
                           dtype=kernel.dtype).reshape(-1, 1)
        return PreparedBase(
            column=column,
            slot_of={key: slot for slot, (_, key) in enumerate(input_gates)},
            gate_ids=[gate_id for gate_id, _ in input_gates])

    @classmethod
    def from_overrides(cls, circuit: Circuit, sr: Semiring,
                       base: "Mapping[Any, Any] | PreparedBase",
                       overrides: Sequence[Mapping[Any, Any]],
                       schedule: Optional[LayerSchedule] = None,
                       kernel: Optional[ArrayKernel] = None
                       ) -> "VectorizedEvaluator":
        """Batch = ``base`` valuation + one sparse override mapping per
        batch element (unknown override keys are ignored, matching the
        mapping semantics of ``CompiledQuery.evaluate_batch``).  ``base``
        is either a plain mapping or a :class:`PreparedBase` from
        :meth:`prepare_base` (the amortized form)."""
        self = cls.__new__(cls)
        self._prepare(circuit, sr, len(overrides), schedule, kernel)
        if not isinstance(base, PreparedBase):
            base = cls.prepare_base(self.circuit, sr, base,
                                    schedule=self.schedule,
                                    kernel=self.kernel)
        matrix = _np.empty((len(base.gate_ids), self.batch_size),
                           dtype=self.kernel.dtype)
        matrix[:, :] = base.column
        slot_of = base.slot_of
        for column, override in enumerate(overrides):
            for key, value in override.items():
                slot = slot_of.get(key)
                if slot is not None:
                    matrix[slot, column] = value
        self._values[base.gate_ids] = matrix
        self._run()
        return self

    # -- internals -------------------------------------------------------------

    def _prepare(self, circuit: Circuit, sr: Semiring, batch_size: int,
                 schedule: Optional[LayerSchedule],
                 kernel: Optional[ArrayKernel]) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("VectorizedEvaluator requires numpy; install "
                               "the 'numpy' extra or use BatchedEvaluator")
        if kernel is None:
            kernel = kernel_for(sr)
        if kernel is None:
            raise ValueError(f"semiring {sr.name} has no array kernel; use "
                             f"BatchedEvaluator (backend='python')")
        self.circuit = circuit
        self.sr = sr
        self.kernel = kernel
        self.batch_size = batch_size
        self.schedule = schedule if schedule is not None \
            else build_schedule(circuit)
        self._values = _np.empty((len(circuit.gates), batch_size),
                                 dtype=kernel.dtype)

    def _load_inputs(self, rows: List[List[Any]]) -> None:
        input_gates = self.schedule.input_gates
        if input_gates:
            self._values[[gate_id for gate_id, _ in input_gates]] = \
                _np.array(rows, dtype=self.kernel.dtype).reshape(
                    len(input_gates), self.batch_size)

    def _run(self) -> None:
        sr, values = self.sr, self._values
        for gate_id, raw in self.schedule.const_gates:
            values[gate_id] = sr.coerce(raw)
        plan = _index_plan(self.schedule)
        for layer in self.schedule.layers:
            for group in layer.groups:
                if group.kind == KIND_ADD:
                    ids, children = plan[id(group)]
                    values[ids] = self.kernel.add_reduce(values[children],
                                                         axis=1)
                elif group.kind == KIND_MUL:
                    ids, children = plan[id(group)]
                    values[ids] = self.kernel.mul_reduce(values[children],
                                                         axis=1)
                elif group.kind == KIND_PERM:
                    for gate_id in group.gate_ids:
                        self._eval_perm(gate_id)

    def _eval_perm(self, gate_id: GateId) -> None:
        """Permanent gates: exact per-gate evaluation (no rectangular
        reduction exists), operands read from the value array."""
        sr, values = self.sr, self._values
        gate: PermGate = self.circuit.gates[gate_id]
        zero = sr.zero
        zeros = [zero] * self.batch_size
        entry_rows = [[zeros if entry is None else values[entry].tolist()
                       for entry in row] for row in gate.entries]
        values[gate_id] = _np.array(
            [permanent([[column[i] for column in entry_row]
                        for entry_row in entry_rows], sr)
             for i in range(self.batch_size)], dtype=self.kernel.dtype)

    # -- results ----------------------------------------------------------------

    def value(self, index: int) -> Any:
        """The output value under valuation ``index``."""
        return self._values[self.circuit.output].tolist()[index]

    def results(self) -> List[Any]:
        """Output values for the whole batch, in valuation order."""
        return self._values[self.circuit.output].tolist()

    def values_of(self, gate_id: GateId) -> List[Any]:
        """The per-valuation values of an arbitrary live gate."""
        if gate_id not in self.schedule.layer_of:
            raise KeyError(f"gate {gate_id} is not live in this circuit")
        return self._values[gate_id].tolist()
