"""Human-readable circuit dumps: indented text and Graphviz dot.

Debugging/teaching aids: Theorem 6's output is a data structure, and being
able to *look* at it (shared fragments, permanent gates, pruned labels) is
half the point of the circuit framework.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .gates import (AddGate, Circuit, ConstGate, GateId, InputGate, MulGate,
                    PermGate)


def _label(circuit: Circuit, gate_id: GateId) -> str:
    gate = circuit.gates[gate_id]
    if isinstance(gate, InputGate):
        return f"in{gate_id}[{gate.key!r}]"
    if isinstance(gate, ConstGate):
        return f"const{gate_id}({gate.value!r})"
    if isinstance(gate, AddGate):
        return f"add{gate_id}(+{len(gate.children)})"
    if isinstance(gate, MulGate):
        return f"mul{gate_id}(*{len(gate.children)})"
    if isinstance(gate, PermGate):
        return f"perm{gate_id}({gate.rows}x{gate.cols})"
    return f"g{gate_id}"


def render_text(circuit: Circuit, max_depth: Optional[int] = None) -> str:
    """Indented tree view from the output gate (shared gates marked)."""
    lines: List[str] = []
    seen: Set[GateId] = set()

    def walk(gate_id: GateId, indent: int) -> None:
        prefix = "  " * indent
        label = _label(circuit, gate_id)
        if gate_id in seen:
            lines.append(f"{prefix}{label} (shared)")
            return
        seen.add(gate_id)
        lines.append(f"{prefix}{label}")
        if max_depth is not None and indent >= max_depth:
            return
        for child in circuit.children_of(circuit.gates[gate_id]):
            walk(child, indent + 1)

    walk(circuit.output, 0)
    return "\n".join(lines)


def render_dot(circuit: Circuit) -> str:
    """Graphviz dot of the live subcircuit."""
    shapes = {InputGate: "box", ConstGate: "plaintext", AddGate: "ellipse",
              MulGate: "diamond", PermGate: "hexagon"}
    lines = ["digraph circuit {", "  rankdir=BT;"]
    live = circuit.live_gates()
    for gate_id in live:
        gate = circuit.gates[gate_id]
        shape = shapes.get(type(gate), "ellipse")
        label = _label(circuit, gate_id).replace('"', "'")
        style = ' style=bold' if gate_id == circuit.output else ""
        lines.append(f'  g{gate_id} [label="{label}" shape={shape}{style}];')
    for gate_id in live:
        for child in circuit.children_of(circuit.gates[gate_id]):
            lines.append(f"  g{child} -> g{gate_id};")
    lines.append("}")
    return "\n".join(lines)


def summarize(circuit: Circuit) -> str:
    """One-paragraph summary of the Theorem 6 parameters.

    Counts are over *live* gates only, so the summary stays accurate for
    optimized circuits; when the gate array stores additional dead gates
    (builder spares, pre-compaction circuits) they are reported
    separately rather than inflating the headline number.
    """
    stats = circuit.stats()
    kinds = ", ".join(f"{count} {name}" for name, count in
                      sorted(stats["kinds"].items()))
    dead = stats["dead_gates"]
    dead_note = f" (+{dead} dead)" if dead else ""
    return (f"circuit: {stats['gates']} gates{dead_note} / "
            f"{stats['edges']} edges "
            f"(depth {stats['depth']}, fan-in <= {stats['max_fan_in']}, "
            f"fan-out <= {stats['max_fan_out']}, "
            f"permanent rows <= {stats['max_perm_rows']}); {kinds}")


def describe_optimization(result) -> str:
    """Render an :class:`~repro.circuits.OptimizeResult` trace.

    The headline counts are live gates before/after; the bracketed
    trajectory shows *stored* gate counts after each executed pass (a
    pass that absorbs children into parents leaves them as dead storage
    until the closing compaction, so stored counts can lag the live
    shrinkage).
    """
    steps = " -> ".join(f"{name}:{count} stored"
                        for name, count in result.trace)
    eliminated = sum(1 for new in result.remap.values() if new is None)
    skipped = f", skipped {'/'.join(result.skipped)}" if result.skipped \
        else ""
    return (f"optimized {result.gates_before} -> {result.gates_after} live "
            f"gates [{steps}{skipped}]; {eliminated} gates eliminated, "
            f"{len(result.circuit.inputs)} inputs retained")
