"""Circuits with permanent gates (system S6)."""

from .backends import (DEFAULT_MAX_GROUPS, VALID_BACKENDS, VALID_EXACT_MODES,
                       VALID_SHARD_POLICIES, validate_backend,
                       validate_cluster_options, validate_exact_mode,
                       validate_group_options)
from .evaluation import (BatchedEvaluator, DynamicEvaluator, StaticEvaluator,
                         Valuation, valuation_from_dict)
from .gates import (AddGate, Circuit, CircuitBuilder, ConstGate, GateId,
                    InputGate, MulGate, PermGate)
from .optimize import (DEFAULT_PIPELINE, PASSES, CommonSubexpressionPass,
                       ConstantFoldPass, FlattenPass, OptimizeResult,
                       RewritePass, optimize_circuit)
from .render import describe_optimization, render_dot, render_text, summarize
from .schedule import (GateGroup, Layer, LayerSchedule, build_schedule,
                       co_occurring_inputs, input_cone_masks)
from .serialize import (PLAN_FORMAT_VERSION, PlanNotSerializable,
                        PlanStaleError, PlanStateError, circuit_from_state,
                        circuit_to_state, decode_atom, dump_plan_bytes,
                        encode_atom, load_plan_bytes, schedule_from_state,
                        schedule_to_state)
from .vectorized import (HAVE_NUMPY, ArrayKernel, VectorizedEvaluator,
                         kernel_for, register_kernel)

__all__ = [
    "Circuit", "CircuitBuilder", "InputGate", "ConstGate", "AddGate",
    "MulGate", "PermGate", "GateId",
    "StaticEvaluator", "BatchedEvaluator", "DynamicEvaluator",
    "valuation_from_dict", "Valuation",
    "LayerSchedule", "Layer", "GateGroup", "build_schedule",
    "input_cone_masks", "co_occurring_inputs",
    "PLAN_FORMAT_VERSION", "PlanStateError", "PlanStaleError",
    "PlanNotSerializable", "circuit_to_state", "circuit_from_state",
    "schedule_to_state", "schedule_from_state", "encode_atom", "decode_atom",
    "dump_plan_bytes", "load_plan_bytes",
    "VectorizedEvaluator", "ArrayKernel", "kernel_for", "register_kernel",
    "HAVE_NUMPY", "validate_backend", "VALID_BACKENDS",
    "validate_exact_mode", "VALID_EXACT_MODES",
    "validate_group_options", "DEFAULT_MAX_GROUPS",
    "validate_cluster_options", "VALID_SHARD_POLICIES",
    "optimize_circuit", "OptimizeResult", "RewritePass",
    "ConstantFoldPass", "FlattenPass", "CommonSubexpressionPass",
    "PASSES", "DEFAULT_PIPELINE",
    "render_text", "render_dot", "summarize", "describe_optimization",
]
