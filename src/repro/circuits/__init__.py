"""Circuits with permanent gates (system S6)."""

from .evaluation import (DynamicEvaluator, StaticEvaluator, Valuation,
                         valuation_from_dict)
from .gates import (AddGate, Circuit, CircuitBuilder, ConstGate, GateId,
                    InputGate, MulGate, PermGate)
from .render import render_dot, render_text, summarize

__all__ = [
    "Circuit", "CircuitBuilder", "InputGate", "ConstGate", "AddGate",
    "MulGate", "PermGate", "GateId",
    "StaticEvaluator", "DynamicEvaluator", "valuation_from_dict", "Valuation",
    "render_text", "render_dot", "summarize",
]
