"""The batched-evaluation backend and exact-kernel axes, validated in one place.

Every layer that accepts a ``backend`` string — ``CompiledQuery.
evaluate_batch``, ``WeightedQueryEngine.query_batch``, ``QueryService``,
and :class:`repro.api.ExecOptions` — validates it through
:func:`validate_backend`, so a typo fails eagerly at the first seam it
crosses with one consistent error message instead of surfacing later
(or never) deep inside a dispatcher thread.

``exact_mode`` — the kernel-selection knob for the exact carriers
(``N``/``Z``/``Q``) of the vectorized backend — is validated the same
way through :func:`validate_exact_mode`.  ``"int64"`` *requires* the
NumPy backend, so on a NumPy-less install it is rejected here, eagerly,
with the same :class:`ValueError` shape as an unknown mode: the knob
can never be accepted at construction only to fail (or silently
degrade) deep inside an evaluation.

The grouped-aggregation knobs (``group_batch_size``/``max_groups`` on
:class:`repro.api.ExecOptions` and ``PreparedQuery.group_by``) follow
the same discipline through :func:`validate_group_options`.
"""

from __future__ import annotations

import importlib.util

#: The recognised values of every ``backend=`` parameter.
VALID_BACKENDS = ("auto", "python", "numpy")

#: The recognised values of every ``exact_mode=`` parameter.
VALID_EXACT_MODES = ("auto", "int64", "object")

#: Memoized once: whether the vectorized backend can exist at all.
#: (find_spec, not an import: validation must stay cheap on installs
#: that never touch the numpy backend.  A blocking import hook may
#: raise instead of returning None — same answer.)
try:
    _HAVE_NUMPY = importlib.util.find_spec("numpy") is not None
except ImportError:  # pragma: no cover - import-hooked environments
    _HAVE_NUMPY = False


def validate_backend(backend: str) -> str:
    """Validate a ``backend`` string; returns it unchanged.

    Raises :class:`ValueError` with the shared message used across the
    whole API surface.
    """
    if backend not in VALID_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected "
                         f"'auto', 'python' or 'numpy'")
    return backend


def validate_exact_mode(exact_mode: str) -> str:
    """Validate an ``exact_mode`` string; returns it unchanged.

    ``"auto"`` — overflow-guarded native fast path (int64 for ``N``/``Z``,
    integer-float64 for ``Q``) with transparent object-dtype fallback;
    ``"int64"`` — the same guarded fast path, but requiring NumPy (a
    NumPy-less install rejects it here, eagerly); ``"object"`` — the
    exact object-dtype kernels only.  Semirings without an exact array
    carrier ignore the knob.
    """
    if exact_mode not in VALID_EXACT_MODES:
        raise ValueError(f"unknown exact_mode {exact_mode!r}; expected "
                         f"'auto', 'int64' or 'object'")
    if exact_mode == "int64" and not _HAVE_NUMPY:
        raise ValueError("exact_mode 'int64' requires numpy; expected "
                         "'auto' or 'object' on numpy-less installs")
    return exact_mode


#: Default ceiling on an enumerated group domain (``group_by`` without
#: explicit keys takes the cartesian product of the structure's domain
#: over the query parameters, which grows as ``|A|^k``).
DEFAULT_MAX_GROUPS = 65536


def validate_group_options(group_batch_size, max_groups) -> None:
    """Validate the grouped-aggregation batching knobs, eagerly.

    ``group_batch_size`` chunks the one-sweep group evaluation into
    sweeps of at most that many group columns (``None`` = the whole
    group set in one sweep); ``max_groups`` bounds how many groups an
    *enumerated* group domain may produce before ``group_by`` refuses
    and asks for explicit keys.
    """
    if group_batch_size is not None and group_batch_size < 1:
        raise ValueError("group_batch_size must be >= 1 (or None for a "
                         "single sweep)")
    if max_groups is not None and max_groups < 1:
        raise ValueError("max_groups must be >= 1")


#: The recognised values of every ``shard_policy=`` parameter: how the
#: sharder assigns Gaifman components to worker shards.
VALID_SHARD_POLICIES = ("hash", "contiguous")


def validate_cluster_options(shard_policy, max_pending,
                             max_inflight_per_client,
                             request_timeout) -> None:
    """Validate the sharded-serving gateway knobs, eagerly.

    ``shard_policy`` picks the component-to-shard assignment;
    ``max_pending`` caps the gateway-wide queued+in-flight request
    count (load shedding beyond it); ``max_inflight_per_client`` caps
    one client's share of that queue (per-client fairness);
    ``request_timeout`` is the default per-request deadline in seconds
    (``None`` = wait indefinitely).  Same eager-refusal discipline as
    :func:`validate_backend`: a bad knob fails at construction, never
    inside a dispatcher thread.
    """
    if shard_policy not in VALID_SHARD_POLICIES:
        raise ValueError(f"unknown shard_policy {shard_policy!r}; expected "
                         f"'hash' or 'contiguous'")
    if max_pending < 1:
        raise ValueError("max_pending must be >= 1")
    if max_inflight_per_client < 1:
        raise ValueError("max_inflight_per_client must be >= 1")
    if request_timeout is not None and request_timeout <= 0:
        raise ValueError("request_timeout must be > 0 seconds (or None "
                         "to wait indefinitely)")
