"""The batched-evaluation backend axis, validated in one place.

Every layer that accepts a ``backend`` string — ``CompiledQuery.
evaluate_batch``, ``WeightedQueryEngine.query_batch``, ``QueryService``,
and :class:`repro.api.ExecOptions` — validates it through
:func:`validate_backend`, so a typo fails eagerly at the first seam it
crosses with one consistent error message instead of surfacing later
(or never) deep inside a dispatcher thread.
"""

from __future__ import annotations

#: The recognised values of every ``backend=`` parameter.
VALID_BACKENDS = ("auto", "python", "numpy")


def validate_backend(backend: str) -> str:
    """Validate a ``backend`` string; returns it unchanged.

    Raises :class:`ValueError` with the shared message used across the
    whole API surface.
    """
    if backend not in VALID_BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected "
                         f"'auto', 'python' or 'numpy'")
    return backend
