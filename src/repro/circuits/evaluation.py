"""Evaluation contexts: bind a circuit to a semiring and a valuation.

* :class:`StaticEvaluator` — one bottom-up pass, O(size) semiring ops
  (permanent gates via the O(2^k n) DP).
* :class:`BatchedEvaluator` — evaluates one circuit over N valuations in
  a single bottom-up pass, keeping a list of values per gate.  Gate
  dispatch, reachability, and child lookups are paid once per gate
  instead of once per gate per valuation, which is where the per-probe
  overhead of a Python interpreter actually goes.
* :class:`DynamicEvaluator` — maintains all gate values under input
  updates.  Permanent gates carry a pluggable
  :class:`~repro.algebra.PermanentMaintainer`, so one update costs
  O(affected gates · per-gate cost): constant for rings and finite
  semirings, logarithmic in general — exactly the Theorem 8 bounds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..algebra import PermanentMaintainer, make_maintainer, permanent
from ..semirings import Semiring
from .gates import (AddGate, Circuit, ConstGate, GateId, InputGate, MulGate,
                    PermGate)

Valuation = Callable[[Hashable], Any]


def valuation_from_dict(values: Dict[Hashable, Any], zero: Any) -> Valuation:
    return lambda key: values.get(key, zero)


class StaticEvaluator:
    """Single-pass evaluation of every live gate."""

    def __init__(self, circuit: Circuit, sr: Semiring, valuation: Valuation):
        self.circuit = circuit
        self.sr = sr
        self.values: Dict[GateId, Any] = {}
        zero = sr.zero
        for gate_id in circuit.live_gates():
            gate = circuit.gates[gate_id]
            if isinstance(gate, InputGate):
                value = valuation(gate.key)
            elif isinstance(gate, ConstGate):
                value = sr.coerce(gate.value)
            elif isinstance(gate, AddGate):
                value = sr.sum(self.values[c] for c in gate.children)
            elif isinstance(gate, MulGate):
                value = sr.prod(self.values[c] for c in gate.children)
            elif isinstance(gate, PermGate):
                matrix = [[self.values[e] if e is not None else zero
                           for e in row] for row in gate.entries]
                value = permanent(matrix, sr)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown gate {gate!r}")
            self.values[gate_id] = value

    def value(self) -> Any:
        return self.values[self.circuit.output]


class BatchedEvaluator:
    """Evaluate one circuit over many valuations in a single pass.

    ``valuations`` is a sequence of N :data:`Valuation` callables; gate
    ``g`` ends up with ``values[g] == [value under valuation 0, ...,
    value under valuation N-1]``.  The circuit is walked bottom-up once:
    per gate the kind is dispatched a single time and the inner loop over
    the batch runs with locally-bound semiring operations.  Amortized
    over the batch this beats N independent :class:`StaticEvaluator`
    passes by a large constant factor, and it is the evaluation substrate
    for ``CompiledQuery.evaluate_batch`` and the engine's batched point
    queries.
    """

    def __init__(self, circuit: Circuit, sr: Semiring,
                 valuations: List[Valuation]):
        self.circuit = circuit
        self.sr = sr
        self.batch_size = len(valuations)
        #: per-gate value rows, indexed by gate id (dead gates stay None)
        self.values: List[Optional[List[Any]]] = [None] * len(circuit.gates)
        values = self.values
        n = self.batch_size
        zero, add, mul = sr.zero, sr.add, sr.mul
        for gate_id in circuit.live_gates():
            gate = circuit.gates[gate_id]
            if isinstance(gate, InputGate):
                key = gate.key
                row = [valuation(key) for valuation in valuations]
            elif isinstance(gate, ConstGate):
                row = [sr.coerce(gate.value)] * n
            elif isinstance(gate, AddGate):
                children = [values[c] for c in gate.children]
                row = list(children[0])
                for other in children[1:]:
                    row = [add(a, b) for a, b in zip(row, other)]
            elif isinstance(gate, MulGate):
                children = [values[c] for c in gate.children]
                row = list(children[0])
                for other in children[1:]:
                    row = [mul(a, b) for a, b in zip(row, other)]
            elif isinstance(gate, PermGate):
                entry_rows = [[None if e is None else values[e]
                               for e in row] for row in gate.entries]
                row = [permanent(
                    [[zero if col is None else col[i] for col in entry_row]
                     for entry_row in entry_rows], sr)
                    for i in range(n)]
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown gate {gate!r}")
            values[gate_id] = row

    def value(self, index: int) -> Any:
        """The output value under valuation ``index``."""
        return self.values[self.circuit.output][index]

    def results(self) -> List[Any]:
        """Output values for the whole batch, in valuation order."""
        return list(self.values[self.circuit.output])

    def values_of(self, gate_id: GateId) -> List[Any]:
        """The per-valuation values of an arbitrary live gate."""
        row = self.values[gate_id]
        if row is None:
            raise KeyError(f"gate {gate_id} is not live in this circuit")
        return list(row)


class DynamicEvaluator:
    """Incremental evaluation under input updates (Theorem 8 machinery).

    ``strategy`` picks the permanent maintainer ('ring', 'finite',
    'segment-tree', 'recompute', or None for automatic).
    ``on_change`` is an optional hook ``(gate_id, new_value) -> None`` fired
    whenever a live gate's value changes — the enumeration layer uses it to
    keep support structures in sync.
    """

    def __init__(self, circuit: Circuit, sr: Semiring, valuation: Valuation,
                 strategy: Optional[str] = None,
                 on_change: Optional[Callable[[GateId, Any], None]] = None):
        self.circuit = circuit
        self.sr = sr
        self.strategy = strategy
        self.on_change = on_change
        self.live = circuit.live_gates()
        self.live_set = set(self.live)
        self.values: Dict[GateId, Any] = {}
        self.maintainers: Dict[GateId, PermanentMaintainer] = {}
        # child -> [(parent, position)]; position is ('flat',) for add/mul
        # and ('perm', row, col) for permanent entries.
        self.parents: Dict[GateId, List[Tuple[GateId, Tuple]]] = \
            {g: [] for g in self.live}
        zero = sr.zero
        for gate_id in self.live:
            gate = circuit.gates[gate_id]
            if isinstance(gate, InputGate):
                value = valuation(gate.key)
            elif isinstance(gate, ConstGate):
                value = sr.coerce(gate.value)
            elif isinstance(gate, AddGate):
                value = sr.sum(self.values[c] for c in gate.children)
                for child in gate.children:
                    self.parents[child].append((gate_id, ("flat",)))
            elif isinstance(gate, MulGate):
                value = sr.prod(self.values[c] for c in gate.children)
                for child in gate.children:
                    self.parents[child].append((gate_id, ("flat",)))
            elif isinstance(gate, PermGate):
                matrix = [[self.values[e] if e is not None else zero
                           for e in row] for row in gate.entries]
                maintainer = make_maintainer(matrix, sr, strategy=strategy)
                self.maintainers[gate_id] = maintainer
                value = maintainer.value()
                for row_idx, row in enumerate(gate.entries):
                    for col_idx, entry in enumerate(row):
                        if entry is not None:
                            self.parents[entry].append(
                                (gate_id, ("perm", row_idx, col_idx)))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown gate {gate!r}")
            self.values[gate_id] = value

    def value(self) -> Any:
        return self.values[self.circuit.output]

    def value_of(self, gate_id: GateId) -> Any:
        return self.values[gate_id]

    def update_input(self, key: Hashable, value: Any) -> int:
        """Set the input gate for ``key``; returns # of gates recomputed."""
        gate_id = self.circuit.inputs.get(key)
        if gate_id is None or gate_id not in self.live_set:
            return 0
        return self._set_value(gate_id, value)

    def _set_value(self, gate_id: GateId, value: Any) -> int:
        if self.sr.eq(self.values[gate_id], value):
            return 0
        self.values[gate_id] = value
        if self.on_change is not None:
            self.on_change(gate_id, value)
        # Propagate in topological (= id) order via a lazy min-heap.
        pending: List[GateId] = []
        queued = set()
        self._push_parents(gate_id, value, pending, queued)
        touched = 1
        while pending:
            current = heapq.heappop(pending)
            queued.discard(current)
            touched += 1
            new_value = self._recompute(current)
            if self.sr.eq(self.values[current], new_value):
                continue
            self.values[current] = new_value
            if self.on_change is not None:
                self.on_change(current, new_value)
            self._push_parents(current, new_value, pending, queued)
        return touched

    def _push_parents(self, gate_id: GateId, value: Any,
                      pending: List[GateId], queued: set) -> None:
        for parent, position in self.parents[gate_id]:
            if position[0] == "perm":
                _, row, col = position
                self.maintainers[parent].update(row, col, value)
            if parent not in queued:
                queued.add(parent)
                heapq.heappush(pending, parent)

    def _recompute(self, gate_id: GateId) -> Any:
        gate = self.circuit.gates[gate_id]
        if isinstance(gate, AddGate):
            return self.sr.sum(self.values[c] for c in gate.children)
        if isinstance(gate, MulGate):
            return self.sr.prod(self.values[c] for c in gate.children)
        if isinstance(gate, PermGate):
            return self.maintainers[gate_id].value()
        raise TypeError(f"gate {gate!r} should not be recomputed")
