"""Circuits with permanent gates (paper §3): the universal IR.

A circuit is a DAG of gates — inputs (weights of tuples), constants,
additions, multiplications, and *permanent gates* whose inputs form a
``rows x columns`` matrix.  The same circuit evaluates in any semiring;
evaluation contexts live in :mod:`repro.circuits.evaluation`.

Gates are stored in one flat array in topological order (children before
parents, enforced by the builder), and referenced by integer id.  ``None``
entries in a permanent gate denote the semiring zero (pruned subtrees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

GateId = int


@dataclass(frozen=True)
class InputGate:
    """An input: the weight of one tuple, addressed by a hashable key."""

    key: Hashable


@dataclass(frozen=True)
class ConstGate:
    """A constant; ``value`` is interpreted through ``Semiring.coerce``."""

    value: Any


@dataclass(frozen=True)
class AddGate:
    children: Tuple[GateId, ...]


@dataclass(frozen=True)
class MulGate:
    children: Tuple[GateId, ...]


@dataclass(frozen=True)
class PermGate:
    """A permanent gate: ``entries[row][col]`` is a gate id or ``None`` (zero).

    The number of rows is bounded by the query (Theorem 6); the number of
    columns is data-dependent.

    Shape is validated at construction: the matrix must be rectangular,
    non-empty, and every entry must be ``None`` or a nonnegative gate id.
    A malformed matrix (e.g. a truncated row in a tampered serialized
    plan) fails here, at the trust boundary, instead of deep inside an
    evaluation.
    """

    entries: Tuple[Tuple[Optional[GateId], ...], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("permanent gate needs at least one row")
        width = len(self.entries[0])
        if width < 1:
            raise ValueError("permanent gate needs at least one column")
        for index, row in enumerate(self.entries):
            if len(row) != width:
                raise ValueError(
                    f"permanent gate matrix is not rectangular: row {index} "
                    f"has {len(row)} entries, row 0 has {width}")
            for entry in row:
                if entry is None:
                    continue
                if isinstance(entry, bool) or not isinstance(entry, int) \
                        or entry < 0:
                    raise ValueError(
                        f"permanent gate entry {entry!r} (row {index}) is "
                        f"not a gate id; entries must be None or a "
                        f"nonnegative int")

    @property
    def rows(self) -> int:
        return len(self.entries)

    @property
    def cols(self) -> int:
        return len(self.entries[0]) if self.entries else 0


Gate = Any  # InputGate | ConstGate | AddGate | MulGate | PermGate


class CircuitBuilder:
    """Hash-consing builder: structurally equal gates are shared."""

    def __init__(self) -> None:
        self.gates: List[Gate] = []
        self._index: Dict[Gate, GateId] = {}
        self.inputs: Dict[Hashable, GateId] = {}

    def _intern(self, gate: Gate) -> GateId:
        found = self._index.get(gate)
        if found is not None:
            return found
        gate_id = len(self.gates)
        self.gates.append(gate)
        self._index[gate] = gate_id
        return gate_id

    def input(self, key: Hashable) -> GateId:
        gate_id = self._intern(InputGate(key))
        self.inputs[key] = gate_id
        return gate_id

    def const(self, value: Any) -> GateId:
        return self._intern(ConstGate(value))

    def zero(self) -> Optional[GateId]:
        """The canonical 'absent' gate — represented as ``None``."""
        return None

    def one(self) -> GateId:
        return self.const(1)

    def add(self, children: Sequence[Optional[GateId]]) -> Optional[GateId]:
        present = tuple(c for c in children if c is not None)
        if not present:
            return None
        if len(present) == 1:
            return present[0]
        return self._intern(AddGate(present))

    def mul(self, children: Sequence[Optional[GateId]]) -> Optional[GateId]:
        children = tuple(children)
        if any(c is None for c in children):
            return None
        # Drop constant-one factors; they are common after label folding.
        filtered = tuple(c for c in children
                         if not (isinstance(self.gates[c], ConstGate)
                                 and self.gates[c].value == 1))
        if not filtered:
            return self.one()
        if len(filtered) == 1:
            return filtered[0]
        return self._intern(MulGate(filtered))

    def perm(self, entries: Sequence[Sequence[Optional[GateId]]]) -> Optional[GateId]:
        """A permanent gate; collapses trivial shapes.

        * zero rows: the empty permanent is 1;
        * more rows than columns: no injection exists, value 0 (``None``);
        * an all-``None`` row forces value 0;
        * one row: equivalent to an addition over the row.
        """
        rows = [tuple(row) for row in entries]
        if not rows:
            return self.one()
        cols = len(rows[0])
        if any(len(row) != cols for row in rows):
            raise ValueError("permanent gate requires a rectangular matrix")
        if len(rows) > cols:
            return None
        if any(all(e is None for e in row) for row in rows):
            return None
        if len(rows) == 1:
            return self.add([e for e in rows[0] if e is not None])
        return self._intern(PermGate(tuple(rows)))

    def scaled(self, coefficient: int, gate: Optional[GateId]) -> Optional[GateId]:
        """``coefficient * gate`` for a nonnegative integer coefficient."""
        if gate is None or coefficient == 0:
            return None
        if coefficient == 1:
            return gate
        return self.mul([self.const(coefficient), gate])

    def build(self, output: Optional[GateId]) -> "Circuit":
        if output is None:
            output = self.const(0)
        return Circuit(self.gates, output, dict(self.inputs))


class Circuit:
    """An immutable gate array with a distinguished output."""

    def __init__(self, gates: List[Gate], output: GateId,
                 inputs: Dict[Hashable, GateId]):
        self.gates = gates
        self.output = output
        self.inputs = inputs

    def __len__(self) -> int:
        return len(self.gates)

    def children_of(self, gate: Gate) -> List[GateId]:
        if isinstance(gate, (AddGate, MulGate)):
            return list(gate.children)
        if isinstance(gate, PermGate):
            return [e for row in gate.entries for e in row if e is not None]
        return []

    def live_gates(self) -> List[GateId]:
        """Gates reachable from the output (the builder may intern spares)."""
        seen = {self.output}
        stack = [self.output]
        while stack:
            gate_id = stack.pop()
            for child in self.children_of(self.gates[gate_id]):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return sorted(seen)

    def stats(self) -> Dict[str, Any]:
        """Size/depth/fan statistics — the quantities Theorem 6 bounds."""
        live = self.live_gates()
        depth: Dict[GateId, int] = {}
        fan_out: Dict[GateId, int] = {g: 0 for g in live}
        edges = 0
        kinds: Dict[str, int] = {}
        max_rows = 0
        max_fan_in = 0
        for gate_id in live:
            gate = self.gates[gate_id]
            kinds[type(gate).__name__] = kinds.get(type(gate).__name__, 0) + 1
            children = self.children_of(gate)
            edges += len(children)
            max_fan_in = max(max_fan_in, len(children))
            for child in children:
                fan_out[child] += 1
            depth[gate_id] = 1 + max((depth[c] for c in children), default=0)
            if isinstance(gate, PermGate):
                max_rows = max(max_rows, gate.rows)
        return {
            "gates": len(live),
            "stored_gates": len(self.gates),
            "dead_gates": len(self.gates) - len(live),
            "edges": edges,
            "size": len(live) + edges,
            "depth": depth.get(self.output, 0),
            "max_fan_in": max_fan_in,
            "max_fan_out": max(fan_out.values(), default=0),
            "max_perm_rows": max_rows,
            "kinds": kinds,
            "inputs": sum(1 for g in live
                          if isinstance(self.gates[g], InputGate)),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Circuit gates={len(self.gates)} output={self.output}>"
