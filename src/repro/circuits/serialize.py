"""Versioned, pickle-free serialization of circuits and layer schedules.

Compiled plans persist to disk (``repro.serve.PlanStore``) so a fresh
process — a serving worker, a CI leg, an example run — can load a plan
instead of re-running the Theorem 6 compiler.  Loading data must never
execute it, so the on-disk format is **data-only**: a small binary
container (magic + JSON header + zlib-compressed canonical JSON payload)
with no pickle anywhere.  Every Python value that appears in a plan —
input-gate keys, constants, forest nodes and labels, recorded weights —
is encoded through the tagged-atom codec below; a value outside the
closed vocabulary (e.g. a user-defined carrier object) raises
:class:`PlanNotSerializable` and the store simply skips that plan.

Two version stamps guard staleness:

* ``PLAN_FORMAT_VERSION`` — bumped whenever the state layout changes;
* the library version — a plan compiled by one release is not trusted
  by another (compiler output may differ gate-for-gate).

A mismatch of either raises :class:`PlanStaleError`; corrupt bytes
(bad magic, truncation, checksum mismatch, malformed state) raise
:class:`PlanStateError`.  Both are misses to the store, never crashes.
"""

from __future__ import annotations

import base64
import hashlib
import json
import struct
import zlib
from fractions import Fraction
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .._version import __version__ as LIBRARY_VERSION
from .gates import (AddGate, Circuit, ConstGate, GateId, InputGate, MulGate,
                    PermGate)
from .schedule import (KIND_ADD, KIND_CONST, KIND_INPUT, KIND_MUL, KIND_PERM,
                       GateGroup, Layer, LayerSchedule)

#: Bump on any change to the state layout; stale entries reload as misses.
PLAN_FORMAT_VERSION = 1

#: Container magic: identifies a serialized plan file.
PLAN_MAGIC = b"RPLN\x01"


class PlanStateError(ValueError):
    """The serialized plan state is corrupt or malformed."""


class PlanStaleError(PlanStateError):
    """The plan was written by a different format or library version."""


class PlanNotSerializable(PlanStateError):
    """The plan contains values outside the data-only vocabulary."""


# -- tagged atoms ----------------------------------------------------------------
# Scalars (None/bool/int/float/str) pass through as JSON values; every
# composite is a tagged JSON array, so decode is unambiguous and closed
# (an unknown tag is an error, never an eval or a pickle).

_TUPLE, _FROZENSET, _SET, _LIST, _FRACTION, _BYTES = \
    "t", "f", "s", "l", "q", "b"


def encode_atom(value: Any) -> Any:
    """Encode one plan value into the tagged-JSON vocabulary."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # Python's json emits Infinity/NaN literals (allow_nan default)
        # and parses them back — the tropical zeros survive.
        return value
    if isinstance(value, tuple):
        return [_TUPLE] + [encode_atom(item) for item in value]
    if isinstance(value, list):
        return [_LIST] + [encode_atom(item) for item in value]
    if isinstance(value, (frozenset, set)):
        tag = _FROZENSET if isinstance(value, frozenset) else _SET
        return [tag] + sorted((encode_atom(item) for item in value),
                              key=repr)
    if isinstance(value, Fraction):
        return [_FRACTION, value.numerator, value.denominator]
    if isinstance(value, bytes):
        return [_BYTES, base64.b64encode(value).decode("ascii")]
    raise PlanNotSerializable(
        f"cannot serialize {type(value).__name__} value {value!r}; "
        f"persisted plans are restricted to the data-only vocabulary "
        f"(scalars, tuples, sets, fractions)")


def decode_atom(value: Any) -> Any:
    """Decode one tagged-JSON value; unknown shapes are errors."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if not isinstance(value, list) or not value:
        raise PlanStateError(f"malformed atom {value!r}")
    tag, rest = value[0], value[1:]
    if tag == _TUPLE:
        return tuple(decode_atom(item) for item in rest)
    if tag == _LIST:
        return [decode_atom(item) for item in rest]
    if tag == _FROZENSET:
        return frozenset(decode_atom(item) for item in rest)
    if tag == _SET:
        return {decode_atom(item) for item in rest}
    if tag == _FRACTION:
        if len(rest) != 2:
            raise PlanStateError(f"malformed fraction {value!r}")
        return Fraction(rest[0], rest[1])
    if tag == _BYTES:
        return base64.b64decode(rest[0])
    raise PlanStateError(f"unknown atom tag {tag!r}")


# -- circuits --------------------------------------------------------------------
# All stored gates serialize (dead gates included) so gate ids — which
# the output, the schedule and hash-consing sharing all refer to — are
# preserved verbatim.

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise PlanStateError(message)


def circuit_to_state(circuit: Circuit) -> Dict[str, Any]:
    gates: List[Any] = []
    for gate in circuit.gates:
        if isinstance(gate, InputGate):
            gates.append(["i", encode_atom(gate.key)])
        elif isinstance(gate, ConstGate):
            gates.append(["c", encode_atom(gate.value)])
        elif isinstance(gate, AddGate):
            gates.append(["+", list(gate.children)])
        elif isinstance(gate, MulGate):
            gates.append(["*", list(gate.children)])
        elif isinstance(gate, PermGate):
            gates.append(["p", [list(row) for row in gate.entries]])
        else:
            raise PlanNotSerializable(f"unknown gate {gate!r}")
    return {"gates": gates, "output": circuit.output}


def _check_child(child: Any, index: int) -> GateId:
    _require(isinstance(child, int) and not isinstance(child, bool)
             and 0 <= child < index,
             f"gate {index} references invalid child {child!r}")
    return child


def circuit_from_state(state: Any) -> Circuit:
    _require(isinstance(state, dict) and isinstance(state.get("gates"), list),
             "malformed circuit state")
    gates: List[Any] = []
    inputs: Dict[Hashable, GateId] = {}
    for index, item in enumerate(state["gates"]):
        _require(isinstance(item, list) and len(item) == 2,
                 f"malformed gate entry {item!r}")
        tag, body = item
        if tag == "i":
            gate: Any = InputGate(decode_atom(body))
            inputs[gate.key] = index
        elif tag == "c":
            gate = ConstGate(decode_atom(body))
        elif tag in ("+", "*"):
            _require(isinstance(body, list) and len(body) >= 2,
                     f"gate {index}: add/mul needs >= 2 children")
            children = tuple(_check_child(c, index) for c in body)
            gate = (AddGate if tag == "+" else MulGate)(children)
        elif tag == "p":
            _require(isinstance(body, list) and body
                     and all(isinstance(row, list) for row in body),
                     f"gate {index}: malformed permanent entries")
            width = len(body[0])
            _require(all(len(row) == width for row in body),
                     f"gate {index}: permanent matrix is not rectangular")
            entries = tuple(
                tuple(None if e is None else _check_child(e, index)
                      for e in row)
                for row in body)
            gate = PermGate(entries)
        else:
            raise PlanStateError(f"unknown gate tag {tag!r}")
        gates.append(gate)
    output = state.get("output")
    _require(isinstance(output, int) and not isinstance(output, bool)
             and 0 <= output < len(gates),
             f"invalid output gate {output!r}")
    # Child-id < parent-id above re-establishes the builder's topological
    # invariant, which every evaluator (and the schedule) relies on.
    return Circuit(gates, output, inputs)


# -- layer schedules -------------------------------------------------------------
# Only the layer/group shape persists; children tuples, the layer_of
# index and the input/const tables are rebuilt from the circuit, so the
# loaded schedule cannot disagree with its own gates.

_GATE_KINDS = {InputGate: KIND_INPUT, ConstGate: KIND_CONST,
               AddGate: KIND_ADD, MulGate: KIND_MUL, PermGate: KIND_PERM}


def schedule_to_state(schedule: LayerSchedule) -> List[Any]:
    return [[[group.kind, group.fan_in, list(group.gate_ids)]
             for group in layer.groups]
            for layer in schedule.layers]


def schedule_from_state(circuit: Circuit, state: Any) -> LayerSchedule:
    _require(isinstance(state, list), "malformed schedule state")
    layer_of: Dict[GateId, int] = {}
    layers: List[Layer] = []
    for index, groups_state in enumerate(state):
        _require(isinstance(groups_state, list),
                 f"malformed schedule layer {index}")
        groups: List[GateGroup] = []
        for group_state in groups_state:
            _require(isinstance(group_state, list) and len(group_state) == 3,
                     f"malformed gate group {group_state!r}")
            kind, fan_in, gate_ids = group_state
            children: Optional[List[Tuple[GateId, ...]]] = \
                [] if kind in (KIND_ADD, KIND_MUL) else None
            _require(isinstance(gate_ids, list) and gate_ids,
                     f"empty gate group in layer {index}")
            for gate_id in gate_ids:
                _require(isinstance(gate_id, int)
                         and 0 <= gate_id < len(circuit.gates)
                         and gate_id not in layer_of,
                         f"schedule gate {gate_id!r} invalid or duplicated")
                gate = circuit.gates[gate_id]
                _require(_GATE_KINDS.get(type(gate)) == kind,
                         f"gate {gate_id} is not a {kind} gate")
                kids = circuit.children_of(gate)
                _require(all(layer_of.get(c, index) < index for c in kids),
                         f"gate {gate_id} (layer {index}) depends on a "
                         f"gate not in an earlier layer")
                if children is not None:
                    _require(len(kids) == fan_in,
                             f"gate {gate_id} fan-in {len(kids)} != group "
                             f"fan-in {fan_in}")
                    children.append(tuple(kids))
                layer_of[gate_id] = index
            groups.append(GateGroup(
                kind=kind, fan_in=fan_in, gate_ids=tuple(gate_ids),
                children=tuple(children) if children is not None else None))
        layers.append(Layer(index=index, groups=tuple(groups)))
    _require(set(layer_of) == set(circuit.live_gates()),
             "schedule does not cover exactly the live gates")
    input_gates = []
    const_gates = []
    for gate_id in sorted(layer_of):
        gate = circuit.gates[gate_id]
        if isinstance(gate, InputGate):
            input_gates.append((gate_id, gate.key))
        elif isinstance(gate, ConstGate):
            const_gates.append((gate_id, gate.value))
    return LayerSchedule(circuit, tuple(layers), layer_of,
                         tuple(input_gates), tuple(const_gates))


# -- the binary container --------------------------------------------------------

def dump_plan_bytes(state: Any, format_version: Optional[int] = None,
                    library_version: Optional[str] = None) -> bytes:
    """Serialize ``state`` into the container format.

    The version overrides exist for tests exercising the staleness
    paths; production callers always stamp the current versions.
    """
    payload = zlib.compress(
        json.dumps(state, separators=(",", ":")).encode(), 6)
    header = json.dumps({
        "format": (PLAN_FORMAT_VERSION if format_version is None
                   else format_version),
        "library": (LIBRARY_VERSION if library_version is None
                    else library_version),
        "length": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }, separators=(",", ":"), sort_keys=True).encode()
    return PLAN_MAGIC + struct.pack(">I", len(header)) + header + payload


def load_plan_bytes(data: bytes) -> Any:
    """Parse a container back into its state, verifying magic, versions
    and the payload checksum.  Raises :class:`PlanStaleError` on version
    mismatch, :class:`PlanStateError` on any corruption."""
    prefix = len(PLAN_MAGIC) + 4
    _require(isinstance(data, (bytes, bytearray)) and len(data) > prefix
             and bytes(data[:len(PLAN_MAGIC)]) == PLAN_MAGIC,
             "not a serialized plan (bad magic)")
    (header_length,) = struct.unpack(">I", data[len(PLAN_MAGIC):prefix])
    _require(len(data) >= prefix + header_length, "truncated plan header")
    try:
        header = json.loads(data[prefix:prefix + header_length])
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise PlanStateError(f"corrupt plan header: {error}") from None
    _require(isinstance(header, dict), "malformed plan header")
    if header.get("format") != PLAN_FORMAT_VERSION or \
            header.get("library") != LIBRARY_VERSION:
        raise PlanStaleError(
            f"plan written by format {header.get('format')!r} / library "
            f"{header.get('library')!r}; this is format "
            f"{PLAN_FORMAT_VERSION} / library {LIBRARY_VERSION}")
    payload = bytes(data[prefix + header_length:])
    _require(len(payload) == header.get("length"), "truncated plan payload")
    _require(hashlib.sha256(payload).hexdigest() == header.get("sha256"),
             "plan payload checksum mismatch")
    try:
        return json.loads(zlib.decompress(payload))
    except (zlib.error, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise PlanStateError(f"corrupt plan payload: {error}") from None
