"""Circuit optimization: a pass pipeline over the Theorem 6 IR.

The compiler (``repro.core.pipeline``) emits circuits that are correct but
literal: constants produced by label folding survive as gates, nested
additions mirror the shape of the elimination forest rather than the
arithmetic, and the builder's hash-consing only dedups gates that happen
to be constructed identically.  Every evaluator — static, dynamic,
batched, enumeration — pays for those gates on every pass, so shrinking
the circuit once after compilation is amortized across the whole workload
(the factorised-database playbook: restructure the compiled
representation, then reuse it).

Passes are *place-preserving rewrites*: each takes a :class:`Circuit` and
produces a new circuit plus a **gate-id remap** ``old id -> new id`` (or
``None`` when the gate was eliminated as dead or identically zero).
Composing passes composes remaps, so callers holding gate references
(debuggers, render tools, tests) can always translate them.

Provided passes:

``cse`` / ``dce``
    Rebuild the live subcircuit through a fresh hash-consing builder.
    This is simultaneously dead-gate elimination (only gates reachable
    from the output are emitted, and ids are compacted) and
    common-subexpression elimination keyed on ``(gate type, children)``
    — structurally equal gates are interned to one id even when the
    original builder constructed them separately.  Every other pass
    inherits both properties because every pass rebuilds through the
    same interning builder.

``fold``
    Constant folding.  Integer constants are closed under the semiring
    interpretation ``Semiring.coerce`` (``n`` coerces to the ``n``-fold
    sum of ``1``, a homomorphism from the initial semiring ``N``), so
    adding/multiplying them with ordinary integer arithmetic — and taking
    integer permanents of all-constant matrices — is sound in *every*
    semiring.  Also applies the identities ``x + 0 = x``, ``x * 1 = x``,
    ``x * 0 = 0`` and prunes zero entries out of permanent gates.

``flatten``
    Fan-in flattening: ``Add(Add(a, b), c) -> Add(a, b, c)`` and the same
    for ``Mul`` chains.  Only children with fan-out 1 are inlined, so a
    shared subexpression is never duplicated and the dynamic evaluator's
    update cost cannot regress.

The default pipeline is ``fold, flatten, fold`` — flattening exposes new
constant-merging opportunities (two constant children pulled into one
addition), and the trailing fold collects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.permanent import permanent
from ..semirings.numeric import NaturalSemiring
from .gates import (AddGate, Circuit, CircuitBuilder, ConstGate, GateId,
                    InputGate, MulGate, PermGate)

_NATURAL = NaturalSemiring()

Remap = Dict[GateId, Optional[GateId]]


def _const_int(gate: object) -> Optional[int]:
    """The integer value of a foldable constant gate, else ``None``.

    Only nonnegative integers (and bools) are foldable: ``coerce`` maps
    them through the unique homomorphism ``N -> S``, which commutes with
    ``+``, ``*`` and permanents.  Exotic constants (raw carrier values)
    are left untouched.
    """
    if isinstance(gate, ConstGate):
        value = gate.value
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int) and value >= 0:
            return value
    return None


class RewritePass:
    """Base pass: rebuild the live subcircuit through an interning builder.

    Walking ``live_gates()`` in ascending id order is a topological order
    (the original builder appends children before parents), so every
    child is already remapped when a gate is rewritten.  Subclasses
    override the per-kind hooks; the base implementation is the identity
    rewrite, which still performs DCE + id compaction + CSE.
    """

    name = "rewrite"

    def run(self, circuit: Circuit) -> Tuple[Circuit, Remap]:
        builder = CircuitBuilder()
        remap: Remap = {}
        self.prepare(circuit)
        for gate_id in circuit.live_gates():
            gate = circuit.gates[gate_id]
            if isinstance(gate, InputGate):
                new = builder.input(gate.key)
            elif isinstance(gate, ConstGate):
                new = self.rewrite_const(builder, gate)
            elif isinstance(gate, AddGate):
                new = self.rewrite_add(builder, gate, gate_id, remap)
            elif isinstance(gate, MulGate):
                new = self.rewrite_mul(builder, gate, gate_id, remap)
            elif isinstance(gate, PermGate):
                new = self.rewrite_perm(builder, gate, gate_id, remap)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown gate {gate!r}")
            remap[gate_id] = new
        rebuilt = builder.build(remap[circuit.output])
        # build() may have interned a fallback const-0 output.
        remap[circuit.output] = rebuilt.output
        return rebuilt, remap

    # -- hooks -----------------------------------------------------------------

    def prepare(self, circuit: Circuit) -> None:
        """Per-circuit precomputation (e.g. fan-out counts)."""

    def rewrite_const(self, builder: CircuitBuilder,
                      gate: ConstGate) -> GateId:
        # Canonicalize bools so ConstGate(True) and ConstGate(1) intern
        # to the same gate (they coerce identically in every semiring).
        value = int(gate.value) if isinstance(gate.value, bool) else gate.value
        return builder.const(value)

    def rewrite_add(self, builder: CircuitBuilder, gate: AddGate,
                    gate_id: GateId, remap: Remap) -> Optional[GateId]:
        return builder.add([remap[c] for c in gate.children])

    def rewrite_mul(self, builder: CircuitBuilder, gate: MulGate,
                    gate_id: GateId, remap: Remap) -> Optional[GateId]:
        return builder.mul([remap[c] for c in gate.children])

    def rewrite_perm(self, builder: CircuitBuilder, gate: PermGate,
                     gate_id: GateId, remap: Remap) -> Optional[GateId]:
        return builder.perm([[None if e is None else remap[e] for e in row]
                             for row in gate.entries])


class CommonSubexpressionPass(RewritePass):
    """DCE + id compaction + structural CSE (the base rewrite)."""

    name = "cse"


class ConstantFoldPass(RewritePass):
    """Fold integer-constant subexpressions and semiring identities."""

    name = "fold"

    def rewrite_add(self, builder: CircuitBuilder, gate: AddGate,
                    gate_id: GateId, remap: Remap) -> Optional[GateId]:
        total = 0
        rest: List[GateId] = []
        for child in gate.children:
            mapped = remap[child]
            if mapped is None:
                continue
            value = _const_int(builder.gates[mapped])
            if value is None:
                rest.append(mapped)
            else:
                total += value
        if not rest:
            return builder.const(total) if total else None
        if total:
            rest.append(builder.const(total))
        return builder.add(rest)

    def rewrite_mul(self, builder: CircuitBuilder, gate: MulGate,
                    gate_id: GateId, remap: Remap) -> Optional[GateId]:
        coefficient = 1
        rest: List[GateId] = []
        for child in gate.children:
            mapped = remap[child]
            if mapped is None:
                return None  # x * 0 = 0 (a semiring axiom)
            value = _const_int(builder.gates[mapped])
            if value is None:
                rest.append(mapped)
            elif value == 0:
                return None
            else:
                coefficient *= value
        if not rest:
            return builder.const(coefficient)
        if coefficient != 1:
            rest.append(builder.const(coefficient))
        return builder.mul(rest)

    def rewrite_perm(self, builder: CircuitBuilder, gate: PermGate,
                     gate_id: GateId, remap: Remap) -> Optional[GateId]:
        entries: List[List[Optional[GateId]]] = []
        all_const = True
        for row in gate.entries:
            mapped_row: List[Optional[GateId]] = []
            for entry in row:
                mapped = None if entry is None else remap[entry]
                if mapped is not None and \
                        _const_int(builder.gates[mapped]) == 0:
                    mapped = None  # zero entries never match
                if mapped is not None and \
                        _const_int(builder.gates[mapped]) is None:
                    all_const = False
                mapped_row.append(mapped)
            entries.append(mapped_row)
        if all_const:
            matrix = [[0 if e is None else _const_int(builder.gates[e])
                       for e in row] for row in entries]
            value = permanent(matrix, _NATURAL)
            return builder.const(value) if value else None
        return builder.perm(entries)


class FlattenPass(RewritePass):
    """Inline fan-out-1 Add-in-Add / Mul-in-Mul children into the parent."""

    name = "flatten"

    def __init__(self):
        self._fan_out: Dict[GateId, int] = {}

    def prepare(self, circuit: Circuit) -> None:
        fan_out: Dict[GateId, int] = {}
        for gate_id in circuit.live_gates():
            for child in circuit.children_of(circuit.gates[gate_id]):
                fan_out[child] = fan_out.get(child, 0) + 1
        self._fan_out = fan_out

    def _splice(self, builder: CircuitBuilder, gate, gate_id: GateId,
                remap: Remap, kind: type) -> Tuple[List[GateId], bool]:
        children: List[GateId] = []
        saw_zero = False
        for child in gate.children:
            mapped = remap[child]
            if mapped is None:
                saw_zero = True
                continue
            mapped_gate = builder.gates[mapped]
            if isinstance(mapped_gate, kind) and \
                    self._fan_out.get(child, 0) <= 1:
                children.extend(mapped_gate.children)
            else:
                children.append(mapped)
        return children, saw_zero

    def rewrite_add(self, builder: CircuitBuilder, gate: AddGate,
                    gate_id: GateId, remap: Remap) -> Optional[GateId]:
        children, _ = self._splice(builder, gate, gate_id, remap, AddGate)
        return builder.add(children)

    def rewrite_mul(self, builder: CircuitBuilder, gate: MulGate,
                    gate_id: GateId, remap: Remap) -> Optional[GateId]:
        children, saw_zero = self._splice(builder, gate, gate_id, remap,
                                          MulGate)
        if saw_zero:
            return None
        return builder.mul(children)


#: Registry of available passes by name.
PASSES = {
    "cse": CommonSubexpressionPass,
    "dce": CommonSubexpressionPass,  # alias: DCE is inherent to a rebuild
    "fold": ConstantFoldPass,
    "flatten": FlattenPass,
}

#: Default pipeline: fold constants, flatten chains, re-fold what
#: flattening exposed.  (DCE/CSE happen inside every pass.)
DEFAULT_PIPELINE: Tuple[str, ...] = ("fold", "flatten", "fold")


@dataclass
class OptimizeResult:
    """An optimized circuit plus the bookkeeping to relate it back.

    ``remap`` maps every gate id that was *live in the original circuit*
    to its replacement id in :attr:`circuit`, or ``None`` when the gate
    was eliminated (folded to the semiring zero, or made unreachable).
    ``trace`` records ``(pass name, stored gate count after the pass)``
    for every pass that ran; ``skipped`` lists passes elided because
    they were provably no-ops (e.g. constant folding on a circuit with
    no constant gates).
    """

    circuit: Circuit
    remap: Remap
    trace: List[Tuple[str, int]] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def gates_before(self) -> int:
        return len(self.remap)

    @property
    def gates_after(self) -> int:
        return len(self.circuit.live_gates())


def _compose(outer: Remap, inner: Remap) -> Remap:
    """``old -> mid`` composed with ``mid -> new`` (``None`` absorbs)."""
    return {old: (None if mid is None else inner.get(mid))
            for old, mid in outer.items()}


def optimize_circuit(circuit: Circuit,
                     passes: Optional[Sequence[str]] = None) -> OptimizeResult:
    """Run a pass pipeline over ``circuit``.

    ``passes`` is a sequence of names from :data:`PASSES` (default:
    :data:`DEFAULT_PIPELINE`).  The result's circuit computes the same
    value as ``circuit`` in **every** commutative semiring, its
    ``inputs`` table is rebuilt for the surviving input gates, and
    ``result.remap`` translates original gate ids.
    """
    if passes is None:
        passes = DEFAULT_PIPELINE
    remap: Remap = {g: g for g in circuit.live_gates()}
    trace: List[Tuple[str, int]] = []
    skipped: List[str] = []
    current = circuit
    for name in passes:
        try:
            pass_cls = PASSES[name]
        except KeyError:
            raise ValueError(f"unknown optimization pass {name!r}; "
                             f"available: {sorted(PASSES)}") from None
        # Constant folding on a circuit without constant gates degenerates
        # to the base rebuild; elide it so an all-structural pipeline pays
        # for exactly one rebuild per pass that can make progress.
        if pass_cls is ConstantFoldPass and \
                not any(isinstance(g, ConstGate) for g in current.gates):
            skipped.append(name)
            continue
        current, step = pass_cls().run(current)
        remap = _compose(remap, step)
        trace.append((name, len(current.gates)))
    if passes and not trace:
        # Everything was elided: still deliver the rebuild guarantees
        # (dead-gate elimination, id compaction, CSE).
        current, step = CommonSubexpressionPass().run(current)
        remap = _compose(remap, step)
        trace.append(("cse", len(current.gates)))
    elif len(current.live_gates()) != len(current.gates):
        # Rewrites that absorb children into parents (flattening, folding)
        # leave the absorbed gates as dead storage; one closing rebuild
        # restores the compactness contract: every stored gate is live.
        current, step = CommonSubexpressionPass().run(current)
        remap = _compose(remap, step)
        trace.append(("compact", len(current.gates)))
    return OptimizeResult(current, remap, trace, skipped)
