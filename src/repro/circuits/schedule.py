"""Layered evaluation schedules: topological partition of a circuit.

A :class:`LayerSchedule` partitions a circuit's live gates into *layers*
subject to the **layer invariant**:

    every child of a gate in layer ``i`` lies in a layer ``j < i``;
    gates without children (inputs and constants) occupy layer 0.

Each gate is placed in the lowest layer the invariant allows (its depth:
``1 + max(layer of children)``), so all gates within one layer are
mutually independent and a whole layer can be evaluated at once from the
values of earlier layers.  Within a layer, gates are grouped into
:class:`GateGroup` buckets by kind — and, for additions and
multiplications, by fan-in — so a batched backend can evaluate an entire
group with a single rectangular reduction (stack the children of all
gates in the group into a ``(gates, fan_in, batch)`` tensor and reduce
over the fan-in axis).  This is what :mod:`repro.circuits.vectorized`
consumes.

The schedule is a pure-Python structure (no NumPy dependency), derived
once per circuit and cacheable: circuits are immutable after
construction/optimization, so a schedule never goes stale.
``CompiledQuery.schedule()`` memoizes it per compiled query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .gates import (AddGate, Circuit, ConstGate, GateId, InputGate, MulGate,
                    PermGate)

#: Group kinds, in the order they appear inside a layer.
KIND_INPUT = "input"
KIND_CONST = "const"
KIND_ADD = "add"
KIND_MUL = "mul"
KIND_PERM = "perm"


@dataclass(frozen=True)
class GateGroup:
    """A same-kind bucket of gates inside one layer.

    ``fan_in`` is the uniform child count for ``add``/``mul`` groups and
    ``None`` otherwise; ``children[i]`` lists the child gate ids of
    ``gate_ids[i]`` (``None`` for inputs, constants and permanent gates,
    whose operands are read from the gate itself).
    """

    kind: str
    fan_in: Optional[int]
    gate_ids: Tuple[GateId, ...]
    children: Optional[Tuple[Tuple[GateId, ...], ...]] = None


@dataclass(frozen=True)
class Layer:
    """One topological stratum: mutually independent gates."""

    index: int
    groups: Tuple[GateGroup, ...]

    def gate_count(self) -> int:
        return sum(len(group.gate_ids) for group in self.groups)


class LayerSchedule:
    """The layered, kind-grouped evaluation plan of one circuit."""

    def __init__(self, circuit: Circuit, layers: Tuple[Layer, ...],
                 layer_of: Dict[GateId, int],
                 input_gates: Tuple[Tuple[GateId, Hashable], ...],
                 const_gates: Tuple[Tuple[GateId, Any], ...]):
        self.circuit = circuit
        self.layers = layers
        self.layer_of = layer_of
        #: live input gates as ``(gate_id, key)`` pairs, in gate-id order.
        self.input_gates = input_gates
        #: live constant gates as ``(gate_id, raw value)`` pairs.
        self.const_gates = const_gates

    def __len__(self) -> int:
        return len(self.layers)

    def live_count(self) -> int:
        return len(self.layer_of)

    def stats(self) -> Dict[str, Any]:
        widest = max((layer.gate_count() for layer in self.layers), default=0)
        groups = sum(len(layer.groups) for layer in self.layers)
        kinds: Dict[str, int] = {}
        reducible = 0
        for layer in self.layers:
            for group in layer.groups:
                kinds[group.kind] = kinds.get(group.kind, 0) \
                    + len(group.gate_ids)
                if group.kind in (KIND_ADD, KIND_MUL):
                    reducible += len(group.gate_ids)
        return {
            "layers": len(self.layers),
            "live_gates": self.live_count(),
            "widest_layer": widest,
            "groups": groups,
            "inputs": len(self.input_gates),
            #: per-kind gate counts — the group metadata the guarded
            #: kernels reduce over (add/mul are the checked reductions).
            "gate_kinds": kinds,
            "reducible_gates": reducible,
        }

    def validate(self) -> None:
        """Assert the layer invariant (test/debug helper)."""
        seen_once: Dict[GateId, int] = {}
        circuit = self.circuit
        for layer in self.layers:
            for group in layer.groups:
                for gate_id in group.gate_ids:
                    assert gate_id not in seen_once, \
                        f"gate {gate_id} scheduled twice"
                    seen_once[gate_id] = layer.index
                    for child in circuit.children_of(circuit.gates[gate_id]):
                        assert self.layer_of[child] < layer.index, (
                            f"gate {gate_id} (layer {layer.index}) depends "
                            f"on {child} (layer {self.layer_of[child]})")
        assert set(seen_once) == set(circuit.live_gates()), \
            "schedule does not cover exactly the live gates"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LayerSchedule layers={len(self.layers)} "
                f"gates={self.live_count()}>")


def input_cone_masks(schedule: LayerSchedule) -> Dict[GateId, int]:
    """Per-gate bitmask of the input slots in the gate's input cone.

    Slot ``i`` is position ``i`` of ``schedule.input_gates``; the mask
    of a gate is the OR of its children's masks (inputs contribute their
    own slot bit).  Memoized on the schedule — schedules are immutable,
    so the cones never go stale.  The walk relies on the builder's
    topological gate-id order (children precede parents), the property
    every evaluator already assumes.
    """
    masks = getattr(schedule, "_input_cones", None)
    if masks is None:
        slot_of = {gate_id: slot for slot, (gate_id, _)
                   in enumerate(schedule.input_gates)}
        circuit = schedule.circuit
        masks = {}
        for gate_id in circuit.live_gates():
            mask = 0
            for child in circuit.children_of(circuit.gates[gate_id]):
                mask |= masks[child]
            slot = slot_of.get(gate_id)
            if slot is not None:
                mask |= 1 << slot
            masks[gate_id] = mask
        schedule._input_cones = masks
    return masks


def co_occurring_inputs(schedule: LayerSchedule, key: Hashable) -> frozenset:
    """The input keys that share a product monomial with input ``key``.

    Two inputs co-occur when some multiplication combines them: a MUL
    (or permanent) gate with ``key`` in one operand's input cone and the
    other input in a *different* operand's cone.  Every monomial of the
    polynomial the circuit computes multiplies its inputs together at
    such a gate, so this is a sound overapproximation of "appears in a
    common monomial" — the analysis behind touched-group-only result
    invalidation (an update to ``key`` can only change point queries
    whose selector inputs co-occur with it).  An unknown/dead ``key``
    returns the empty set (the circuit provably never reads it).

    Memoized per key on the schedule: serving workloads retag their
    caches on every routed update, usually over a small hot set of keys.
    """
    memo = getattr(schedule, "_co_occur_memo", None)
    if memo is None:
        memo = schedule._co_occur_memo = {}
    hit = memo.get(key)
    if hit is not None:
        return hit
    slot_of = {k: slot for slot, (_, k) in enumerate(schedule.input_gates)}
    slot = slot_of.get(key)
    if slot is None:
        memo[key] = frozenset()
        return memo[key]
    masks = input_cone_masks(schedule)
    circuit = schedule.circuit
    bit = 1 << slot
    met = 0
    for layer in schedule.layers:
        for group in layer.groups:
            if group.kind not in (KIND_MUL, KIND_PERM):
                continue
            for gate_id in group.gate_ids:
                children = circuit.children_of(circuit.gates[gate_id])
                child_masks = [masks[child] for child in children]
                if not any(mask & bit for mask in child_masks):
                    continue
                for index, mask in enumerate(child_masks):
                    if mask & bit:
                        # Operands other than the one holding ``key``
                        # multiply against it in some monomial.  (A
                        # permanent gate's sum-of-products pairs every
                        # operand with operands of the other rows, which
                        # the all-pairs treatment overapproximates.)
                        for j, other in enumerate(child_masks):
                            if j != index:
                                met |= other
    keys = []
    inputs = schedule.input_gates
    while met:
        low = (met & -met).bit_length() - 1
        keys.append(inputs[low][1])
        met &= met - 1
    result = frozenset(keys) - {key}
    memo[key] = result
    return result


def _kind_key(gate: Any) -> Tuple[str, Optional[int]]:
    if isinstance(gate, InputGate):
        return KIND_INPUT, None
    if isinstance(gate, ConstGate):
        return KIND_CONST, None
    if isinstance(gate, AddGate):
        return KIND_ADD, len(gate.children)
    if isinstance(gate, MulGate):
        return KIND_MUL, len(gate.children)
    if isinstance(gate, PermGate):
        return KIND_PERM, None
    raise TypeError(f"unknown gate {gate!r}")


def build_schedule(circuit: Circuit) -> LayerSchedule:
    """Partition the circuit's live gates into kind-grouped layers.

    Relies on the builder's topological gate-id order (children precede
    parents), the same property every evaluator already assumes.
    """
    layer_of: Dict[GateId, int] = {}
    # layer index -> (kind, fan_in) -> ([gate ids], [children tuples])
    buckets: Dict[int, Dict[Tuple[str, Optional[int]],
                            Tuple[List[GateId], List[Tuple[GateId, ...]]]]] = {}
    input_gates: List[Tuple[GateId, Hashable]] = []
    const_gates: List[Tuple[GateId, Any]] = []
    for gate_id in circuit.live_gates():
        gate = circuit.gates[gate_id]
        children = circuit.children_of(gate)
        index = (1 + max(layer_of[c] for c in children)) if children else 0
        layer_of[gate_id] = index
        kind, fan_in = _kind_key(gate)
        if kind == KIND_INPUT:
            input_gates.append((gate_id, gate.key))
        elif kind == KIND_CONST:
            const_gates.append((gate_id, gate.value))
        ids, kids = buckets.setdefault(index, {}).setdefault(
            (kind, fan_in), ([], []))
        ids.append(gate_id)
        kids.append(tuple(children))
    layers = []
    for index in range(max(buckets, default=-1) + 1):
        groups = []
        for (kind, fan_in), (ids, kids) in sorted(
                buckets.get(index, {}).items(),
                key=lambda item: (item[0][0], item[0][1] or 0)):
            groups.append(GateGroup(
                kind=kind, fan_in=fan_in, gate_ids=tuple(ids),
                children=(tuple(kids) if kind in (KIND_ADD, KIND_MUL)
                          else None)))
        layers.append(Layer(index=index, groups=tuple(groups)))
    return LayerSchedule(circuit, tuple(layers), layer_of,
                         tuple(input_gates), tuple(const_gates))
