"""Layered evaluation schedules: topological partition of a circuit.

A :class:`LayerSchedule` partitions a circuit's live gates into *layers*
subject to the **layer invariant**:

    every child of a gate in layer ``i`` lies in a layer ``j < i``;
    gates without children (inputs and constants) occupy layer 0.

Each gate is placed in the lowest layer the invariant allows (its depth:
``1 + max(layer of children)``), so all gates within one layer are
mutually independent and a whole layer can be evaluated at once from the
values of earlier layers.  Within a layer, gates are grouped into
:class:`GateGroup` buckets by kind — and, for additions and
multiplications, by fan-in — so a batched backend can evaluate an entire
group with a single rectangular reduction (stack the children of all
gates in the group into a ``(gates, fan_in, batch)`` tensor and reduce
over the fan-in axis).  This is what :mod:`repro.circuits.vectorized`
consumes.

The schedule is a pure-Python structure (no NumPy dependency), derived
once per circuit and cacheable: circuits are immutable after
construction/optimization, so a schedule never goes stale.
``CompiledQuery.schedule()`` memoizes it per compiled query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .gates import (AddGate, Circuit, ConstGate, GateId, InputGate, MulGate,
                    PermGate)

#: Group kinds, in the order they appear inside a layer.
KIND_INPUT = "input"
KIND_CONST = "const"
KIND_ADD = "add"
KIND_MUL = "mul"
KIND_PERM = "perm"


@dataclass(frozen=True)
class GateGroup:
    """A same-kind bucket of gates inside one layer.

    ``fan_in`` is the uniform child count for ``add``/``mul`` groups and
    ``None`` otherwise; ``children[i]`` lists the child gate ids of
    ``gate_ids[i]`` (``None`` for inputs, constants and permanent gates,
    whose operands are read from the gate itself).
    """

    kind: str
    fan_in: Optional[int]
    gate_ids: Tuple[GateId, ...]
    children: Optional[Tuple[Tuple[GateId, ...], ...]] = None


@dataclass(frozen=True)
class Layer:
    """One topological stratum: mutually independent gates."""

    index: int
    groups: Tuple[GateGroup, ...]

    def gate_count(self) -> int:
        return sum(len(group.gate_ids) for group in self.groups)


class LayerSchedule:
    """The layered, kind-grouped evaluation plan of one circuit."""

    def __init__(self, circuit: Circuit, layers: Tuple[Layer, ...],
                 layer_of: Dict[GateId, int],
                 input_gates: Tuple[Tuple[GateId, Hashable], ...],
                 const_gates: Tuple[Tuple[GateId, Any], ...]):
        self.circuit = circuit
        self.layers = layers
        self.layer_of = layer_of
        #: live input gates as ``(gate_id, key)`` pairs, in gate-id order.
        self.input_gates = input_gates
        #: live constant gates as ``(gate_id, raw value)`` pairs.
        self.const_gates = const_gates

    def __len__(self) -> int:
        return len(self.layers)

    def live_count(self) -> int:
        return len(self.layer_of)

    def stats(self) -> Dict[str, Any]:
        widest = max((layer.gate_count() for layer in self.layers), default=0)
        groups = sum(len(layer.groups) for layer in self.layers)
        kinds: Dict[str, int] = {}
        reducible = 0
        for layer in self.layers:
            for group in layer.groups:
                kinds[group.kind] = kinds.get(group.kind, 0) \
                    + len(group.gate_ids)
                if group.kind in (KIND_ADD, KIND_MUL):
                    reducible += len(group.gate_ids)
        return {
            "layers": len(self.layers),
            "live_gates": self.live_count(),
            "widest_layer": widest,
            "groups": groups,
            "inputs": len(self.input_gates),
            #: per-kind gate counts — the group metadata the guarded
            #: kernels reduce over (add/mul are the checked reductions).
            "gate_kinds": kinds,
            "reducible_gates": reducible,
        }

    def validate(self) -> None:
        """Assert the layer invariant (test/debug helper)."""
        seen_once: Dict[GateId, int] = {}
        circuit = self.circuit
        for layer in self.layers:
            for group in layer.groups:
                for gate_id in group.gate_ids:
                    assert gate_id not in seen_once, \
                        f"gate {gate_id} scheduled twice"
                    seen_once[gate_id] = layer.index
                    for child in circuit.children_of(circuit.gates[gate_id]):
                        assert self.layer_of[child] < layer.index, (
                            f"gate {gate_id} (layer {layer.index}) depends "
                            f"on {child} (layer {self.layer_of[child]})")
        assert set(seen_once) == set(circuit.live_gates()), \
            "schedule does not cover exactly the live gates"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LayerSchedule layers={len(self.layers)} "
                f"gates={self.live_count()}>")


def _kind_key(gate: Any) -> Tuple[str, Optional[int]]:
    if isinstance(gate, InputGate):
        return KIND_INPUT, None
    if isinstance(gate, ConstGate):
        return KIND_CONST, None
    if isinstance(gate, AddGate):
        return KIND_ADD, len(gate.children)
    if isinstance(gate, MulGate):
        return KIND_MUL, len(gate.children)
    if isinstance(gate, PermGate):
        return KIND_PERM, None
    raise TypeError(f"unknown gate {gate!r}")


def build_schedule(circuit: Circuit) -> LayerSchedule:
    """Partition the circuit's live gates into kind-grouped layers.

    Relies on the builder's topological gate-id order (children precede
    parents), the same property every evaluator already assumes.
    """
    layer_of: Dict[GateId, int] = {}
    # layer index -> (kind, fan_in) -> ([gate ids], [children tuples])
    buckets: Dict[int, Dict[Tuple[str, Optional[int]],
                            Tuple[List[GateId], List[Tuple[GateId, ...]]]]] = {}
    input_gates: List[Tuple[GateId, Hashable]] = []
    const_gates: List[Tuple[GateId, Any]] = []
    for gate_id in circuit.live_gates():
        gate = circuit.gates[gate_id]
        children = circuit.children_of(gate)
        index = (1 + max(layer_of[c] for c in children)) if children else 0
        layer_of[gate_id] = index
        kind, fan_in = _kind_key(gate)
        if kind == KIND_INPUT:
            input_gates.append((gate_id, gate.key))
        elif kind == KIND_CONST:
            const_gates.append((gate_id, gate.value))
        ids, kids = buckets.setdefault(index, {}).setdefault(
            (kind, fan_in), ([], []))
        ids.append(gate_id)
        kids.append(tuple(children))
    layers = []
    for index in range(max(buckets, default=-1) + 1):
        groups = []
        for (kind, fan_in), (ids, kids) in sorted(
                buckets.get(index, {}).items(),
                key=lambda item: (item[0][0], item[0][1] or 0)):
            groups.append(GateGroup(
                kind=kind, fan_in=fan_in, gate_ids=tuple(ids),
                children=(tuple(kids) if kind in (KIND_ADD, KIND_MUL)
                          else None)))
        layers.append(Layer(index=index, groups=tuple(groups)))
    return LayerSchedule(circuit, tuple(layers), layer_of,
                         tuple(input_gates), tuple(const_gates))
