"""A library of connectives between semirings (paper §7's examples)."""

from __future__ import annotations

from fractions import Fraction

from ..semirings import BOOLEAN, INTEGER, MAX_PLUS, NATURAL, RATIONAL, Semiring
from .syntax import Connective


def divide(numerator: Semiring = NATURAL, result: Semiring = RATIONAL
           ) -> Connective:
    """``/ : S x S -> Q`` mapping ``(p, q)`` to ``p/q`` (0 when q = 0)."""
    def fn(p, q):
        if q == 0:
            return result.coerce(0)
        return Fraction(p) / Fraction(q) if result is RATIONAL else p / q
    return Connective("/", fn, (numerator, numerator), result)


def divide_into_max_plus(numerator: Semiring = NATURAL) -> Connective:
    """``/ : N x N -> Q_max`` — the intro's max-average example: the
    quotient lives in ``(Q u {-inf}, max, +)`` so the outer aggregation can
    maximize it."""
    def fn(p, q):
        if q == 0:
            return MAX_PLUS.zero
        return p / q
    return Connective("/max", fn, (numerator, numerator), MAX_PLUS)


def less_than(domain: Semiring = NATURAL) -> Connective:
    """``< : S x S -> B`` (the order on numeric carriers)."""
    return Connective("<", lambda a, b: a < b, (domain, domain), BOOLEAN)


def greater_than(domain: Semiring = NATURAL) -> Connective:
    return Connective(">", lambda a, b: a > b, (domain, domain), BOOLEAN)


def at_least(threshold, domain: Semiring = NATURAL) -> Connective:
    """Unary threshold test ``(. >= t) : S -> B`` — the numerical
    predicates P of FOC(P) [15, 12]."""
    return Connective(f">={threshold}", lambda a: a >= threshold,
                      (domain,), BOOLEAN)


def equals_value(target, domain: Semiring = NATURAL) -> Connective:
    return Connective(f"=={target}", lambda a: a == target,
                      (domain,), BOOLEAN)


def modulo_test(modulus: int, remainder: int = 0,
                domain: Semiring = INTEGER) -> Connective:
    """``(. ≡ r mod m) : Z -> B`` — the MOD quantifiers of [3]."""
    return Connective(f"mod{modulus}", lambda a: a % modulus == remainder,
                      (domain,), BOOLEAN)


def iverson(target: Semiring) -> Connective:
    """``[.]_S : B -> S`` as an explicit connective."""
    return Connective(f"[.]_{target.name}",
                      lambda b: target.one if b else target.zero,
                      (BOOLEAN,), target)


def into(source: Semiring, target: Semiring, fn=None,
         name: str = "into") -> Connective:
    """A generic unary carrier conversion (e.g. N -> Q, Q -> Q_max)."""
    return Connective(name, fn or (lambda a: a), (source,), target)
