"""Theorem 26: evaluation of FOG[C] formulas on sparse structures.

The inductive algorithm of the paper's proof: find guarded connectives
``[R(x̄)]_S · c(φ^1, ..., φ^k)`` that are not nested inside another one,
evaluate every argument recursively (each is itself a FOG formula whose
free variables are covered by the guard), then *scan the guard relation* —
linearly many tuples — applying the connective to the precomputed argument
values and storing the result as a fresh S-relation ``r(x̄)``.  The
remaining connective-free formula is a weighted expression, handled by the
Theorem 8 engine; B-valued outputs additionally get the Theorem 24
enumerator.

Runtime: O(n log n) for general semirings, O(n) when all carriers are
rings or finite — queries at tuples are O(log n) / O(1) — matching the
theorem.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Sequence, Tuple

from ..engine import WeightedQueryEngine
from ..logic.fo import (Atom, Eq, Formula, Truth, conj, disj, exists,
                        is_quantifier_free, negate)
from ..logic.weighted import (Bracket, WAdd, WConst, WExpr, Weight, WMul,
                              WSum)
from ..semirings import BOOLEAN, Semiring
from ..structures import Structure
from .syntax import (FogExpr, SAdd, SAtom, SConst, SEq, SGuarded, SIverson,
                     SMul, SNot, SSum, STruth)

_FRESH = itertools.count()


def to_formula(expr: FogExpr, structure: Structure) -> Formula:
    """A connective-free B-valued expression as an FO formula."""
    if expr.semiring is not BOOLEAN:
        raise TypeError(f"{expr.semiring.name}-valued expression is not a "
                        f"boolean formula")
    if isinstance(expr, STruth):
        return Truth(expr.value)
    if isinstance(expr, SAtom):
        return Atom(expr.name, expr.terms)
    if isinstance(expr, SEq):
        return Eq(expr.left, expr.right)
    if isinstance(expr, SNot):
        return negate(to_formula(expr.inner, structure))
    if isinstance(expr, SMul):
        return conj(*(to_formula(p, structure) for p in expr.parts))
    if isinstance(expr, SAdd):
        return disj(*(to_formula(p, structure) for p in expr.parts))
    if isinstance(expr, SSum):
        return exists(expr.vars, to_formula(expr.inner, structure))
    if isinstance(expr, SConst):
        return Truth(bool(expr.value))
    raise TypeError(f"cannot convert {expr!r} to a formula (materialize "
                    f"guarded connectives first)")


def to_wexpr(expr: FogExpr, structure: Structure) -> WExpr:
    """A connective-free expression as a weighted Σ(w)-expression."""
    if isinstance(expr, STruth):
        return WConst(expr.value)
    if isinstance(expr, SConst):
        return WConst(expr.value)
    if isinstance(expr, SAtom):
        if expr.semiring is BOOLEAN:
            return Bracket(Atom(expr.name, expr.terms))
        return Weight(expr.name, expr.terms)
    if isinstance(expr, SEq):
        return Bracket(Eq(expr.left, expr.right))
    if isinstance(expr, SNot):
        inner = to_formula(expr.inner, structure)
        if not is_quantifier_free(inner):
            raise ValueError(
                "negation above a quantifier requires quantifier "
                "elimination (see repro.qe); FOG evaluation supports "
                "negation of quantifier-free subformulas natively")
        return Bracket(negate(inner))
    if isinstance(expr, SIverson):
        inner = to_formula(expr.inner, structure)
        return Bracket(inner)
    if isinstance(expr, SAdd):
        return WAdd(tuple(to_wexpr(p, structure) for p in expr.parts))
    if isinstance(expr, SMul):
        return WMul(tuple(to_wexpr(p, structure) for p in expr.parts))
    if isinstance(expr, SSum):
        return WSum(expr.vars, to_wexpr(expr.inner, structure))
    raise TypeError(f"cannot convert {expr!r} (materialize guarded "
                    f"connectives first)")


class FogResult:
    """The Theorem 26 data structure for one (sub)formula."""

    def __init__(self, structure: Structure, expr: FogExpr,
                 engine: WeightedQueryEngine):
        self.structure = structure
        self.expr = expr
        self.semiring: Semiring = expr.semiring
        self.engine = engine
        self.free: Tuple[str, ...] = engine.free

    def value(self) -> Any:
        return self.engine.value()

    def query(self, *arguments) -> Any:
        return self.engine.query(*arguments)

    def query_env(self, env: Dict[str, Any]) -> Any:
        if not self.free:
            return self.value()
        return self.engine.query({var: env[var] for var in self.free})

    def enumerate(self, dynamic_relations: Sequence[str] = ()):
        """Constant-delay enumerator for B-valued quantifier-free outputs
        (the final clause of Theorem 26)."""
        from ..enumeration import AnswerEnumerator
        formula = to_formula(self.expr, self.structure)
        return AnswerEnumerator(self.structure, formula,
                                free_order=self.free,
                                dynamic_relations=dynamic_relations)


def evaluate_fog(structure: Structure, expr: FogExpr,
                 free_order: Optional[Sequence[str]] = None) -> FogResult:
    """Evaluate a FOG[C] formula: returns a queryable result object."""
    processed = _materialize(structure, expr)
    wexpr = to_wexpr(processed, structure)
    engine = WeightedQueryEngine._create(structure, wexpr, processed.semiring,
                                         free_order=free_order)
    return FogResult(structure, processed, engine)


def _materialize(structure: Structure, expr: FogExpr) -> FogExpr:
    """Replace every guarded connective by a fresh S-relation computed by
    scanning the guard (the inductive step of the Theorem 26 proof)."""
    if isinstance(expr, SGuarded):
        results = [evaluate_fog(structure, arg) for arg in expr.args]
        fresh = f"_fog{next(_FRESH)}"
        guard_tuples = structure.relations.get(expr.guard_relation, set())
        target = expr.connective.result
        boolean = target is BOOLEAN
        for tup in sorted(guard_tuples, key=repr):
            env = dict(zip(expr.guard_terms, tup))
            values = [result.query_env(env) for result in results]
            outcome = expr.connective(*values)
            if boolean:
                if outcome:
                    structure.add_tuple(fresh, tup)
            else:
                structure.set_weight(fresh, tup, outcome)
        if boolean:
            structure.relations.setdefault(fresh, set())
        else:
            structure.weights.setdefault(fresh, {})
        structure._arity.setdefault(fresh, len(expr.guard_terms))
        return SAtom(fresh, expr.guard_terms, target)
    if isinstance(expr, (SAtom, SEq, SConst, STruth)):
        return expr
    if isinstance(expr, SNot):
        return SNot(_materialize(structure, expr.inner))
    if isinstance(expr, SIverson):
        return SIverson(_materialize(structure, expr.inner), expr.semiring)
    if isinstance(expr, SAdd):
        return SAdd(tuple(_materialize(structure, p) for p in expr.parts))
    if isinstance(expr, SMul):
        return SMul(tuple(_materialize(structure, p) for p in expr.parts))
    if isinstance(expr, SSum):
        return SSum(expr.vars, _materialize(structure, expr.inner))
    raise TypeError(f"unknown FOG expression {expr!r}")


def eval_fog_naive(expr: FogExpr, structure: Structure,
                   env: Optional[Dict[str, Any]] = None) -> Any:
    """Direct recursive semantics — the test oracle for Theorem 26."""
    env = env or {}
    sr = expr.semiring
    if isinstance(expr, STruth):
        return expr.value
    if isinstance(expr, SConst):
        return sr.coerce(expr.value)
    if isinstance(expr, SEq):
        return env[expr.left] == env[expr.right]
    if isinstance(expr, SAtom):
        tup = tuple(env[t] for t in expr.terms)
        if sr is BOOLEAN:
            return structure.has_tuple(expr.name, tup)
        return structure.weight(expr.name, tup, sr.zero)
    if isinstance(expr, SNot):
        return not eval_fog_naive(expr.inner, structure, env)
    if isinstance(expr, SIverson):
        return sr.one if eval_fog_naive(expr.inner, structure, env) \
            else sr.zero
    if isinstance(expr, SAdd):
        return sr.sum(eval_fog_naive(p, structure, env) for p in expr.parts)
    if isinstance(expr, SMul):
        return sr.prod(eval_fog_naive(p, structure, env) for p in expr.parts)
    if isinstance(expr, SSum):
        total = sr.zero
        for values in itertools.product(structure.domain,
                                        repeat=len(expr.vars)):
            inner_env = dict(env)
            inner_env.update(zip(expr.vars, values))
            total = sr.add(total, eval_fog_naive(expr.inner, structure,
                                                 inner_env))
        return total
    if isinstance(expr, SGuarded):
        tup = tuple(env[t] for t in expr.guard_terms)
        if not structure.has_tuple(expr.guard_relation, tup):
            return sr.zero
        values = [eval_fog_naive(arg, structure, env) for arg in expr.args]
        return expr.connective(*values)
    raise TypeError(f"unknown FOG expression {expr!r}")
