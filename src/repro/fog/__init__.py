"""Nested weighted queries FO[C] / FOG[C] (system S11): Theorem 26."""

from .connectives import (at_least, divide, divide_into_max_plus,
                          equals_value, greater_than, into, iverson,
                          less_than, modulo_test)
from .evaluator import (FogResult, eval_fog_naive, evaluate_fog, to_formula,
                        to_wexpr)
from .syntax import (Connective, FogExpr, SAdd, SAtom, SConst, SEq, SGuarded,
                     SIverson, SMul, SNot, SSum, STruth, guarded, s_exists,
                     s_sum)

__all__ = [
    "FogExpr", "SAtom", "SEq", "SConst", "STruth", "SNot", "SAdd", "SMul",
    "SSum", "SIverson", "SGuarded", "Connective", "s_sum", "s_exists",
    "guarded", "evaluate_fog", "eval_fog_naive", "FogResult", "to_formula",
    "to_wexpr", "divide", "divide_into_max_plus", "less_than",
    "greater_than", "at_least", "equals_value", "modulo_test", "iverson",
    "into",
]
