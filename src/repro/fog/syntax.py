"""Syntax of the nested weighted query languages FO[C] / FOG[C] (paper §7).

Formulas are S-valued for semirings ``S`` drawn from a collection ``C`` of
semirings and connectives.  Building blocks:

* :class:`SAtom` — an S-relation atom ``R(x̄)`` (a B-relation when
  ``S = B``; otherwise interpreted by a weight function of the structure);
* :class:`SEq`, :class:`SNot`, :class:`STruth` — boolean machinery;
* :class:`SConst`, :class:`SAdd`, :class:`SMul`, :class:`SSum` — semiring
  operations and aggregation (``Σ_x`` is ``∃`` in B);
* :class:`SIverson` — ``[φ]_S`` for quantifier-free boolean ``φ``;
* :class:`SGuarded` — the FOG[C] guarded connective
  ``[R(x_1..x_l)]_S · c(φ^1, ..., φ^k)``, where the guard's variables
  contain all free variables of the arguments.

Typing is checked at construction: operands of ``+``/``·`` must share the
output semiring, connective arguments must match the declared signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Sequence, Tuple

from ..semirings import BOOLEAN, Semiring


@dataclass(frozen=True)
class Connective:
    """A typed function ``c : S_1 x ... x S_k -> S`` between semirings."""

    name: str
    fn: Callable
    arg_semirings: Tuple[Semiring, ...]
    result: Semiring

    def __call__(self, *values):
        return self.fn(*values)


class FogExpr:
    """Base class; every node knows its output semiring."""

    semiring: Semiring = BOOLEAN

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __add__(self, other: "FogExpr") -> "FogExpr":
        return SAdd((self, other))

    def __mul__(self, other: "FogExpr") -> "FogExpr":
        return SMul((self, other))

    def __and__(self, other: "FogExpr") -> "FogExpr":
        return SMul((self, other))

    def __or__(self, other: "FogExpr") -> "FogExpr":
        return SAdd((self, other))

    def __invert__(self) -> "FogExpr":
        return SNot(self)


def _check_same_semiring(parts: Sequence[FogExpr], context: str) -> Semiring:
    semirings = {id(p.semiring) for p in parts}
    if len(semirings) != 1:
        names = sorted({p.semiring.name for p in parts})
        raise TypeError(f"{context}: mixed semirings {names} (use a "
                        f"connective to convert)")
    return parts[0].semiring


@dataclass(frozen=True)
class STruth(FogExpr):
    value: bool
    semiring: Semiring = field(default=BOOLEAN, compare=False)

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class SAtom(FogExpr):
    """``R(x̄)``: a B-relation (if ``semiring is BOOLEAN``) or an
    S-relation interpreted by the structure's weight ``name``."""

    name: str
    terms: Tuple[str, ...]
    semiring: Semiring = field(default=BOOLEAN, compare=False)

    def free_vars(self) -> FrozenSet[str]:
        return frozenset(self.terms)


@dataclass(frozen=True)
class SEq(FogExpr):
    left: str
    right: str
    semiring: Semiring = field(default=BOOLEAN, compare=False)

    def free_vars(self) -> FrozenSet[str]:
        return frozenset((self.left, self.right))


@dataclass(frozen=True)
class SConst(FogExpr):
    value: Any
    semiring: Semiring = field(compare=False, default=BOOLEAN)

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class SNot(FogExpr):
    """Negation — B-valued only (paper §7 syntax)."""

    inner: FogExpr
    semiring: Semiring = field(default=BOOLEAN, compare=False)

    def __post_init__(self):
        if self.inner.semiring is not BOOLEAN:
            raise TypeError("negation applies to B-valued formulas only")

    def free_vars(self) -> FrozenSet[str]:
        return self.inner.free_vars()


@dataclass(frozen=True)
class SAdd(FogExpr):
    parts: Tuple[FogExpr, ...]
    semiring: Semiring = field(default=BOOLEAN, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "semiring",
                           _check_same_semiring(self.parts, "+"))

    def free_vars(self) -> FrozenSet[str]:
        return frozenset().union(*(p.free_vars() for p in self.parts))


@dataclass(frozen=True)
class SMul(FogExpr):
    parts: Tuple[FogExpr, ...]
    semiring: Semiring = field(default=BOOLEAN, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "semiring",
                           _check_same_semiring(self.parts, "*"))

    def free_vars(self) -> FrozenSet[str]:
        return frozenset().union(*(p.free_vars() for p in self.parts))


@dataclass(frozen=True)
class SSum(FogExpr):
    """``Σ_x φ`` in φ's semiring (``∃x`` when that semiring is B)."""

    vars: Tuple[str, ...]
    inner: FogExpr
    semiring: Semiring = field(default=BOOLEAN, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "semiring", self.inner.semiring)

    def free_vars(self) -> FrozenSet[str]:
        return self.inner.free_vars() - frozenset(self.vars)


@dataclass(frozen=True)
class SIverson(FogExpr):
    """``[φ]_S`` for a B-valued φ (the bracket connective)."""

    inner: FogExpr
    semiring: Semiring = field(compare=False, default=BOOLEAN)

    def __post_init__(self):
        if self.inner.semiring is not BOOLEAN:
            raise TypeError("[.]_S applies to B-valued formulas")

    def free_vars(self) -> FrozenSet[str]:
        return self.inner.free_vars()


@dataclass(frozen=True)
class SGuarded(FogExpr):
    """The FOG[C] guarded connective ``[R(x̄)]_S · c(φ^1, ..., φ^k)``."""

    guard_relation: str
    guard_terms: Tuple[str, ...]
    connective: Connective
    args: Tuple[FogExpr, ...]
    semiring: Semiring = field(default=BOOLEAN, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "semiring", self.connective.result)
        if len(self.args) != len(self.connective.arg_semirings):
            raise TypeError(f"{self.connective.name} expects "
                            f"{len(self.connective.arg_semirings)} arguments")
        for arg, expected in zip(self.args, self.connective.arg_semirings):
            if arg.semiring is not expected:
                raise TypeError(
                    f"{self.connective.name}: argument semiring "
                    f"{arg.semiring.name} != declared {expected.name}")
        guard_vars = set(self.guard_terms)
        for arg in self.args:
            if not arg.free_vars() <= guard_vars:
                raise TypeError(
                    "FOG[C] requires the guard's variables to contain all "
                    "free variables of the connective's arguments "
                    "(paper §7)")

    def free_vars(self) -> FrozenSet[str]:
        return frozenset(self.guard_terms)


# -- convenience constructors ---------------------------------------------------

def s_sum(variables, inner: FogExpr) -> SSum:
    if isinstance(variables, str):
        variables = (variables,)
    return SSum(tuple(variables), inner)


def s_exists(variables, inner: FogExpr) -> SSum:
    return s_sum(variables, inner)


def guarded(relation: str, terms: Sequence[str], connective: Connective,
            *args: FogExpr) -> SGuarded:
    return SGuarded(relation, tuple(terms), connective, tuple(args))
