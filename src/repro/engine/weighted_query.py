"""Theorem 8: the weighted query evaluation engine.

Closed queries compile straight through the Theorem 6 pipeline; a query
``f(x)`` with free variables is wrapped as the closed expression

    f' = Σ_x  f(x) · v_1(x_1) ··· v_k(x_k)

with fresh *selector* weights ``v_i`` that default to 0, so a point query
``f(a)`` is ``2|x|`` weight updates around one read (the proof of
Theorem 8).  Updates and queries are therefore O(log |A|) in general
semirings and O(1) in rings and finite semirings.

Engine lifecycle: the constructor installs its selector weights into the
*caller's* structure, and :meth:`WeightedQueryEngine.close` removes them
again — use the engine as a context manager (``with WeightedQueryEngine(
...) as engine:``) so repeated engine construction over one long-lived
structure cannot grow its weight table without bound.  A closed engine
rejects further queries and updates.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from .._compat import warn_deprecated
from ..circuits import (VectorizedEvaluator, co_occurring_inputs, kernel_for,
                        validate_backend, validate_exact_mode)
from ..core import CompiledQuery, DynamicQuery, _compile_structure_query
from ..logic.weighted import Sum, WExpr, WMul, Weight
from ..semirings import Semiring
from ..structures import Structure

SELECTOR_PREFIX = "_sel"

# Monotone id source for selector-name tags.  itertools.count() increments
# under a single bytecode-level step, so concurrently constructed engines
# (e.g. one per worker thread of a multi-core sweep) can never observe the
# same tag and mint colliding selector names, unlike the read-modify-write
# race of a mutable counter cell.
_ENGINE_COUNTER = itertools.count(1)


class WeightedQueryEngine:
    """Linear-time preprocessing; point queries and updates afterwards.

    ``expr`` may have free variables; ``free_order`` fixes the argument
    order of :meth:`query` (defaults to sorted order).

    ``plan_cache`` (a :class:`repro.serve.PlanCache`) memoizes the whole
    compilation: engines over content-equal structures with the same
    query/semiring share one compiled circuit and layer schedule, each
    with its own copy of the mutable update state.  Cacheable engines
    use deterministic selector names (derived from content + query
    identity); if those names are already live on the host structure —
    a second identical engine on the *same* structure — the constructor
    falls back to unique names and compiles fresh.
    """

    def __init__(self, structure: Structure, expr: WExpr, sr: Semiring,
                 dynamic_relations: Sequence[str] = (),
                 free_order: Optional[Sequence[str]] = None,
                 strategy: Optional[str] = None,
                 optimize: bool = True,
                 plan_cache: Optional[Any] = None,
                 plan_store: Optional[Any] = None):
        # Direct construction is the deprecated seam; the facade and the
        # serving layer build engines through :meth:`_create`.
        warn_deprecated("WeightedQueryEngine(...)",
                        "Database.prepare(expr, params=...).bind(...)")
        self._init(structure, expr, sr, dynamic_relations=dynamic_relations,
                   free_order=free_order, strategy=strategy,
                   optimize=optimize, plan_cache=plan_cache,
                   plan_store=plan_store)

    @classmethod
    def _create(cls, structure: Structure, expr: WExpr, sr: Semiring,
                **kwargs) -> "WeightedQueryEngine":
        """Internal warning-free constructor (facade / serving layer)."""
        engine = cls.__new__(cls)
        engine._init(structure, expr, sr, **kwargs)
        return engine

    def _init(self, structure: Structure, expr: WExpr, sr: Semiring,
              dynamic_relations: Sequence[str] = (),
              free_order: Optional[Sequence[str]] = None,
              strategy: Optional[str] = None,
              optimize: bool = True,
              plan_cache: Optional[Any] = None,
              plan_store: Optional[Any] = None,
              verify: Optional[bool] = None):
        self.sr = sr
        self.free: Tuple[str, ...] = tuple(
            free_order if free_order is not None else sorted(expr.free_vars()))
        if set(self.free) != set(expr.free_vars()):
            raise ValueError(f"free_order {self.free} does not match the "
                             f"expression's free variables")
        self.structure = structure
        self._closed = False
        self._affected_memo: Dict[Tuple, Optional[Tuple]] = {}
        if plan_cache is not None or plan_store is not None:
            # Cacheable construction needs *deterministic* selector names:
            # both plan tiers key on the structure's content fingerprint
            # *after* the selectors are installed, so two engines over
            # content-equal structures must install identically-named
            # selectors to share one compiled plan (within this process
            # via the cache, across processes via the store).  Derive the
            # names from the pre-install content plus the query identity.
            digest = hashlib.sha256("\x00".join(
                (structure.fingerprint(), repr(expr), sr.name,
                 ",".join(self.free), ",".join(sorted(dynamic_relations)),
                 str(bool(optimize)))).encode()).hexdigest()[:12]
            self.selectors = [f"{SELECTOR_PREFIX}c{digest}_{i}"
                              for i in range(len(self.free))]
            if any(name in structure.weights for name in self.selectors):
                # Another live engine with the same identity already owns
                # these names on this very structure.  Fall back to unique
                # names and bypass both plan tiers for this construction
                # (the fingerprint now includes the other engine's
                # selectors, so a lookup could never hit anyway).
                plan_cache = None
                plan_store = None
        if plan_cache is None and plan_store is None:
            tag = next(_ENGINE_COUNTER)
            self.selectors = [f"{SELECTOR_PREFIX}{tag}_{i}"
                              for i in range(len(self.free))]
        if self.free:
            for name in self.selectors:
                for element in structure.domain:
                    structure.set_weight(name, (element,), sr.zero)
            closed = Sum(self.free, WMul(
                (expr,) + tuple(Weight(name, (var,))
                                for name, var in zip(self.selectors,
                                                     self.free))))
        else:
            closed = expr
        try:
            self.compiled: CompiledQuery = _compile_structure_query(
                structure, closed, dynamic_relations=dynamic_relations,
                optimize=optimize, plan_cache=plan_cache,
                plan_store=plan_store, verify=verify)
            self.dynamic: DynamicQuery = self.compiled._dynamic(
                sr, strategy=strategy)
        except BaseException:
            # A failed construction leaves no engine to close(): strip the
            # selectors installed above so the caller's structure does not
            # leak weight functions on every failed attempt.
            self.close()
            raise

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Strip this engine's selector weights from the host structure.

        The constructor writes ``|free| * |domain|`` selector entries into
        the shared :class:`Structure`; without ``close()`` every engine
        constructed over the same structure leaks its selectors into the
        structure's weight table forever.  Idempotent; after closing, the
        engine refuses queries and updates.
        """
        if self._closed:
            return
        self._closed = True
        for name in self.selectors:
            self.structure.remove_weight(name)

    def __enter__(self) -> "WeightedQueryEngine":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed (its selector weights were "
                               "removed from the structure)")

    # -- queries ---------------------------------------------------------------

    def value(self) -> Any:
        """The value of a *closed* query (raises if free variables exist)."""
        if self.free:
            raise ValueError("query(...) must be used: the expression has "
                             f"free variables {self.free}")
        self._check_open()
        return self.dynamic.value()

    def query(self, *arguments) -> Any:
        """``f(a)`` for a tuple ``a`` aligned with ``free_order``."""
        self._check_open()
        if len(arguments) == 1 and isinstance(arguments[0], dict):
            assignment = arguments[0]
            arguments = tuple(assignment[var] for var in self.free)
        if len(arguments) != len(self.free):
            raise ValueError(f"expected {len(self.free)} arguments")
        one, zero = self.sr.one, self.sr.zero
        # The selector protocol must be exception-safe: if raising a
        # selector (or the read) fails partway, the finally block still
        # zeroes every selector, so a failed probe cannot leave selectors
        # hot and silently poison all later queries.  The restore loop is
        # itself per-selector guarded — one failing restore must not skip
        # the remaining selectors.
        try:
            for name, element in zip(self.selectors, arguments):
                self.dynamic.update_weight(name, (element,), one)
            return self.dynamic.value()
        finally:
            restore_error = None
            for name, element in zip(self.selectors, arguments):
                try:
                    self.dynamic.update_weight(name, (element,), zero)
                except BaseException as error:  # noqa: BLE001
                    if restore_error is None:
                        restore_error = error
            if restore_error is not None:
                raise restore_error

    def query_batch(self, argument_tuples: Sequence[Sequence[Hashable]],
                    backend: str = "auto",
                    workers: Optional[int] = None,
                    executor: Optional[Any] = None,
                    exact_mode: str = "auto") -> list:
        """``[f(a) for a in argument_tuples]`` in one batched circuit pass.

        Each argument tuple is turned into a valuation that sets its
        selector weights to ``1`` (everything else keeps the engine's
        current weights), and the whole batch is evaluated in a single
        batched sweep — the point-query protocol of Theorem 8, amortized
        over N probes.  The engine's dynamic state is not disturbed.

        ``backend`` and ``workers`` are forwarded to
        :meth:`CompiledQuery.evaluate_batch`: ``"numpy"`` selects the
        vectorized layered backend, ``"python"`` the pure-Python one,
        ``"auto"`` picks the best available for the semiring; ``workers``
        shards the batch across a thread pool (``executor`` lends an
        existing pool for the sharding — see
        :meth:`CompiledQuery.evaluate_batch`).  ``exact_mode`` picks the
        vectorized kernel for the exact carriers (guarded int64 fast
        path vs object dtype; see ``evaluate_batch``).  Both strings are
        validated eagerly, before any selector valuation is built.
        """
        validate_backend(backend)
        validate_exact_mode(exact_mode)
        self._check_open()
        one = self.sr.one
        valuations = [{key: one for key in keys}
                      for keys in self._selector_columns(argument_tuples)]
        return self.compiled.evaluate_batch(self.sr, valuations,
                                            backend=backend, workers=workers,
                                            executor=executor,
                                            exact_mode=exact_mode)

    def _selector_columns(self, argument_tuples: Sequence[Sequence[Hashable]]
                          ) -> list:
        """One selector-key tuple per argument tuple, domain-validated."""
        domain = set(self.structure.domain)
        columns = []
        for arguments in argument_tuples:
            arguments = tuple(arguments)
            if len(arguments) != len(self.free):
                raise ValueError(f"expected {len(self.free)} arguments, "
                                 f"got {arguments!r}")
            for element in arguments:
                if element not in domain:
                    # Match query(): selector weights exist only for
                    # domain elements, so an unknown element is an error,
                    # not a silent zero.
                    raise KeyError(f"{element!r} is not in the structure's "
                                   f"domain")
            columns.append(tuple(("w", name, (element,))
                                 for name, element in zip(self.selectors,
                                                          arguments)))
        return columns

    def query_groups(self, argument_tuples: Sequence[Sequence[Hashable]],
                     backend: str = "auto",
                     workers: Optional[int] = None,
                     executor: Optional[Any] = None,
                     exact_mode: str = "auto") -> list:
        """:meth:`query_batch` specialized to the grouped-aggregation
        sweep: every batch column raises its selectors to the *same*
        value (``sr.one``), so on the vectorized backend the whole
        batch's selector edits collapse into one fancy-index scatter
        (:meth:`~repro.circuits.VectorizedEvaluator.from_uniform_overrides`)
        over the memoized base column.  Semantics are identical to
        ``query_batch``; the python backend and worker-sharded sweeps
        fall through to it unchanged.
        """
        validate_backend(backend)
        validate_exact_mode(exact_mode)
        self._check_open()
        kernel = None
        if backend != "python":
            kernel = kernel_for(self.sr, exact_mode)
            if kernel is None and backend == "numpy":
                raise RuntimeError(
                    f"backend='numpy' unavailable: numpy is not installed "
                    f"or semiring {self.sr.name} has no array kernel")
        if kernel is None or (workers is not None and workers > 1):
            return self.query_batch(argument_tuples, backend=backend,
                                    workers=workers, executor=executor,
                                    exact_mode=exact_mode)
        columns = self._selector_columns(argument_tuples)
        compiled = self.compiled
        evaluator = VectorizedEvaluator.from_uniform_overrides(
            compiled.circuit, self.sr,
            compiled._cached_override_base(self.sr, kernel),
            columns, self.sr.one,
            schedule=compiled.schedule(), kernel=kernel)
        compiled._note_kernel(evaluator)
        return evaluator.results()

    def affected_arguments(self, update_keys: Sequence[Hashable]
                           ) -> Optional[Tuple]:
        """Which point queries an update of ``update_keys`` may change.

        Returns one set of domain elements per free-variable position:
        ``f(a)`` can only change if ``a[i]`` is in set ``i`` for *every*
        position (each monomial of the Theorem 8 closed form contains
        exactly one selector per position, so the update must co-occur
        with all of ``a``'s selectors to reach ``f(a)``); see
        :func:`repro.circuits.co_occurring_inputs` for the circuit-level
        analysis.  Returns ``None`` for closed queries (no per-argument
        granularity exists).  This is the seam behind touched-group-only
        cache invalidation: after a routed update, cached results whose
        arguments fail the test are provably still correct.

        The analysis reads only static circuit topology (the schedule's
        per-gate input cones), never gate values, so it is memoized per
        ``update_keys`` — a write stream that revisits tuples (live edge
        weights) pays the cone walk once per distinct write target.
        """
        if not self.free:
            return None
        memo_key = tuple(update_keys)
        try:
            return self._affected_memo[memo_key]
        except KeyError:
            pass
        schedule = self.compiled.schedule()
        met = set()
        for key in update_keys:
            met |= co_occurring_inputs(schedule, key)
        affected = []
        for name in self.selectors:
            affected.append(frozenset(
                key[2][0] for key in met
                if isinstance(key, tuple) and len(key) == 3
                and key[0] == "w" and key[1] == name))
        if len(self._affected_memo) >= 8192:  # bound a long write stream
            self._affected_memo.clear()
        self._affected_memo[memo_key] = tuple(affected)
        return self._affected_memo[memo_key]

    # -- updates ----------------------------------------------------------------

    def update_weight(self, name: str, tup: Tuple, value: Any) -> int:
        self._check_open()
        return self.dynamic.update_weight(name, tup, value)

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        self._check_open()
        return self.dynamic.set_relation(name, tup, present)

    def stats(self) -> Dict[str, Any]:
        return self.compiled.stats()
