"""Theorem 8: the weighted query evaluation engine.

Closed queries compile straight through the Theorem 6 pipeline; a query
``f(x)`` with free variables is wrapped as the closed expression

    f' = Σ_x  f(x) · v_1(x_1) ··· v_k(x_k)

with fresh *selector* weights ``v_i`` that default to 0, so a point query
``f(a)`` is ``2|x|`` weight updates around one read (the proof of
Theorem 8).  Updates and queries are therefore O(log |A|) in general
semirings and O(1) in rings and finite semirings.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from ..core import CompiledQuery, DynamicQuery, compile_structure_query
from ..logic.weighted import Sum, WExpr, WMul, Weight
from ..semirings import Semiring
from ..structures import Structure

SELECTOR_PREFIX = "_sel"

_ENGINE_COUNTER = [0]


class WeightedQueryEngine:
    """Linear-time preprocessing; point queries and updates afterwards.

    ``expr`` may have free variables; ``free_order`` fixes the argument
    order of :meth:`query` (defaults to sorted order).
    """

    def __init__(self, structure: Structure, expr: WExpr, sr: Semiring,
                 dynamic_relations: Sequence[str] = (),
                 free_order: Optional[Sequence[str]] = None,
                 strategy: Optional[str] = None,
                 optimize: bool = True):
        self.sr = sr
        self.free: Tuple[str, ...] = tuple(
            free_order if free_order is not None else sorted(expr.free_vars()))
        if set(self.free) != set(expr.free_vars()):
            raise ValueError(f"free_order {self.free} does not match the "
                             f"expression's free variables")
        self.structure = structure
        _ENGINE_COUNTER[0] += 1
        tag = _ENGINE_COUNTER[0]
        self.selectors = [f"{SELECTOR_PREFIX}{tag}_{i}"
                          for i in range(len(self.free))]
        if self.free:
            for name in self.selectors:
                for element in structure.domain:
                    structure.set_weight(name, (element,), sr.zero)
            closed = Sum(self.free, WMul(
                (expr,) + tuple(Weight(name, (var,))
                                for name, var in zip(self.selectors,
                                                     self.free))))
        else:
            closed = expr
        self.compiled: CompiledQuery = compile_structure_query(
            structure, closed, dynamic_relations=dynamic_relations,
            optimize=optimize)
        self.dynamic: DynamicQuery = self.compiled.dynamic(
            sr, strategy=strategy)

    # -- queries ---------------------------------------------------------------

    def value(self) -> Any:
        """The value of a *closed* query (raises if free variables exist)."""
        if self.free:
            raise ValueError("query(...) must be used: the expression has "
                             f"free variables {self.free}")
        return self.dynamic.value()

    def query(self, *arguments) -> Any:
        """``f(a)`` for a tuple ``a`` aligned with ``free_order``."""
        if len(arguments) == 1 and isinstance(arguments[0], dict):
            assignment = arguments[0]
            arguments = tuple(assignment[var] for var in self.free)
        if len(arguments) != len(self.free):
            raise ValueError(f"expected {len(self.free)} arguments")
        one, zero = self.sr.one, self.sr.zero
        for name, element in zip(self.selectors, arguments):
            self.dynamic.update_weight(name, (element,), one)
        value = self.dynamic.value()
        for name, element in zip(self.selectors, arguments):
            self.dynamic.update_weight(name, (element,), zero)
        return value

    def query_batch(self, argument_tuples: Sequence[Sequence[Hashable]]
                    ) -> list:
        """``[f(a) for a in argument_tuples]`` in one batched circuit pass.

        Each argument tuple is turned into a valuation that sets its
        selector weights to ``1`` (everything else keeps the engine's
        current weights), and the whole batch is evaluated by a single
        :class:`~repro.circuits.BatchedEvaluator` sweep — the point-query
        protocol of Theorem 8, amortized over N probes.  The engine's
        dynamic state is not disturbed.
        """
        one = self.sr.one
        domain = set(self.structure.domain)
        valuations = []
        for arguments in argument_tuples:
            arguments = tuple(arguments)
            if len(arguments) != len(self.free):
                raise ValueError(f"expected {len(self.free)} arguments, "
                                 f"got {arguments!r}")
            for element in arguments:
                if element not in domain:
                    # Match query(): selector weights exist only for
                    # domain elements, so an unknown element is an error,
                    # not a silent zero.
                    raise KeyError(f"{element!r} is not in the structure's "
                                   f"domain")
            valuations.append({("w", name, (element,)): one
                               for name, element in zip(self.selectors,
                                                        arguments)})
        return self.compiled.evaluate_batch(self.sr, valuations)

    # -- updates ----------------------------------------------------------------

    def update_weight(self, name: str, tup: Tuple, value: Any) -> int:
        return self.dynamic.update_weight(name, tup, value)

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        return self.dynamic.set_relation(name, tup, present)

    def stats(self) -> Dict[str, Any]:
        return self.compiled.stats()
