"""Theorem 8 engine (system S8): weighted query evaluation with updates."""

from .weighted_query import SELECTOR_PREFIX, WeightedQueryEngine

__all__ = ["WeightedQueryEngine", "SELECTOR_PREFIX"]
