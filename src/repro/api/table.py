"""ResultTable: the grouped-aggregation result surface.

``PreparedQuery.group_by`` (and ``QueryService.group_by``) evaluate all
groups of a parameterized query in one batched sweep and return a
:class:`ResultTable` — ordered rows of key tuple → aggregate value with
a small relational surface: ``columns``, iteration, ``to_dicts()``, an
optional ``to_numpy()`` for the value column, and lookup by group key.

ROLLUP subtotal rows mark the rolled-up key positions with the
:data:`TOTAL` sentinel (the analogue of SQL's ``NULL`` in ``ROLLUP``
output, without colliding with a legitimate domain element ``None``).

:class:`Select` is the SQL-ish sugar over the same seam::

    table = (db.select(expr)
               .group_by("x")
               .having(lambda value: value > 0)
               .run(NATURAL))
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, \
    Tuple


class _Total:
    """Singleton marking a rolled-up key position in a subtotal row."""

    __slots__ = ()
    _instance: Optional["_Total"] = None

    def __new__(cls) -> "_Total":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOTAL"


#: The rolled-up key marker in ROLLUP subtotal rows.
TOTAL = _Total()


class ResultTable:
    """Ordered rows of group key tuple → aggregate value.

    Each row is ``key + (value,)`` — a flat tuple aligned with
    :attr:`columns` (the query's parameter names plus the value column).
    Base rows keep the evaluation's group order; ROLLUP subtotal rows
    (key positions marked :data:`TOTAL`, finest level first, grand total
    last) follow them.  ``stats`` carries the sweep telemetry the
    producing seam recorded (group count, sweep shape, kernel, cache
    hits) — surfaced by ``PreparedQuery.stats()``/``explain()``.
    """

    __slots__ = ("columns", "_keys", "_values", "stats")

    def __init__(self, columns: Sequence[str], keys: Sequence[Tuple],
                 values: Sequence[Any],
                 stats: Optional[Dict[str, Any]] = None):
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        self.columns: Tuple[str, ...] = tuple(columns)
        self._keys: List[Tuple] = [tuple(key) for key in keys]
        self._values: List[Any] = list(values)
        self.stats: Dict[str, Any] = dict(stats or {})

    # -- relational surface ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Tuple]:
        for key, value in zip(self._keys, self._values):
            yield key + (value,)

    def keys(self) -> List[Tuple]:
        """The group key tuples, in row order."""
        return list(self._keys)

    def values(self) -> List[Any]:
        """The aggregate values, in row order."""
        return list(self._values)

    def _as_key(self, key: Any) -> Tuple:
        """Normalize a lookup to a full key tuple.  A tuple of the key
        arity is the row key itself; anything else is a bare element of
        a 1-ary key (so tuple-valued domain elements still work:
        ``table[(0, 1)]`` on a 1-ary table means the element ``(0, 1)``).
        """
        arity = len(self.columns) - 1
        if isinstance(key, tuple) and len(key) == arity:
            return key
        return (key,)

    def __getitem__(self, key: Any) -> Any:
        """The aggregate of one group (``table[a]`` or ``table[a, b]``)."""
        key = self._as_key(key)
        for row_key, value in zip(self._keys, self._values):
            if row_key == key:
                return value
        raise KeyError(key)

    def __contains__(self, key: Any) -> bool:
        return self._as_key(key) in self._keys

    def to_dicts(self) -> List[Dict[str, Any]]:
        """One ``{column: value}`` dict per row, in row order."""
        return [dict(zip(self.columns, row)) for row in self]

    def to_numpy(self):
        """The value column as a NumPy array (requires numpy).

        Group keys are arbitrary domain elements, so only the aggregate
        column has an array form; pair it with :meth:`keys` for the row
        labels.
        """
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy leg always has it
            raise RuntimeError(
                "ResultTable.to_numpy() requires numpy; iterate the table "
                "or use to_dicts() on numpy-less installs") from None
        return numpy.asarray(self._values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ResultTable columns={self.columns} rows={len(self)}>")


def attach_rollup(keys: List[Tuple], values: List[Any], sr: Any
                  ) -> Tuple[List[Tuple], List[Any]]:
    """Append ROLLUP subtotal rows to a base group listing.

    For ``k``-ary keys, level ``j`` (``j = k-1 .. 0``) folds the base
    aggregates of every distinct ``j``-prefix with the semiring's
    addition, emitting ``prefix + (TOTAL,) * (k - j)`` rows — finest
    subtotals first, the grand total (all positions ``TOTAL``) last.
    Subtotals aggregate *all* base groups (a HAVING filter applies to
    base rows only; see ``group_by``), and prefixes keep first-seen
    order, so the output is deterministic in the base row order.
    """
    if not keys:
        return keys, values
    arity = len(keys[0])
    out_keys = list(keys)
    out_values = list(values)
    for level in range(arity - 1, -1, -1):
        folded: Dict[Tuple, Any] = {}
        order: List[Tuple] = []
        for key, value in zip(keys, values):
            prefix = key[:level]
            if prefix in folded:
                folded[prefix] = sr.add(folded[prefix], value)
            else:
                folded[prefix] = value
                order.append(prefix)
        pad = (TOTAL,) * (arity - level)
        for prefix in order:
            out_keys.append(prefix + pad)
            out_values.append(folded[prefix])
    return out_keys, out_values


def apply_having(keys: List[Tuple], values: List[Any],
                 having: Optional[Callable[[Any], bool]]
                 ) -> Tuple[List[Tuple], List[Any]]:
    """Filter base group rows by a predicate on the aggregate value."""
    if having is None:
        return keys, values
    kept_keys: List[Tuple] = []
    kept_values: List[Any] = []
    for key, value in zip(keys, values):
        if having(value):
            kept_keys.append(key)
            kept_values.append(value)
    return kept_keys, kept_values


class Select:
    """SQL-ish builder over ``Database.prepare(...).group_by(...)``.

    Accumulates the grouping keys, HAVING predicate and ROLLUP flag,
    then :meth:`run` prepares the expression once (cached on the
    builder, registered with the database) and evaluates the grouped
    sweep.  Repeated ``run`` calls reuse the prepared handle, so warm
    groups come from the shared result cache.
    """

    def __init__(self, db: Any, expr: Any, dynamic: Sequence[str] = (),
                 **overrides):
        self._db = db
        self._expr = expr
        self._dynamic = tuple(dynamic)
        self._overrides = dict(overrides)
        self._params: Optional[Tuple[str, ...]] = None
        self._keys: Optional[Sequence[Any]] = None
        self._having: Optional[Callable[[Any], bool]] = None
        self._rollup = False
        self._prepared: Optional[Any] = None

    def group_by(self, *params: str, keys: Optional[Sequence[Any]] = None
                 ) -> "Select":
        """GROUP BY clause: parameter names fix the key column order;
        ``keys`` optionally restricts evaluation to explicit key tuples
        instead of the enumerated domain."""
        if not params:
            raise ValueError("group_by() needs at least one parameter name")
        self._params = tuple(params)
        self._keys = keys
        self._prepared = None  # the key order defines the prepared params
        return self

    def having(self, predicate: Callable[[Any], bool]) -> "Select":
        """HAVING clause: keep base rows whose aggregate satisfies it."""
        self._having = predicate
        return self

    def rollup(self, enabled: bool = True) -> "Select":
        """Append ROLLUP subtotal rows (see :func:`attach_rollup`)."""
        self._rollup = enabled
        return self

    def run(self, sr: Any, **overrides) -> "ResultTable":
        """Evaluate the grouped query in ``sr`` → :class:`ResultTable`."""
        if self._params is None:
            raise ValueError("call group_by(...) before run(); ungrouped "
                             "selects are PreparedQuery.value(sr)")
        if self._prepared is None or self._prepared._closed:
            self._prepared = self._db.prepare(
                self._expr, params=self._params, dynamic=self._dynamic,
                **self._overrides)
        return self._prepared.group_by(self._keys, sr, having=self._having,
                                       rollup=self._rollup, **overrides)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Select group_by={self._params} "
                f"having={self._having is not None} rollup={self._rollup}>")
