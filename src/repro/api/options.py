"""ExecOptions: every execution knob of the stack, resolved once.

Before the facade, each entry point grew its own kwargs — ``backend`` /
``workers`` on the batched evaluators, ``optimize`` / ``plan_cache`` on
the compiler, pool/batching/cache knobs on the serving layer — with
validation scattered (or missing) per seam.  :class:`ExecOptions`
consolidates them into one frozen dataclass validated eagerly at
construction; a :class:`~repro.api.Database` resolves one instance as
its default, and every ``prepare``/``serve`` call may derive a variant
with :meth:`ExecOptions.merged`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Optional

from ..circuits import (DEFAULT_MAX_GROUPS, validate_backend,
                        validate_cluster_options, validate_exact_mode,
                        validate_group_options)


@dataclass(frozen=True)
class ExecOptions:
    """Execution options shared by every mode of the unified query API.

    ``backend``
        Batched-evaluation substrate: ``"auto"`` (numpy when the
        semiring has an array kernel), ``"python"``, or ``"numpy"``.
        Validated here — eagerly — with the one shared error message.
    ``exact_mode``
        Vectorized kernel for the exact carriers (``N``/``Z``/``Q``):
        ``"auto"``/``"int64"`` select the overflow-guarded native fast
        path (guard trips transparently fall back to the object kernel,
        so results stay exact), ``"object"`` forces the exact
        object-dtype kernel.  ``"int64"`` requires NumPy and is
        rejected here — eagerly, through the same
        :mod:`repro.circuits.backends` seam as ``backend`` — on
        NumPy-less installs.
    ``workers``
        Shard batched sweeps across this many tasks on the database's
        shared worker pool (``None`` = serial).
    ``optimize``
        Run the circuit-optimizer pass pipeline after compilation.
    ``strategy``
        Dynamic-evaluator strategy for maintained handles.
    ``pool_size`` / ``max_batch_size`` / ``max_batch_delay``
        Serving knobs forwarded to :meth:`repro.api.Database.serve`.
    ``group_batch_size``
        Chunk grouped-aggregation sweeps (``PreparedQuery.group_by``)
        into sweeps of at most this many group columns; ``None``
        (default) evaluates the whole group set in one sweep.  Bounds
        the ``(gates, groups)`` working-set of the vectorized backend.
    ``max_groups``
        Ceiling on an *enumerated* group domain: ``group_by`` without
        explicit keys takes the cartesian product of the domain over
        the query parameters (``|A|^k`` groups) and refuses beyond this
        bound instead of silently allocating.  Both group knobs are
        validated eagerly through the shared
        :mod:`repro.circuits.backends` seam.
    ``plan_cache_size`` / ``result_cache_size``
        Capacities of the database-owned shared caches (a
        ``result_cache_size`` of 0 disables result caching).
    ``plan_store``
        An optional :class:`repro.serve.PlanStore` — the persistent
        on-disk tier under the in-memory plan cache.  Compilations
        check it before compiling and write their plans back, so fresh
        processes load instead of recompiling.  ``None`` (default)
        disables persistence; see ``Database(plan_store_path=...)`` for
        the path-based convenience spelling.
    ``shard_policy``
        How :meth:`repro.api.Database.serve_sharded` assigns Gaifman
        components to worker shards: ``"hash"`` (stable content hash of
        each component's representative — balanced in expectation,
        placement survives domain reordering) or ``"contiguous"``
        (components packed into domain-order runs — locality-preserving
        for range-shaped workloads).
    ``max_pending`` / ``max_inflight_per_client``
        Gateway admission control: the total queued+in-flight request
        cap (submissions beyond it are shed with
        :class:`repro.cluster.Overloaded`) and one client's share of it
        (per-client fairness under overload).
    ``request_timeout``
        Default per-request deadline, in seconds, for gateway queries
        (``None`` waits indefinitely); individual calls may override.
        All four cluster knobs are validated eagerly through the shared
        :mod:`repro.circuits.backends` seam.
    ``verify``
        Run the IR verifier (:func:`repro.analysis.verify_plan`) over
        every plan the compile pipeline produces, post-compile.
        ``True``/``False`` force it on/off; ``None`` (default) defers
        to the ``REPRO_VERIFY_PLANS`` environment variable — how CI and
        debugging sessions opt whole processes in without code changes.
        Plans loaded from a :class:`~repro.serve.PlanStore` are always
        verified regardless (disk bytes are untrusted).
    """

    backend: str = "auto"
    exact_mode: str = "auto"
    workers: Optional[int] = None
    optimize: bool = True
    strategy: Optional[str] = None
    pool_size: int = 1
    max_batch_size: int = 64
    max_batch_delay: float = 0.002
    group_batch_size: Optional[int] = None
    max_groups: int = DEFAULT_MAX_GROUPS
    plan_cache_size: int = 32
    result_cache_size: int = 1024
    plan_store: Optional[Any] = None
    shard_policy: str = "hash"
    max_pending: int = 1024
    max_inflight_per_client: int = 256
    request_timeout: Optional[float] = None
    verify: Optional[bool] = None

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        validate_exact_mode(self.exact_mode)
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for serial)")
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_batch_delay < 0:
            raise ValueError("max_batch_delay must be >= 0")
        validate_group_options(self.group_batch_size, self.max_groups)
        validate_cluster_options(self.shard_policy, self.max_pending,
                                 self.max_inflight_per_client,
                                 self.request_timeout)
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if self.result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        if self.plan_store is not None and not (
                callable(getattr(self.plan_store, "load", None))
                and callable(getattr(self.plan_store, "save", None))):
            raise ValueError(
                "plan_store must provide load(key, structure, expr) and "
                "save(key, plan) (e.g. repro.serve.PlanStore)")

    def merged(self, **overrides) -> "ExecOptions":
        """A copy with ``overrides`` applied (and re-validated).

        Unknown option names fail loudly — a typo'd knob must not be
        silently ignored.
        """
        if not overrides:
            return self
        known = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise TypeError(f"unknown execution option(s): "
                            f"{', '.join(unknown)}; known options: "
                            f"{', '.join(sorted(known))}")
        return replace(self, **overrides)
