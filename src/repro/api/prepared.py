"""PreparedQuery: one handle, every execution mode.

``db.prepare(expr, params=..., dynamic=...)`` returns a
:class:`PreparedQuery` that unifies the stack's five execution modes
behind one object:

* :meth:`PreparedQuery.value` — the static value of a closed query;
* :meth:`PreparedQuery.batch` — N valuations (closed) or N argument
  tuples (parameterized) in one batched sweep;
* :meth:`PreparedQuery.bind` — a bound point query ``f(a)``, replacing
  the raw ``WeightedQueryEngine`` selector dance (with result caching
  through the database's shared epoch-tagged cache);
* :meth:`PreparedQuery.maintain` — a maintained value under dynamic
  updates (Theorems 8/24), with updates routed database-wide;
* :meth:`PreparedQuery.enumerate` — constant-delay enumeration: answers
  of an FO formula (Theorem 24) or provenance monomials of a closed
  weighted expression (Theorem 22).

Compiled artifacts (the closed plan, per-semiring point-query engines)
are built lazily, shared through the database's plan cache, and kept
coherent by the database's update routing: every
``db.update()``-routed write either maintains them in place or
invalidates them for a transparent lazy rebuild — they can never serve
a stale answer, and out-of-band structure mutations are caught by the
database's fingerprint check.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, FrozenSet, Hashable, List, \
    Optional, Sequence, Tuple

from .._compat import warn_deprecated
from ..core import CompiledQuery, _compile_structure_query
from ..engine import WeightedQueryEngine
from ..enumeration import AnswerEnumerator, ProvenanceEnumerator
from ..logic import Bracket
from ..logic.fo import And, Eq, Exists, Forall, Formula, Not, Or, Truth
from ..logic.fo import Atom as FoAtom
from ..logic.weighted import WAdd, WConst, WMul, WSum, Weight
from ..semirings import Semiring
from .options import ExecOptions
from .table import ResultTable, apply_having, attach_rollup


def _merge(a: Optional[FrozenSet], b: Optional[FrozenSet]
           ) -> Optional[FrozenSet]:
    """Union with ``None`` (= unanalyzable, everything relevant) absorbing."""
    if a is None or b is None:
        return None
    return a | b


def _formula_relations(formula: Formula) -> Optional[FrozenSet[str]]:
    if isinstance(formula, FoAtom):
        return frozenset((formula.relation,))
    if isinstance(formula, (Truth, Eq)):
        return frozenset()
    if isinstance(formula, Not):
        return _formula_relations(formula.inner)
    if isinstance(formula, (And, Or)):
        names: Optional[FrozenSet[str]] = frozenset()
        for part in formula.parts:
            names = _merge(names, _formula_relations(part))
        return names
    if isinstance(formula, (Exists, Forall)):
        return _formula_relations(formula.inner)
    return None  # FuncAtom/LabelAtom/custom nodes: treat as unanalyzable


def query_footprint(expr: Any) -> Tuple[Optional[FrozenSet[str]],
                                        Optional[FrozenSet[str]]]:
    """The ``(weight names, relation names)`` an expression reads.

    A name the expression never references cannot change its value —
    the update router uses this to leave irrelevant consumers (and
    their caches) untouched instead of invalidating or refusing.
    Either component is ``None`` when the expression contains nodes the
    walker does not know (conservative: everything is relevant)."""
    if isinstance(expr, Weight):
        return frozenset((expr.name,)), frozenset()
    if isinstance(expr, WConst):
        return frozenset(), frozenset()
    if isinstance(expr, Bracket):
        return frozenset(), _formula_relations(expr.formula)
    if isinstance(expr, (WAdd, WMul)):
        weights: Optional[FrozenSet[str]] = frozenset()
        relations: Optional[FrozenSet[str]] = frozenset()
        for part in expr.parts:
            pw, pr = query_footprint(part)
            weights = _merge(weights, pw)
            relations = _merge(relations, pr)
        return weights, relations
    if isinstance(expr, WSum):
        return query_footprint(expr.inner)
    return None, None  # custom WExpr nodes: treat as unanalyzable


class PreparedQuery:
    """A prepared query over a :class:`~repro.api.Database`.

    Constructed by :meth:`Database.prepare` — not directly.  ``expr``
    may be a weighted expression or an FO formula (wrapped in a bracket
    for the value-producing modes); ``params`` fixes the argument order
    of :meth:`bind`/:meth:`batch` (defaults to the sorted free
    variables); ``dynamic`` declares the relations updatable through
    ``db.update()`` without recompilation.
    """

    def __init__(self, db: Any, expr: Any, params: Optional[Sequence[str]],
                 dynamic: Sequence[str], options: ExecOptions):
        self.db = db
        self.options = options
        self.dynamic_relations = frozenset(dynamic)
        if isinstance(expr, Formula):
            self.formula: Optional[Formula] = expr
            self.expr = Bracket(expr)
        else:
            self.formula = None
            self.expr = expr
        free = (sorted(self.expr.free_vars()) if params is None
                else list(params))
        if set(free) != set(self.expr.free_vars()):
            raise ValueError(f"params {tuple(free)} do not match the "
                             f"expression's free variables "
                             f"{tuple(sorted(self.expr.free_vars()))}")
        self.params: Tuple[str, ...] = tuple(free)
        self._id = next(db._ids)
        self._weight_names, self._relation_names = query_footprint(self.expr)
        self._plan: Optional[CompiledQuery] = None
        self._engines: Dict[str, WeightedQueryEngine] = {}
        # Serializes the engines' selector protocol (raise, read,
        # restore is a critical section) against concurrent binds and
        # routed updates.  RLock: invalidation may fire while held.
        self._engine_lock = threading.RLock()
        self._maintained: Dict[str, "MaintainedQuery"] = {}
        self._scopes: Dict[str, Any] = {}
        self._last_group: Optional[Dict[str, Any]] = None
        self._closed = False

    # -- plumbing ---------------------------------------------------------------

    def _check(self) -> None:
        if self._closed:
            raise RuntimeError("prepared query is closed")
        self.db._check_open()
        self.db._verify_fresh()

    def _closed_plan(self) -> CompiledQuery:
        """The compiled plan of the closed expression (lazy, plan-cached)."""
        if self.params:
            raise ValueError(
                f"the query has parameters {self.params}; use "
                f"bind(...).value(sr) for point queries or batch(...) for "
                f"argument batches")
        if self._plan is None:
            self._plan = _compile_structure_query(
                self.db.structure, self.expr,
                dynamic_relations=self.dynamic_relations,
                optimize=self.options.optimize,
                plan_cache=self.db.plan_cache,
                plan_store=self.options.plan_store,
                verify=self.options.verify)
        return self._plan

    def _engine(self, sr: Semiring) -> WeightedQueryEngine:
        """The per-semiring point-query engine (lazy, over a snapshot).

        The engine installs selector weights at construction, so it runs
        over a content-equal snapshot of the database's structure — the
        database's own fingerprint stays untouched and the plan cache
        still shares one compilation across engines and services.
        """
        # Lock order everywhere: db._lock before _engine_lock (the
        # update router holds db._lock when it reaches the engines).
        # The snapshot must be taken under db._lock — a routed update
        # mutating the structure's dicts mid-copy would tear it.
        with self.db._lock:
            with self._engine_lock:
                engine = self._engines.get(sr.name)
                if engine is None or engine.closed:
                    engine = WeightedQueryEngine._create(
                        self.db.structure.copy(), self.expr, sr,
                        dynamic_relations=tuple(self.dynamic_relations),
                        free_order=self.params or None,
                        strategy=self.options.strategy,
                        optimize=self.options.optimize,
                        plan_cache=self.db.plan_cache,
                        plan_store=self.options.plan_store,
                        verify=self.options.verify)
                    self._engines[sr.name] = engine
                return engine

    def _scope(self, sr: Semiring) -> Optional[Any]:
        """This query's scoped view of the shared result cache."""
        if self.db.result_cache is None:
            return None
        scope = self._scopes.get(sr.name)
        if scope is None:
            scope = self.db.result_cache.scoped(
                ("prepared", self.db._uid, self._id, sr.name))
            self._scopes[sr.name] = scope
        return scope

    def _invalidate(self) -> None:
        """Drop every compiled artifact; everything rebuilds lazily.

        Called by the database when an update falls outside what the
        compiled circuits can maintain (a new weight tuple, a toggle of
        an undeclared relation, an out-of-band mutation) — the next use
        recompiles against the current structure instead of serving a
        stale answer.  Advances the database epoch: this query's cached
        point results reflect the pre-update state and must not survive.
        """
        if self._closed:
            return
        self._plan = None
        with self._engine_lock:
            for engine in self._engines.values():
                engine.close()
            self._engines.clear()
        for handle in self._maintained.values():
            handle._dq = None
        self.db._epoch += 1

    # -- update routing (called by Database.update, lock held) -------------------

    def _apply_weight(self, name: str, tup: Tuple, value: Any) -> int:
        """Route ``name(tup) = value`` into the live artifacts; returns
        gates touched.  Runs *before* the base-structure write, so the
        declaredness check sees the pre-update content."""
        if self._closed:
            return 0
        if self._weight_names is not None and \
                name not in self._weight_names:
            # The expression never reads this weight: its value cannot
            # change, whatever the write does — keep everything warm.
            return 0
        if tup not in self.db.structure.weights.get(name, {}):
            # A brand-new weight tuple can grow the Gaifman graph — the
            # compiled circuits cannot see it; rebuild lazily.
            self._invalidate()
            return 0
        touched = 0
        if self._plan is not None:
            key = ("w", name, tup)
            if key in self._plan.recorded:
                self._plan.recorded[key] = ("w", value)
                self._plan._invalidate_inputs()
                for handle in self._maintained.values():
                    touched = max(touched, handle._on_weight(key, value))
        with self._engine_lock:
            for engine in self._engines.values():
                touched = max(touched,
                              engine.update_weight(name, tup, value))
        return touched

    def _apply_relation(self, name: str, tup: Tuple,
                        present: bool) -> Tuple[int, bool]:
        """Route a relation toggle; returns ``(gates touched, whether the
        base structure was already written)``."""
        if self._closed:
            return 0, False
        if self._relation_names is not None and \
                name not in self._relation_names and \
                name not in self.dynamic_relations:
            # The expression never reads this relation: the toggle
            # cannot change its value — keep everything warm.
            return 0, False
        if name not in self.dynamic_relations:
            # Not declared dynamic for this query: the compiled circuits
            # cannot maintain the toggle — rebuild lazily.
            self._invalidate()
            return 0, False
        touched = 0
        wrote_base = False
        try:
            if self._plan is not None:
                # mark_relation validates the Theorem 24 model and applies
                # the toggle to the (shared) base structure itself.
                changed = self._plan.mark_relation(name, tup, present)
                wrote_base = True
                for handle in self._maintained.values():
                    touched = max(touched, handle._on_relation(changed))
            with self._engine_lock:
                for engine in self._engines.values():
                    touched = max(touched, engine.set_relation(name, tup,
                                                               present))
        except ValueError:
            # Outside the Theorem 24 update model (the tuple is not a
            # clique of the compile-time Gaifman graph): the circuits
            # cannot maintain it, but the facade can — rebuild lazily
            # against the post-update structure.
            self._invalidate()
            return 0, wrote_base
        return touched, wrote_base

    def _retag_points(self, kind: str, name: str, tup: Tuple,
                      from_epoch: int) -> None:
        """Carry provably-unaffected cached point/group results across
        the epoch bump of one routed write (fine-grained invalidation).

        Called by ``Database.update`` (lock held) after the write landed
        and the epoch moved.  Three tiers, from cheapest to sharpest:

        * the query never reads the written name — every cached entry of
          this handle is still exact: retag them all;
        * a live engine exists — the circuit-level co-occurrence
          analysis (:meth:`~repro.engine.WeightedQueryEngine.
          affected_arguments`) proves which argument tuples the write
          can reach; retag the rest;
        * the write invalidated this handle (engines gone) — nothing is
          provable: leave everything stale for lazy eviction.
        """
        if self._closed or not self._scopes:
            return
        to_epoch = self.db._epoch
        if to_epoch == from_epoch:
            return  # no effective bump: entries are still visible as-is
        if kind == "w":
            relevant = self._weight_names is None \
                or name in self._weight_names
            update_keys: Tuple = (("w", name, tup),)
        else:
            relevant = self._relation_names is None \
                or name in self._relation_names \
                or name in self.dynamic_relations
            update_keys = (("dynrel", name, tup, True),
                           ("dynrel", name, tup, False))
        for sr_name, scope in self._scopes.items():
            cached = scope.keys()
            if not cached:
                continue
            if not relevant:
                scope.retag_many(cached, from_epoch, to_epoch)
                continue
            with self._engine_lock:
                engine = self._engines.get(sr_name)
                if engine is None or engine.closed:
                    continue  # invalidated: leave stale (lazy eviction)
                affected = engine.affected_arguments(update_keys)
            if affected is None:
                continue
            scope.retag_many(
                [args for args in cached
                 if len(args) != len(affected) or not all(
                     args[i] in affected[i] for i in range(len(args)))],
                from_epoch, to_epoch)

    # -- execution modes ---------------------------------------------------------

    def value(self, sr: Semiring) -> Any:
        """The value of the (closed) query in semiring ``sr``."""
        self._check()
        return self._closed_plan().evaluate(sr)

    def batch(self, items: Sequence[Any], sr: Semiring,
              backend: Optional[str] = None,
              workers: Optional[int] = None,
              exact_mode: Optional[str] = None) -> List[Any]:
        """N evaluations in one batched sweep.

        For a closed query, ``items`` are valuations — mappings of input
        keys to carrier values overriding the recorded weights (``{}``
        reproduces :meth:`value`), or callables used as-is.  For a
        parameterized query, ``items`` are argument tuples and the batch
        is the amortized point-query protocol of Theorem 8.

        ``backend``/``workers``/``exact_mode`` override the prepared
        options for this call; worker sharding runs on the database's
        shared pool, not a per-call one.
        """
        self._check()
        opts = self.options.merged(
            **{key: value for key, value in
               (("backend", backend), ("workers", workers),
                ("exact_mode", exact_mode))
               if value is not None})
        executor = self.db._executor_for(opts.workers)
        if self.params:
            while True:
                # Same refetch protocol as BoundQuery.value: an
                # invalidation racing this call closes the engine —
                # rebuild and retry instead of surfacing the teardown.
                engine = self._engine(sr)
                try:
                    return engine.query_batch(
                        items, backend=opts.backend, workers=opts.workers,
                        executor=executor, exact_mode=opts.exact_mode)
                except RuntimeError:
                    if engine.closed:
                        continue
                    raise
        return self._closed_plan().evaluate_batch(
            sr, items, backend=opts.backend, workers=opts.workers,
            executor=executor, exact_mode=opts.exact_mode)

    def _group_domain(self, keys: Optional[Sequence[Any]],
                      max_groups: int) -> List[Tuple]:
        """The ordered, deduplicated group key tuples to evaluate.

        ``keys=None`` enumerates the cartesian product of the structure's
        domain over the parameters (domain order, ``|A|^k`` groups,
        refused beyond ``max_groups``); explicit ``keys`` are normalized
        to parameter-aligned tuples — a tuple (or list) of the parameter
        arity is a full key, anything else is a bare element of a 1-ary
        key (so tuple-valued domain elements work unwrapped).  Elements
        are validated against the domain eagerly, and duplicates
        evaluate once and appear once.
        """
        domain = list(self.db.structure.domain)
        if keys is None:
            count = len(domain) ** len(self.params)
            if count > max_groups:
                raise ValueError(
                    f"group_by() would enumerate {count} groups "
                    f"(|domain|^{len(self.params)}) > max_groups="
                    f"{max_groups}; pass explicit keys or raise the "
                    f"max_groups option")
            return [tuple(combo) for combo in
                    itertools.product(domain, repeat=len(self.params))]
        members = frozenset(domain)
        normalized: List[Tuple] = []
        for item in keys:
            if isinstance(item, list):
                item = tuple(item)
            if isinstance(item, tuple) and len(item) == len(self.params):
                tup = item
            elif len(self.params) == 1:
                tup = (item,)
            else:
                raise TypeError(f"group keys must be {len(self.params)}-"
                                f"tuples aligned with params {self.params}; "
                                f"got {item!r}")
            for element in tup:
                if element not in members:
                    raise ValueError(
                        f"group key {tup!r} does not match params "
                        f"{self.params}: {element!r} is not in the "
                        f"structure's domain")
            normalized.append(tup)
        return list(dict.fromkeys(normalized))

    def group_by(self, keys: Optional[Sequence[Any]] = None,
                 sr: Optional[Semiring] = None, *,
                 having: Optional[Callable[[Any], bool]] = None,
                 rollup: bool = False,
                 backend: Optional[str] = None,
                 workers: Optional[int] = None,
                 exact_mode: Optional[str] = None,
                 group_batch_size: Optional[int] = None,
                 max_groups: Optional[int] = None) -> ResultTable:
        """All group aggregates of a parameterized query, in one sweep.

        The query's parameters are the grouping keys: each group
        ``a = (a_1, ..., a_k)`` contributes the point value ``f(a)``.
        Instead of ``k`` independent point queries, every group becomes
        one *column* of a single batched sweep over the shared compiled
        circuit (Theorem 8's selector protocol, amortized across the
        whole group domain; on the vectorized backend the selector edits
        collapse into one scatter over the memoized base column).

        ``keys=None`` enumerates the group domain from the structure
        (cartesian product of the domain over the parameters, bounded by
        the ``max_groups`` option); otherwise ``keys`` lists explicit
        key valuations (tuples aligned with ``params``, or bare elements
        for a single parameter).  ``group_by(sr)`` is accepted as
        shorthand for ``group_by(None, sr)``.

        ``having`` filters base rows by a predicate on the aggregate
        value; ``rollup=True`` appends ROLLUP subtotal rows (rolled-up
        key positions marked :data:`repro.api.TOTAL`, folded with the
        semiring's addition over *all* base groups — HAVING applies to
        base rows only, as in SQL).  Results are memoized per group in
        the database's epoch-tagged result cache — shared with
        ``bind(...).value(sr)`` — and a routed ``db.update()``
        invalidates only the touched groups' entries (the co-occurrence
        analysis of :meth:`~repro.engine.WeightedQueryEngine.
        affected_arguments`), so repeated group sweeps under updates
        recompute only what changed.

        ``backend``/``workers``/``exact_mode``/``group_batch_size``/
        ``max_groups`` override the prepared options for this call.
        Returns a :class:`~repro.api.ResultTable`.
        """
        if isinstance(keys, Semiring) and sr is None:
            keys, sr = None, keys
        if sr is None:
            raise TypeError("group_by() needs a semiring: group_by(keys, "
                            "sr) or group_by(sr) for the full group domain")
        self._check()
        if not self.params:
            raise ValueError(
                "group_by() needs a parameterized query (the parameters "
                "are the grouping keys); a closed query has one value — "
                "use value(sr)")
        opts = self.options.merged(
            **{key: value for key, value in
               (("backend", backend), ("workers", workers),
                ("exact_mode", exact_mode),
                ("group_batch_size", group_batch_size),
                ("max_groups", max_groups))
               if value is not None})
        group_keys = self._group_domain(keys, opts.max_groups)
        scope = self._scope(sr)
        epoch = self.db._epoch
        values: Dict[Tuple, Any] = {}
        if scope is not None:
            for key in group_keys:
                hit = scope.get(key, epoch)
                if hit is not scope.MISS:
                    values[key] = hit
        misses = [key for key in group_keys if key not in values]
        sweeps = 0
        kernel_used = None
        sweep_shape: Optional[Tuple[int, int]] = None
        if misses:
            executor = self.db._executor_for(opts.workers)
            chunk = opts.group_batch_size or len(misses)
            while True:
                # Same refetch protocol as batch(): an invalidation
                # racing this call closes the engine — rebuild and retry.
                engine = self._engine(sr)
                try:
                    results: List[Any] = []
                    for start in range(0, len(misses), chunk):
                        results.extend(engine.query_groups(
                            misses[start:start + chunk],
                            backend=opts.backend, workers=opts.workers,
                            executor=executor, exact_mode=opts.exact_mode))
                        sweeps += 1
                    break
                except RuntimeError:
                    if engine.closed:
                        sweeps = 0
                        continue
                    raise
            kernel_used = engine.compiled.kernel_used() or "python"
            # The vectorized value matrix is (gates, group columns).
            sweep_shape = (len(engine.compiled.circuit.gates),
                           min(chunk, len(misses)))
            for key, value in zip(misses, results):
                values[key] = value
                if scope is not None:
                    # Tagged with the epoch read *before* the sweep: an
                    # update that landed meanwhile already advanced it,
                    # so a racing entry can never serve a stale answer.
                    scope.put(key, value, epoch)
        base_values = [values[key] for key in group_keys]
        stats = {
            "groups": len(group_keys),
            "sweeps": sweeps,
            "sweep_shape": sweep_shape,
            "kernel": kernel_used,
            "cache_hits": len(group_keys) - len(misses),
            "cache_misses": len(misses),
        }
        self._last_group = stats
        out_keys, out_values = apply_having(group_keys, base_values, having)
        if rollup:
            all_keys, all_values = attach_rollup(group_keys, base_values, sr)
            out_keys = out_keys + all_keys[len(group_keys):]
            out_values = out_values + all_values[len(group_keys):]
        return ResultTable(self.params + ("value",), out_keys, out_values,
                           stats)

    def bind(self, *args, **kwargs) -> "BoundQuery":
        """Bind the query's parameters to concrete elements.

        Accepts positional arguments aligned with ``params`` or keyword
        arguments by parameter name.  Returns a :class:`BoundQuery`
        whose :meth:`~BoundQuery.value` is the point query ``f(a)``.
        """
        if self._closed:
            raise RuntimeError("prepared query is closed")
        if kwargs:
            if args:
                raise TypeError("bind() takes positional or keyword "
                                "arguments, not both")
            extra = sorted(set(kwargs) - set(self.params))
            missing = sorted(set(self.params) - set(kwargs))
            if extra or missing:
                raise ValueError(f"bind() arguments do not match params "
                                 f"{self.params}: missing {missing}, "
                                 f"unexpected {extra}")
            args = tuple(kwargs[param] for param in self.params)
        if len(args) != len(self.params):
            raise ValueError(f"expected {len(self.params)} arguments "
                             f"for params {self.params}, got {len(args)}")
        return BoundQuery(self, tuple(args))

    def maintain(self, sr: Semiring) -> "MaintainedQuery":
        """The maintained value of a closed query under dynamic updates.

        Returns the (cached, per-semiring) :class:`MaintainedQuery`
        handle: ``.value()`` reads the maintained value; its update
        methods delegate to ``db.update()`` so every other consumer and
        cache stays coherent.  Parameterized queries are maintained
        implicitly — ``bind(...).value(sr)`` always reflects the routed
        updates.
        """
        self._check()
        if self.params:
            raise ValueError(
                f"maintain() needs a closed query; parameterized queries "
                f"are maintained implicitly — bind{self.params} and read "
                f".value(sr) after updates")
        handle = self._maintained.get(sr.name)
        if handle is None:
            handle = MaintainedQuery(self, sr)
            self._maintained[sr.name] = handle
        return handle

    def enumerate(self, *deprecated: Any,
                  dynamic: Optional[Sequence[str]] = None,
                  **overrides: Any) -> Any:
        """A constant-delay enumerator over a snapshot of the database.

        For a query prepared from an FO *formula*, returns a
        :class:`~repro.enumeration.AnswerEnumerator` of its answers
        (Theorem 24); for a *closed weighted expression*, a
        :class:`~repro.enumeration.ProvenanceEnumerator` of its
        monomials (Theorem 22).  The enumerator owns a content snapshot:
        drive its dynamics through its own update methods.

        ``dynamic`` overrides the prepared dynamic-relation set for the
        snapshot (keyword-only; the old positional spelling is
        deprecated).  Any further keyword arguments are
        :class:`~repro.api.ExecOptions` overrides for this call —
        ``optimize``/``verify`` reach the enumerator's compile.
        """
        if deprecated:
            # Pre-ExecOptions signature: enumerate(["E"]).  One styled
            # DeprecationWarning through the shared _compat seam.
            if len(deprecated) > 1 or dynamic is not None:
                raise TypeError("enumerate() takes at most the keyword "
                                "arguments dynamic=... and ExecOptions "
                                "overrides")
            warn_deprecated("PreparedQuery.enumerate(dynamic_list)",
                            "PreparedQuery.enumerate(dynamic=[...])")
            dynamic = deprecated[0]
        self._check()
        opts = self.options.merged(**overrides)
        snapshot = self.db._snapshot()
        declared = (tuple(self.dynamic_relations) if dynamic is None
                    else tuple(dynamic))
        if self.formula is not None:
            if not self.params:
                raise ValueError("sentences have no answers to enumerate; "
                                 "evaluate value(BOOLEAN) instead")
            return AnswerEnumerator(snapshot, self.formula,
                                    free_order=self.params,
                                    dynamic_relations=declared,
                                    optimize=opts.optimize,
                                    verify=opts.verify)
        if self.params:
            raise ValueError(
                "enumerate() needs an FO formula (answer enumeration) or a "
                "closed weighted expression (provenance monomials); prepare "
                "the formula itself to enumerate its answers")
        return ProvenanceEnumerator(snapshot, self.expr,
                                    dynamic_relations=declared,
                                    optimize=opts.optimize,
                                    verify=opts.verify)

    # -- introspection -----------------------------------------------------------

    def plan(self) -> CompiledQuery:
        """The compiled plan of a closed query (compiling on first use).

        Read-only access for introspection and rendering (``stats``,
        ``repro.circuits.render``); route updates through
        ``db.update()`` so the caches stay coherent."""
        self._check()
        return self._closed_plan()

    def stats(self) -> Dict[str, Any]:
        """Circuit statistics of whatever is compiled so far (compiles
        the closed plan on demand for closed queries)."""
        self._check()
        info: Dict[str, Any] = {
            "params": self.params,
            "dynamic_relations": sorted(self.dynamic_relations),
            "kind": "formula" if self.formula is not None else "weighted",
            "engines": sorted(self._engines),
        }
        compiled = self._plan
        if compiled is None and not self.params:
            compiled = self._closed_plan()
        if compiled is None and self._engines:
            compiled = next(iter(self._engines.values())).compiled
        if compiled is not None:
            info.update(compiled.stats())
        else:
            info["compiled"] = False
        if self._last_group is not None:
            info["group_by"] = dict(self._last_group)
        return info

    def explain(self) -> str:
        """A human-readable description of the prepared query: shape,
        compiled-circuit statistics, and the resolved execution options."""
        stats = self.stats()
        lines = [f"PreparedQuery #{self._id} "
                 f"({stats['kind']}, params={stats['params'] or '()'}, "
                 f"dynamic={stats['dynamic_relations'] or '[]'})"]
        if "gates" in stats:
            lines.append(
                f"  circuit: {stats['gates']} gates, depth {stats['depth']},"
                f" {stats['colors']} colors, {stats['color_subsets']} color"
                f" subsets, forests height <= {stats['max_forest_height']}")
        else:
            lines.append("  circuit: not compiled yet (parameterized "
                         "queries compile per semiring on first use)")
        opts = self.options
        lines.append(f"  options: backend={opts.backend!r} "
                     f"exact_mode={opts.exact_mode!r} "
                     f"workers={opts.workers} optimize={opts.optimize} "
                     f"strategy={opts.strategy}")
        stages = stats.get("compile_stages")
        if stages:
            rendered = ", ".join(f"{name}={seconds * 1e3:.2f}ms"
                                 for name, seconds in stages.items())
            lines.append(f"  compile stages: {rendered}")
        kernel = stats.get("exact_kernel")
        if kernel is not None:
            lines.append(
                f"  exact kernel: requested {kernel['requested']!r}, ran "
                f"{kernel['used']!r} ({kernel['fallbacks']} fallback(s) "
                f"over {kernel['batches']} batch(es))")
        group = stats.get("group_by")
        if group is not None:
            lines.append(
                f"  last group_by: {group['groups']} group(s) in "
                f"{group['sweeps']} sweep(s), shape={group['sweep_shape']}, "
                f"kernel={group['kernel']!r}, cache "
                f"{group['cache_hits']} hit(s) / "
                f"{group['cache_misses']} miss(es)")
        lines.append(f"  shared caches: plan={self.db.plan_cache.stats()}")
        if self.db.result_cache is not None:
            lines.append(f"                 result="
                         f"{self.db.result_cache.stats()}")
        return "\n".join(lines)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the engines (stripping their selector weights), drop
        compiled state and cached results, and deregister from the
        database.  Idempotent; further use raises."""
        if self._closed:
            return
        self._closed = True
        with self._engine_lock:
            for engine in self._engines.values():
                engine.close()
            self._engines.clear()
        self._plan = None
        self._maintained.clear()
        for scope in self._scopes.values():
            # Dead cached points must not keep occupying the shared LRU.
            scope.clear()
        self._scopes.clear()
        self.db._forget(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<PreparedQuery #{self._id} params={self.params} "
                f"dynamic={sorted(self.dynamic_relations)}>")


class BoundQuery:
    """A prepared query with its parameters bound to concrete elements.

    ``value(sr)`` answers the point query through the per-semiring
    engine, memoized in the database's shared epoch-tagged result cache
    (an effective routed update advances the epoch and lazily
    invalidates every cached point)."""

    __slots__ = ("prepared", "arguments")

    def __init__(self, prepared: PreparedQuery, arguments: Tuple) -> None:
        self.prepared = prepared
        self.arguments = arguments

    def value(self, sr: Semiring) -> Any:
        prepared = self.prepared
        prepared._check()
        scope = prepared._scope(sr)
        epoch = prepared.db._epoch
        if scope is not None:
            hit = scope.get(self.arguments, epoch)
            if hit is not scope.MISS:
                return hit
        while True:
            # Fetch outside _engine_lock (construction takes db._lock,
            # which must come first), then query inside it: the selector
            # protocol (raise, read, restore) is a critical section on
            # the shared per-semiring engine — concurrent binds and
            # routed updates serialize here.  An invalidation racing
            # between fetch and lock closes the engine; refetch.
            engine = prepared._engine(sr)
            with prepared._engine_lock:
                if engine.closed:
                    continue
                value = engine.query(*self.arguments)
                break
        if scope is not None:
            # Tagged with the epoch read *before* the query: an update
            # that landed meanwhile already advanced the epoch, making
            # this entry invisible — never served across an update.
            scope.put(self.arguments, value, epoch)
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BoundQuery {dict(zip(self.prepared.params, self.arguments))}>"


class MaintainedQuery:
    """Theorem 8/24 maintained handle, wired into the database.

    Reads (:meth:`value`) come from the incrementally-maintained dynamic
    evaluator; updates delegate to ``db.update()`` so the write reaches
    *every* consumer and cache of the database — the maintained handle
    cannot be used to bypass invalidation."""

    def __init__(self, prepared: PreparedQuery, sr: Semiring) -> None:
        self.prepared = prepared
        self.sr = sr
        self._dq = None

    def _handle(self) -> Any:
        if self._dq is None:
            plan = self.prepared._closed_plan()
            self._dq = plan._dynamic(self.sr,
                                     strategy=self.prepared.options.strategy)
        return self._dq

    def value(self) -> Any:
        self.prepared._check()
        return self._handle().value()

    def update_weight(self, name: str, tup: Tuple, value: Any) -> int:
        """``name(tup) = value`` routed database-wide; returns gates
        touched (max over consumers)."""
        with self.prepared.db.update() as tx:
            return tx.set_weight(name, tup, value)

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        """Gaifman-preserving relation toggle routed database-wide."""
        with self.prepared.db.update() as tx:
            return tx.set_relation(name, tup, present)

    # -- routed-update hooks (Database.update holds the lock) --------------------

    def _on_weight(self, key: Hashable, value: Any) -> int:
        if self._dq is None:
            return 0
        return self._dq.evaluator.update_input(key, value)

    def _on_relation(self, changed: Sequence[Tuple[Hashable, bool]]) -> int:
        if self._dq is None:
            return 0
        touched = 0
        for key, state in changed:
            touched += self._dq.evaluator.update_input(
                key, self.sr.one if state else self.sr.zero)
        return touched

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MaintainedQuery sr={self.sr.name} of {self.prepared!r}>"
