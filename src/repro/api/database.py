"""Database: the unified facade over the whole query stack.

One :class:`Database` owns a :class:`~repro.structures.Structure` plus
the shared :class:`~repro.serve.PlanCache` / :class:`~repro.serve.
ResultCache` and a lazily-created worker pool, and hands out

* :meth:`Database.prepare` — a :class:`~repro.api.PreparedQuery`
  unifying static value, batched evaluation, bound point queries,
  maintained updates and enumeration behind one handle;
* :meth:`Database.serve` — a :class:`~repro.serve.QueryService`
  pre-wired to the shared caches and pool;
* :meth:`Database.update` — a transaction-shaped update context that
  routes ``set_weight``/``set_relation`` through every live consumer's
  maintenance hooks and the structure's fingerprint/invalidation
  machinery, so no cache can ever be bypassed;
* :meth:`Database.close` — tears down services, engines (stripping
  their selector weights) and the worker pool.

Mutating the structure *around* the facade is detected: every consumer
read re-checks the structure's content fingerprint and an out-of-band
write invalidates all derived artifacts instead of serving stale
answers (the class of bug the epoch/fingerprint hooks exist to kill).
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Sequence, Tuple

from ..logic import Bracket
from ..logic.fo import Formula
from ..semirings import Semiring
from ..serve import PlanCache, PlanStore, QueryService, ResultCache
from ..structures import Structure
from .options import ExecOptions
from .prepared import PreparedQuery, query_footprint
from .table import Select

#: Process-unique database ids: result-cache scope namespaces include
#: this, so Databases *sharing* one ResultCache (supported by the
#: constructor) can never read each other's cached points.
_DB_IDS = itertools.count(1)


class Database:
    """The one entry point: a structure plus shared execution state.

    ``options`` (an :class:`ExecOptions`) or keyword overrides fix the
    database-wide execution defaults; every ``prepare``/``serve`` call
    may override them again per handle.  ``plan_cache`` /
    ``result_cache`` accept existing instances to share across
    databases (e.g. process-wide plan reuse); by default the database
    creates its own, sized by the options.

    ``plan_store`` / ``plan_store_path`` attach the persistent on-disk
    plan tier (:class:`repro.serve.PlanStore`): every compilation this
    database triggers checks the store before compiling and persists
    its plan, so a fresh process on the same path serves its first
    query without recompiling.  Precedence: an explicit ``plan_store``
    instance, then ``plan_store_path``, then ``options.plan_store``,
    then the ``REPRO_PLAN_STORE`` environment variable (a directory
    path — how CI and worker processes opt in without code changes).

    Use as a context manager: ``close()`` releases every engine pool,
    service and worker thread the facade created.
    """

    def __init__(self, structure: Structure,
                 options: Optional[ExecOptions] = None,
                 plan_cache: Optional[PlanCache] = None,
                 result_cache: Optional[ResultCache] = None,
                 plan_store: Optional[Any] = None,
                 plan_store_path: Optional[Any] = None,
                 **overrides):
        self.structure = structure
        self.options = (ExecOptions() if options is None
                        else options).merged(**overrides)
        if plan_store is not None and plan_store_path is not None:
            raise ValueError("pass plan_store or plan_store_path, not both")
        if plan_store is None:
            if plan_store_path is not None:
                plan_store = PlanStore(plan_store_path)
            elif self.options.plan_store is not None:
                plan_store = self.options.plan_store
            else:
                env_path = os.environ.get("REPRO_PLAN_STORE")
                if env_path:
                    plan_store = PlanStore(env_path)
        self.plan_store = plan_store
        if self.options.plan_store is not plan_store:
            # Fold the resolved store into the options so per-handle
            # derivations (prepare/serve) inherit it uniformly.
            self.options = self.options.merged(plan_store=plan_store)
        self.plan_cache = (plan_cache if plan_cache is not None
                           else PlanCache(self.options.plan_cache_size))
        if result_cache is not None:
            self.result_cache: Optional[ResultCache] = result_cache
        else:
            self.result_cache = (ResultCache(self.options.result_cache_size)
                                 if self.options.result_cache_size else None)
        self._lock = threading.RLock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._prepared: list = []
        self._services: list = []
        self._uid = next(_DB_IDS)
        self._ids = itertools.count(1)
        self._epoch = 0
        self._in_update = 0
        self._closed = False
        self._expected_fp = structure.fingerprint()
        # Mutation counter snapshot at the last reconcile: a transaction
        # whose writes were all no-ops leaves it unchanged, and exit can
        # skip reconciliation entirely (not even the O(1) digest read).
        self._reconciled_mutations = structure._mutations

    # -- handles -----------------------------------------------------------------

    def prepare(self, expr: Any, params: Optional[Sequence[str]] = None,
                dynamic: Sequence[str] = (),
                options: Optional[ExecOptions] = None,
                **overrides) -> PreparedQuery:
        """Prepare ``expr`` (a weighted expression or an FO formula).

        ``params`` fixes the bind/batch argument order (defaults to the
        sorted free variables); ``dynamic`` declares relations updatable
        through :meth:`update` without recompilation; ``options`` /
        keyword overrides refine the database defaults for this handle.
        Compilation is lazy and shared through the plan cache.
        """
        self._check_open()
        self._verify_fresh()
        opts = (self.options if options is None else options)
        opts = opts.merged(**overrides)
        prepared = PreparedQuery(self, expr, params, dynamic, opts)
        with self._lock:
            self._prune()
            self._prepared.append(prepared)
        return prepared

    def serve(self, expr: Any, sr: Semiring,
              params: Optional[Sequence[str]] = None,
              dynamic: Sequence[str] = (),
              options: Optional[ExecOptions] = None,
              **overrides) -> QueryService:
        """A concurrent micro-batching service for point queries of
        ``expr`` in ``sr``, pre-wired to the database's shared plan
        cache, a scoped view of its shared result cache, and its worker
        pool.  The service is registered with the database: routed
        updates reach it, and :meth:`close` closes it.
        """
        self._check_open()
        self._verify_fresh()
        if isinstance(expr, Formula):
            # Same treatment as prepare(): serving a formula serves its
            # bracket (0/1-valued in sr).
            expr = Bracket(expr)
        opts = (self.options if options is None else options)
        opts = opts.merged(**overrides)
        scoped = (self.result_cache.scoped(("service", self._uid,
                                            next(self._ids)))
                  if self.result_cache is not None
                  and opts.result_cache_size else None)
        service = QueryService._create(
            self._snapshot(), expr, sr,
            dynamic_relations=tuple(dynamic), free_order=params,
            strategy=opts.strategy, optimize=opts.optimize,
            pool_size=opts.pool_size,
            max_batch_size=opts.max_batch_size,
            max_batch_delay=opts.max_batch_delay,
            backend=opts.backend,
            exact_mode=opts.exact_mode,
            plan_cache=self.plan_cache,
            plan_store=opts.plan_store,
            result_cache=scoped,
            result_cache_size=(0 if scoped is not None
                               else opts.result_cache_size),
            workers=opts.workers,
            executor=self._executor_for(opts.workers),
            verify=opts.verify)
        # The update router consults the query's footprint to skip
        # writes that provably cannot change this service's answers
        # (instead of refusing them database-wide).
        weights, relations = query_footprint(expr)
        service._facade_weight_names = weights
        service._facade_relation_names = relations
        with self._lock:
            self._prune()
            self._services.append(service)
        return service

    def serve_sharded(self, expr: Any, sr: Semiring,
                      shards: int = 2,
                      params: Optional[Sequence[str]] = None,
                      dynamic: Sequence[str] = (),
                      options: Optional[ExecOptions] = None,
                      assign: Optional[dict] = None,
                      **overrides):
        """Serve ``expr`` across ``shards`` worker *processes* behind an
        asyncio gateway (:class:`repro.cluster.ClusterService`).

        The structure's domain is partitioned by Gaifman components (per
        ``options.shard_policy``, or the explicit ``assign`` map); each
        worker owns one shard, its own Database and — when this database
        has a plan store — its own handle on the same store, so workers
        and respawns warm-start from disk.  Point queries route to the
        owning shard, closed and grouped queries fan out and ``⊕``-merge;
        ``ExecOptions.max_pending`` / ``max_inflight_per_client`` /
        ``request_timeout`` are the gateway's admission knobs.  The
        gateway registers with the database like any service: routed
        updates reach the owning shard (cross-shard tuples are refused),
        and :meth:`close` drains and closes it.
        """
        self._check_open()
        self._verify_fresh()
        # Lazy import: repro.cluster imports repro.api at module level,
        # so the facade must not import it back at module level.
        from ..cluster import ClusterService
        if isinstance(expr, Formula):
            expr = Bracket(expr)
        opts = (self.options if options is None else options)
        opts = opts.merged(**overrides)
        plan_store_path = (self.plan_store.path
                           if self.plan_store is not None else None)
        service = ClusterService(
            self._snapshot(), expr, sr, shards=shards, params=params,
            dynamic=tuple(dynamic), policy=opts.shard_policy,
            assign=assign, backend=opts.backend,
            exact_mode=opts.exact_mode, optimize=opts.optimize,
            max_batch_size=opts.max_batch_size,
            max_pending=opts.max_pending,
            max_inflight_per_client=opts.max_inflight_per_client,
            request_timeout=opts.request_timeout,
            max_groups=opts.max_groups,
            plan_store_path=plan_store_path, verify=opts.verify)
        weights, relations = query_footprint(service.expr)
        service._facade_weight_names = weights
        service._facade_relation_names = relations
        with self._lock:
            self._prune()
            self._services.append(service)
        return service

    def select(self, expr: Any, dynamic: Sequence[str] = (),
               **overrides) -> Select:
        """SQL-ish grouped-aggregation sugar over :meth:`prepare`::

            table = (db.select(expr)
                       .group_by("x")
                       .having(lambda value: value > 0)
                       .run(NATURAL))

        The builder prepares the expression on first :meth:`~repro.api.
        Select.run` (with the grouping parameters as ``params``) and
        keeps the prepared handle across runs, so repeated evaluations
        hit the shared epoch-tagged result cache.  Keyword overrides are
        per-handle :class:`ExecOptions` refinements, as in ``prepare``.
        """
        self._check_open()
        return Select(self, expr, dynamic=dynamic, **overrides)

    def update(self) -> "UpdateContext":
        """An update context routing writes through every consumer::

            with db.update() as tx:
                tx.set_weight("w", edge, 3)
                tx.set_relation("S", (v,), True)

        Each write is applied to the base structure *and* routed into
        every live prepared query, maintained handle and service —
        maintained in place when the compiled circuits can absorb it
        (the paper's update model), invalidated for lazy recompilation
        when they cannot.  Effective writes advance the database epoch,
        which lazily invalidates every cached point-query result.

        Batch related writes in one context: the out-of-band-detection
        fingerprint is reconciled once per transaction (O(size)), so a
        transaction of K writes costs one rehash, not K.
        """
        self._check_open()
        self._verify_fresh()
        return UpdateContext(self)

    # -- shared execution state ---------------------------------------------------

    def _snapshot(self) -> Structure:
        """A content snapshot of the structure, taken under the update
        lock so a routed write can never tear the copy mid-iteration."""
        with self._lock:
            return self.structure.copy()

    def executor(self) -> ThreadPoolExecutor:
        """The database's shared worker pool (created on first use,
        closed by :meth:`close`).  Batched sweeps with ``workers=N``
        shard onto this pool instead of paying a thread-pool
        construction per call."""
        with self._lock:
            self._check_open()
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(self.options.workers or 0,
                                    min(32, (os.cpu_count() or 1) + 4)),
                    thread_name_prefix="repro-db")
            return self._pool

    def _executor_for(self, workers: Optional[int]) -> Optional[Any]:
        """The shared pool when sharding is requested, else ``None``."""
        return self.executor() if workers is not None and workers > 1 \
            else None

    # -- coherence ---------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The invalidation epoch (advanced by every effective update)."""
        return self._epoch

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("database is closed")

    def _prune(self) -> None:
        """Drop closed consumers from the registries (lock held): a
        long-lived database handing out short-lived handles must not
        accumulate dead references or iterate them on every update."""
        self._prepared = [p for p in self._prepared if not p._closed]
        self._services = [s for s in self._services if not s.closed]

    def _forget(self, prepared: PreparedQuery) -> None:
        """Deregister one closed prepared handle (its close() hook)."""
        with self._lock:
            self._prepared = [p for p in self._prepared if p is not prepared]

    def _verify_fresh(self) -> None:
        """Detect out-of-band structure mutations.

        Every consumer read funnels through here: if the structure's
        content fingerprint no longer matches what the last sanctioned
        write left behind, someone mutated the structure around the
        facade — every prepared artifact is invalidated (lazy rebuild),
        live services are closed (their engine pools cannot be rebuilt
        in place, and serving the pre-mutation snapshot would be the
        stale-answer bug this check exists to kill), and the epoch
        advances so no cached result survives.  The check is O(1): the
        fingerprint is an incrementally-maintained digest, never a
        content rehash.  (Raw dict writes that bypass the Structure
        mutators also bypass the digest and are invisible here — run
        with ``REPRO_VERIFY_FINGERPRINT=1`` to surface those.)
        """
        with self._lock:
            if self._in_update:
                # A transaction is applying sanctioned writes; reads in
                # its window see mid-transaction state (documented) and
                # must not mistake those writes for a bypass.  The
                # fingerprint is reconciled once at transaction exit.
                return
            fingerprint = self.structure.fingerprint()
            if fingerprint != self._expected_fp:
                for prepared in self._prepared:
                    prepared._invalidate()
                for service in self._services:
                    if not service.closed:
                        service.close()
                self._prune()
                self._epoch += 1
                self._expected_fp = fingerprint
                self._reconciled_mutations = self.structure._mutations

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close every service and prepared handle (stripping all
        selector weights), then the worker pool.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            services = list(self._services)
            prepared = list(self._prepared)
            pool = self._pool
        for service in services:
            service.close()
        for handle in prepared:
            handle.close()
        if pool is not None:
            pool.shutdown(wait=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Facade-wide statistics: epoch, consumers, shared caches."""
        with self._lock:
            info: Dict[str, Any] = {
                "epoch": self._epoch,
                "prepared": len(self._prepared),
                "services": len(self._services),
                "pool_started": self._pool is not None,
                "plan_cache": self.plan_cache.stats(),
            }
        if self.plan_store is not None:
            info["plan_store"] = self.plan_store.stats()
        if self.result_cache is not None:
            info["result_cache"] = self.result_cache.stats()
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Database |A|={len(self.structure.domain)} "
                f"prepared={len(self._prepared)} "
                f"services={len(self._services)} epoch={self._epoch}>")


class UpdateContext:
    """The transaction-shaped update router returned by
    :meth:`Database.update`.

    Writes apply eagerly (concurrent readers may see either state — the
    usual serving semantics); the context exit refreshes the database's
    expected fingerprint so the sanctioned writes are not mistaken for
    out-of-band mutations.  ``touched`` accumulates the gates recomputed
    across the transaction."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self.touched = 0

    def __enter__(self) -> "UpdateContext":
        with self.db._lock:
            self.db._in_update += 1
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        db = self.db
        with db._lock:
            # Sanctioned writes move the fingerprint; reconcile once at
            # exit (even on error — partially-applied writes must not
            # masquerade as out-of-band mutations).  The digest is
            # maintained incrementally, so reconciliation is an O(1)
            # read — and a transaction whose writes were all no-ops
            # (mutation counter unmoved) skips it outright.
            db._in_update -= 1
            if not db._in_update:
                if db.structure._mutations != db._reconciled_mutations:
                    db._expected_fp = db.structure.fingerprint()
                    db._reconciled_mutations = db.structure._mutations

    # -- writes ------------------------------------------------------------------

    def set_weight(self, name: str, tup: Tuple, value: Any) -> int:
        """Set ``name(tup) = value`` everywhere; returns gates touched
        (max over consumers).  A no-op write (unchanged value) touches
        zero gates and keeps every cache warm."""
        db = self.db
        tup = tuple(tup)
        with db._lock:
            db._check_open()
            db._prune()
            prev_epoch = db._epoch
            # Pre-validate before mutating anything (the transactional
            # feel): a service whose query actually reads this weight
            # must be able to absorb the write in place.  A service
            # that provably never reads it is skipped, not refused.
            absorbing = []
            for service in db._services:
                if service.can_absorb_weight(name, tup):
                    absorbing.append(service)
                elif service._facade_weight_names is None or \
                        name in service._facade_weight_names:
                    raise KeyError(
                        f"{name}{tup} was not declared at compile time for a "
                        f"live service; services cannot recompile in place — "
                        f"close and re-serve, or declare the tuple before "
                        f"serving")
            touched = 0
            for prepared in db._prepared:
                touched = max(touched,
                              prepared._apply_weight(name, tup, value))
            for service in absorbing:
                touched = max(touched,
                              service.update_weight(name, tup, value))
            db.structure.set_weight(name, tup, value)
            if touched:
                db._epoch += 1
            if db._epoch != prev_epoch:
                # Fine-grained invalidation: the bump staled every
                # cached point/group result; carry forward the entries
                # this one write provably cannot affect.
                for prepared in db._prepared:
                    prepared._retag_points("w", name, tup, prev_epoch)
            self.touched += touched
            return touched

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        """Toggle ``tup``'s membership in ``name`` everywhere.

        Consumers that declared ``name`` dynamic (and for which the
        tuple respects the Theorem 24 clique condition) maintain the
        toggle incrementally; others are invalidated and recompile
        lazily.  Live services must be able to absorb the toggle — the
        transaction refuses it up front otherwise."""
        db = self.db
        tup = tuple(tup)
        with db._lock:
            db._check_open()
            db._prune()
            prev_epoch = db._epoch
            # Same relevance-aware pre-validation as set_weight: only a
            # service whose query reads the relation must absorb it.
            absorbing = []
            for service in db._services:
                if service.can_absorb_relation(name, tup):
                    absorbing.append(service)
                elif service._facade_relation_names is None or \
                        name in service._facade_relation_names:
                    raise ValueError(
                        f"a live service cannot absorb the toggle of "
                        f"{name}{tup} ({name} not declared dynamic, or the "
                        f"tuple is not a clique of the compile-time Gaifman "
                        f"graph); close and re-serve to change it")
            touched = 0
            wrote_base = False
            for prepared in db._prepared:
                part, wrote = prepared._apply_relation(name, tup, present)
                touched = max(touched, part)
                wrote_base = wrote_base or wrote
            for service in absorbing:
                touched = max(touched,
                              service.set_relation(name, tup, present))
            if not wrote_base:
                # No compiled consumer absorbed the toggle via
                # mark_relation (which writes the base itself); any
                # consumer it stales was already invalidated — with its
                # own epoch bump — in _apply_relation.
                if present:
                    db.structure.add_tuple(name, tup)
                else:
                    db.structure.remove_tuple(name, tup)
            if touched:
                db._epoch += 1
            if db._epoch != prev_epoch:
                # Fine-grained invalidation, as in set_weight.
                for prepared in db._prepared:
                    prepared._retag_points("r", name, tup, prev_epoch)
            self.touched += touched
            return touched
