"""repro.api: the unified query facade (PR 4).

One :class:`Database` handle over a structure unifies what previously
took four entry points (``compile_structure_query``/``CompiledQuery``,
``DynamicQuery``, ``WeightedQueryEngine``, ``QueryService``)::

    from repro.api import Database

    with Database(structure) as db:
        q = db.prepare(expr)                 # weighted expr or FO formula
        q.value(NATURAL)                     # static value (closed)
        q.batch(valuations, NATURAL)         # batched what-ifs
        q.bind(x=a).value(NATURAL)           # cached point query
        q.group_by(NATURAL)                  # grouped aggregation (OLAP)
        m = q.maintain(NATURAL); m.value()   # maintained under updates
        q.enumerate()                        # constant-delay enumeration
        svc = db.serve(expr, NATURAL)        # micro-batched service
        db.select(expr).group_by("x").run(NATURAL)  # SQL-ish sugar
        with db.update() as tx:              # routed, cache-coherent
            tx.set_weight("w", edge, 3)

All execution knobs live in one :class:`ExecOptions`; compilations are
shared through the database's plan cache, point-query results through
its epoch-tagged result cache, and worker sharding through its one
thread pool.
"""

from .database import Database, UpdateContext
from .options import ExecOptions
from .prepared import BoundQuery, MaintainedQuery, PreparedQuery
from .table import TOTAL, ResultTable, Select

__all__ = ["Database", "PreparedQuery", "BoundQuery", "MaintainedQuery",
           "UpdateContext", "ExecOptions", "ResultTable", "Select", "TOTAL"]
