"""Naive baselines (system S13): re-exported test oracles & benchmark rivals.

The naive evaluators live next to the ASTs in ``repro.logic`` (and
``repro.fog.evaluator`` / ``repro.algebra.permanent`` for their domains);
this package gathers them under one roof for benchmarks.
"""

from ..algebra.permanent import permanent_naive
from ..fog.evaluator import eval_fog_naive
from ..logic.naive import (ForestModel, StructureModel, UnaryModel,
                           eval_expression, eval_formula, model_for)

__all__ = [
    "eval_expression", "eval_formula", "model_for", "StructureModel",
    "UnaryModel", "ForestModel", "eval_fog_naive", "permanent_naive",
]
