"""repro: semiring circuits for aggregate queries on sparse databases.

A from-scratch implementation of S. Torunczyk, "Aggregate Queries on
Sparse Databases" (PODS 2020): circuits with permanent gates compiled from
weighted queries over bounded-expansion structures, with applications to
evaluation (Thm 8), provenance (Thm 22), constant-delay enumeration
(Thm 24) and nested multi-semiring aggregation (Thm 26).

Quickstart (the unified ``repro.api`` facade)::

    from repro import *
    s = graph_structure(triangulated_grid(8, 8))
    for edge in list(s.relations["E"]):
        s.set_weight("w", edge, 1)
    E, w = Atom, Weight
    tri = Sum(("x", "y", "z"),
              Bracket(E("E", ("x","y")) & E("E", ("y","z")) & E("E", ("z","x")))
              * w("w", ("x","y")) * w("w", ("y","z")) * w("w", ("z","x")))
    with Database(s) as db:
        print(db.prepare(tri).value(NATURAL))
"""

from . import (algebra, api, baselines, circuits, cluster, core, engine,
               enumeration, fog, graphs, logic, qe, semirings, serve,
               structures)
from .api import (TOTAL, BoundQuery, Database, ExecOptions, MaintainedQuery,
                  PreparedQuery, ResultTable, Select, UpdateContext)
from .cluster import (ClusterService, Overloaded, ShardingError,
                      WorkerCrashed, shard_structure)
from .circuits import (HAVE_NUMPY, BatchedEvaluator, LayerSchedule,
                       OptimizeResult, StaticEvaluator, VectorizedEvaluator,
                       build_schedule, optimize_circuit)
from .core import (CompiledQuery, DynamicQuery, compile_structure_query,
                   plan_cache_key)
from .engine import WeightedQueryEngine
from .enumeration import AnswerEnumerator, ProvenanceEnumerator
from .fog import evaluate_fog
from .graphs import (grid_graph, path_graph, random_bounded_degree,
                     random_tree, sparse_binomial, triangulated_grid)
from .logic import (Atom, Bracket, Eq, Sum, WConst, Weight, exists, forall,
                    neq)
from .qe import eliminate_quantifiers
from .serve import PlanCache, PlanStore, QueryService, ResultCache
from .semirings import (BOOLEAN, FLOAT, INTEGER, MAX_PLUS, MIN_PLUS, NATURAL,
                        RATIONAL, FreeSemiring, ModularRing, Semiring)
from .structures import LabeledForest, Signature, Structure, graph_structure

from ._version import __version__  # noqa: F401 - re-export

__all__ = [
    "Database", "PreparedQuery", "BoundQuery", "MaintainedQuery",
    "UpdateContext", "ExecOptions", "ResultTable", "Select", "TOTAL",
    "compile_structure_query", "CompiledQuery", "DynamicQuery",
    "plan_cache_key",
    "QueryService", "PlanCache", "PlanStore", "ResultCache",
    "ClusterService", "Overloaded", "ShardingError", "WorkerCrashed",
    "shard_structure",
    "optimize_circuit", "OptimizeResult", "BatchedEvaluator",
    "StaticEvaluator", "VectorizedEvaluator", "LayerSchedule",
    "build_schedule", "HAVE_NUMPY",
    "WeightedQueryEngine", "AnswerEnumerator", "ProvenanceEnumerator",
    "evaluate_fog", "eliminate_quantifiers",
    "Structure", "graph_structure", "LabeledForest", "Signature",
    "Atom", "Eq", "Sum", "Bracket", "Weight", "WConst", "neq", "exists",
    "forall",
    "Semiring", "BOOLEAN", "NATURAL", "INTEGER", "RATIONAL", "FLOAT",
    "MIN_PLUS", "MAX_PLUS", "ModularRing", "FreeSemiring",
    "grid_graph", "triangulated_grid", "path_graph", "random_tree",
    "random_bounded_degree", "sparse_binomial",
]
