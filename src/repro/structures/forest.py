"""Labeled rooted forests of bounded depth — the Case-1 structures.

Theorem 6's proof bottoms out in labelled forests (appendix A.2): nodes with
a parent function, unary labels, and unary weights.  The reduction stages
encode arbitrary bounded-expansion structures into this form; the forest
compiler consumes it directly.

Labels are arbitrary hashable keys (the stages use structured keys such as
``("rel", "E", "up", 2)``) mapping to node sets.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Set

Node = Hashable
LabelKey = Hashable


class LabeledForest:
    """A rooted forest with unary labels and unary weights."""

    def __init__(self, parent: Mapping[Node, Optional[Node]],
                 labels: Optional[Mapping[LabelKey, Iterable[Node]]] = None,
                 weights: Optional[Mapping[str, Mapping[Node, Any]]] = None):
        self.parent: Dict[Node, Optional[Node]] = dict(parent)
        self.children: Dict[Node, List[Node]] = {v: [] for v in self.parent}
        self.roots: List[Node] = []
        for node, par in self.parent.items():
            if par is None:
                self.roots.append(node)
            else:
                self.children[par].append(node)
        # Depth and full ancestor paths (depth is bounded, so this is linear).
        self.depth: Dict[Node, int] = {}
        self.path: Dict[Node, List[Node]] = {}
        queue = list(self.roots)
        for root in self.roots:
            self.depth[root] = 0
            self.path[root] = [root]
        index = 0
        while index < len(queue):
            node = queue[index]
            index += 1
            for child in self.children[node]:
                self.depth[child] = self.depth[node] + 1
                self.path[child] = self.path[node] + [child]
                queue.append(child)
        if len(self.depth) != len(self.parent):
            raise ValueError("parent map contains a cycle")
        self.labels: Dict[LabelKey, Set[Node]] = {
            key: set(nodes) for key, nodes in (labels or {}).items()}
        self.weights: Dict[str, Dict[Node, Any]] = {
            name: dict(mapping) for name, mapping in (weights or {}).items()}

    # -- basic accessors --------------------------------------------------------

    def nodes(self) -> List[Node]:
        return list(self.parent)

    def __len__(self) -> int:
        return len(self.parent)

    def height(self) -> int:
        """Number of levels (maximum depth + 1)."""
        return max(self.depth.values(), default=-1) + 1

    def ancestor(self, node: Node, at_depth: int) -> Optional[Node]:
        """Ancestor of ``node`` at absolute depth ``at_depth`` (or None)."""
        path = self.path[node]
        return path[at_depth] if 0 <= at_depth < len(path) else None

    def ancestor_up(self, node: Node, steps: int) -> Node:
        """``parent^steps(node)`` with the paper's saturation at the root."""
        path = self.path[node]
        index = max(0, len(path) - 1 - steps)
        return path[index]

    # -- labels and weights ---------------------------------------------------

    def has_label(self, key: LabelKey, node: Node) -> bool:
        return node in self.labels.get(key, ())

    def set_label(self, key: LabelKey, node: Node, present: bool = True) -> None:
        bucket = self.labels.setdefault(key, set())
        if present:
            bucket.add(node)
        else:
            bucket.discard(node)

    def weight(self, name: str, node: Node, zero: Any = 0) -> Any:
        return self.weights.get(name, {}).get(node, zero)

    def set_weight(self, name: str, node: Node, value: Any) -> None:
        self.weights.setdefault(name, {})[node] = value

    def nodes_by_depth(self) -> Dict[int, List[Node]]:
        by_depth: Dict[int, List[Node]] = {}
        for node, depth in self.depth.items():
            by_depth.setdefault(depth, []).append(node)
        return by_depth

    def bottom_up(self) -> List[Node]:
        """Nodes ordered children-before-parents."""
        ordered: List[Node] = []
        by_depth = self.nodes_by_depth()
        for depth in sorted(by_depth, reverse=True):
            ordered.extend(by_depth[depth])
        return ordered

    def copy(self) -> "LabeledForest":
        """An independent forest with the same parents, labels and weights
        (labels/weights are mutable via ``set_label``/``set_weight``, so a
        shared compiled plan hands each consumer its own copy)."""
        return LabeledForest(self.parent, labels=self.labels,
                             weights=self.weights)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<LabeledForest n={len(self)} height={self.height()} "
                f"labels={len(self.labels)}>")
