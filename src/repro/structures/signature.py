"""Signatures: relation symbols and weight symbols with fixed arities.

A ``Σ(w)``-structure (paper §3) is a relational structure together with
semiring-valued weight functions.  Function symbols only arise internally
(the ``f_i`` of Lemma 37), so public signatures are purely relational.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple


@dataclass(frozen=True)
class RelationSymbol:
    """A relation symbol ``R`` of fixed arity."""

    name: str
    arity: int

    def __call__(self, *terms: str):
        """Build the atom ``R(x, y, ...)`` — see :mod:`repro.logic`."""
        from ..logic.fo import Atom
        if len(terms) != self.arity:
            raise ValueError(
                f"{self.name} has arity {self.arity}, got {len(terms)} terms")
        return Atom(self.name, tuple(terms))

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


@dataclass(frozen=True)
class WeightSymbol:
    """A weight symbol ``w``: interpreted as a map ``A^arity -> S``."""

    name: str
    arity: int

    def __call__(self, *terms: str):
        """Build the weighted atom ``w(x, y, ...)`` — see :mod:`repro.logic`."""
        from ..logic.weighted import Weight
        if len(terms) != self.arity:
            raise ValueError(
                f"{self.name} has arity {self.arity}, got {len(terms)} terms")
        return Weight(self.name, tuple(terms))

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Signature:
    """A collection of relation and weight symbols, unique by name."""

    def __init__(self):
        self.relations: Dict[str, RelationSymbol] = {}
        self.weights: Dict[str, WeightSymbol] = {}

    def relation(self, name: str, arity: int) -> RelationSymbol:
        if name in self.relations:
            existing = self.relations[name]
            if existing.arity != arity:
                raise ValueError(f"{name} already declared with arity "
                                 f"{existing.arity}")
            return existing
        if name in self.weights:
            raise ValueError(f"{name} already declared as a weight symbol")
        symbol = RelationSymbol(name, arity)
        self.relations[name] = symbol
        return symbol

    def weight(self, name: str, arity: int) -> WeightSymbol:
        if name in self.weights:
            existing = self.weights[name]
            if existing.arity != arity:
                raise ValueError(f"{name} already declared with arity "
                                 f"{existing.arity}")
            return existing
        if name in self.relations:
            raise ValueError(f"{name} already declared as a relation symbol")
        symbol = WeightSymbol(name, arity)
        self.weights[name] = symbol
        return symbol

    def copy(self) -> "Signature":
        clone = Signature()
        clone.relations = dict(self.relations)
        clone.weights = dict(self.weights)
        return clone

    @classmethod
    def build(cls, relations: Iterable[Tuple[str, int]] = (),
              weights: Iterable[Tuple[str, int]] = ()) -> "Signature":
        sig = cls()
        for name, arity in relations:
            sig.relation(name, arity)
        for name, arity in weights:
            sig.weight(name, arity)
        return sig
