"""Weighted relational structures A(w) and their Gaifman graphs (paper §2-3).

A :class:`Structure` stores a finite domain, named relations (sets of
tuples), and named weight functions (sparse maps ``tuple -> value``; absent
tuples weigh the semiring zero).  The paper's well-formedness requirement —
weights of arity > 1 vanish outside the relations — is enforced by
:meth:`Structure.validate`.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from ..graphs import Graph

Element = Hashable
Tup = Tuple[Element, ...]

#: Debug mode: every :meth:`Structure.fingerprint` cross-checks the
#: incrementally-maintained digest against a full content rehash and
#: raises :class:`FingerprintMismatch` on divergence.  The incremental
#: digest is updated by the mutator *methods*; a raw write into
#: ``structure.relations``/``structure.weights`` bypasses it silently —
#: this switch is how such bypasses are hunted down.
VERIFY_FINGERPRINT_ENV = "REPRO_VERIFY_FINGERPRINT"

#: Width of the incremental digest (XOR-folded sha256 prefixes).
_DIGEST_BYTES = 16

#: Sentinel distinguishing "no previous weight" from any carrier value.
_ABSENT = object()


class FingerprintMismatch(RuntimeError):
    """The incremental digest diverged from the full content rehash
    (``REPRO_VERIFY_FINGERPRINT`` mode): some mutation bypassed the
    :class:`Structure` mutator methods."""


def _entry_digest(tag: bytes, payload: str) -> int:
    """A keyed per-entry hash, XOR-folded into the structure digest.

    Entries are independent 128-bit values, so the fold is
    order-independent (mutation order never matters) and self-inverse
    (removing an entry XORs its hash back out).  ``tag`` separates the
    entry kinds (domain / relation tuple / weight entry) so payloads
    can never collide across kinds."""
    return int.from_bytes(
        hashlib.sha256(tag + payload.encode()).digest()[:_DIGEST_BYTES],
        "big")


def _verify_fingerprint_enabled() -> bool:
    return os.environ.get(VERIFY_FINGERPRINT_ENV, "") not in ("", "0")


class Structure:
    """A finite relational structure with semiring-valued weights."""

    def __init__(self, domain: Iterable[Element],
                 relations: Optional[Mapping[str, Iterable[Tup]]] = None,
                 weights: Optional[Mapping[str, Mapping[Tup, Any]]] = None):
        self.domain: List[Element] = list(dict.fromkeys(domain))
        self._domain_set: Set[Element] = set(self.domain)
        self.relations: Dict[str, Set[Tup]] = {}
        self.weights: Dict[str, Dict[Tup, Any]] = {}
        self._arity: Dict[str, int] = {}
        self._gaifman: Optional[Graph] = None
        # The incrementally-maintained content digest: the XOR of one
        # per-entry hash per relation tuple / weight assignment, plus one
        # hash of the (immutable) ordered domain.  Every mutator folds its
        # delta in, so fingerprint() is O(1) regardless of structure size.
        self._digest: int = _entry_digest(b"\x00", repr(self.domain))
        # Counts digest-changing mutations since construction; lets
        # Database skip per-transaction reconciliation entirely when a
        # transaction turned out to be a no-op.
        self._mutations: int = 0
        for name, tuples in (relations or {}).items():
            for tup in tuples:
                self.add_tuple(name, tup)
            self.relations.setdefault(name, set())
        for name, mapping in (weights or {}).items():
            for tup, value in mapping.items():
                self.set_weight(name, tup, value)
            self.weights.setdefault(name, {})
        self._mutations = 0

    # -- construction ---------------------------------------------------------

    def _fold(self, entry_hash: int) -> None:
        """Fold one entry in or out of the digest (XOR is self-inverse)
        and invalidate the Gaifman cache — the content changed."""
        self._digest ^= entry_hash
        self._mutations += 1
        self._gaifman = None

    def _check_arity(self, name: str, tup: Tup) -> Tup:
        tup = tuple(tup)
        for element in tup:
            if element not in self._domain_set:
                raise ValueError(f"{element!r} is not in the domain")
        known = self._arity.get(name)
        if known is None:
            self._arity[name] = len(tup)
        elif known != len(tup):
            raise ValueError(f"{name} used with arities {known} and {len(tup)}")
        return tup

    def add_tuple(self, relation: str, tup: Tup) -> None:
        tup = self._check_arity(relation, tup)
        tuples = self.relations.setdefault(relation, set())
        if tup not in tuples:
            tuples.add(tup)
            self._fold(_entry_digest(b"\x01", repr((relation, tup))))

    def remove_tuple(self, relation: str, tup: Tup) -> None:
        tup = tuple(tup)
        tuples = self.relations[relation]
        if tup in tuples:
            tuples.discard(tup)
            self._fold(_entry_digest(b"\x01", repr((relation, tup))))

    def set_weight(self, weight: str, tup: Tup, value: Any) -> None:
        tup = self._check_arity(weight, tup)
        mapping = self.weights.setdefault(weight, {})
        old = mapping.get(tup, _ABSENT)
        new_hash = _entry_digest(b"\x02", repr((weight, tup, repr(value))))
        if old is _ABSENT:
            delta = new_hash
        else:
            old_hash = _entry_digest(b"\x02", repr((weight, tup, repr(old))))
            if old_hash == new_hash:
                mapping[tup] = value
                return  # same rendered value: content unchanged, no-op
            delta = old_hash ^ new_hash
        mapping[tup] = value
        self._fold(delta)

    def remove_weight(self, weight: str, tup: Optional[Tup] = None) -> None:
        """Drop one weight entry, or the whole weight function when
        ``tup`` is ``None`` (used e.g. by engine teardown to strip the
        selector weights it installed).  Missing names are a no-op."""
        if weight not in self.weights:
            return
        if tup is None:
            for entry, value in self.weights[weight].items():
                self._fold(_entry_digest(
                    b"\x02", repr((weight, entry, repr(value)))))
            del self.weights[weight]
            if weight not in self.relations:
                self._arity.pop(weight, None)
        else:
            tup = tuple(tup)
            if tup in self.weights[weight]:
                value = self.weights[weight].pop(tup)
                self._fold(_entry_digest(
                    b"\x02", repr((weight, tup, repr(value)))))

    # -- queries ---------------------------------------------------------------

    def arity(self, name: str) -> int:
        return self._arity[name]

    def has_tuple(self, relation: str, tup: Tup) -> bool:
        return tuple(tup) in self.relations.get(relation, ())

    def weight(self, weight: str, tup: Tup, zero: Any = 0) -> Any:
        """The weight of ``tup`` (the semiring zero when unset)."""
        return self.weights.get(weight, {}).get(tuple(tup), zero)

    def size(self) -> int:
        """``|A|`` plus the number of stored tuples — the representation
        size that 'linear time' refers to for bounded-expansion classes."""
        return (len(self.domain)
                + sum(len(t) for t in self.relations.values())
                + sum(len(w) for w in self.weights.values()))

    def fingerprint(self) -> str:
        """A content hash of the structure: domain, relations, and weights
        (weight values via ``repr``, which every shipped carrier renders
        deterministically).  Two structures with equal fingerprints are
        interchangeable inputs to ``compile_structure_query``, which is
        what the compile-plan cache keys on.

        Maintained *incrementally* by the mutator methods (an
        order-independent XOR fold of per-entry hashes), so this is O(1)
        — Theorem 8's constant-time update model extends to the cache
        keys.  Declared-but-empty relations and weight functions carry no
        entries and therefore do not distinguish structures, which is
        sound for plan keying: an empty relation contributes nothing to
        the compiled circuit.  Mutating ``relations``/``weights`` dicts
        directly bypasses the fold and silently stales the digest; set
        ``REPRO_VERIFY_FINGERPRINT=1`` to cross-check every call against
        :meth:`full_fingerprint` and raise on divergence."""
        if _verify_fingerprint_enabled():
            full = self.full_fingerprint()
            if full != f"{self._digest:0{2 * _DIGEST_BYTES}x}":
                raise FingerprintMismatch(
                    f"incremental digest {self._digest:0{2 * _DIGEST_BYTES}x} "
                    f"!= full rehash {full}: a mutation bypassed the "
                    "Structure mutator methods")
        return f"{self._digest:0{2 * _DIGEST_BYTES}x}"

    def full_fingerprint(self) -> str:
        """Recompute the fingerprint from current content — O(size).

        The verification fallback for the incremental digest: equal to
        :meth:`fingerprint` whenever every mutation went through the
        mutator methods.  Used by tests, the ``REPRO_VERIFY_FINGERPRINT``
        cross-check, and as a resync point after deliberate raw edits.
        Never call this on the update hot path (lint rule REP007)."""
        digest = _entry_digest(b"\x00", repr(self.domain))
        for name, tuples in self.relations.items():
            for tup in tuples:
                digest ^= _entry_digest(b"\x01", repr((name, tup)))
        for name, mapping in self.weights.items():
            for tup, value in mapping.items():
                digest ^= _entry_digest(b"\x02", repr((name, tup, repr(value))))
        return f"{digest:0{2 * _DIGEST_BYTES}x}"

    def rehash(self) -> str:
        """Resynchronise the incremental digest from current content and
        return the fingerprint.  The escape hatch after editing
        ``relations``/``weights`` in place (e.g. bulk load code that
        bypasses the mutator methods); counts as one mutation."""
        digest = int(self.full_fingerprint(), 16)
        if digest != self._digest:
            self._digest = digest
            self._mutations += 1
        self._gaifman = None
        return f"{self._digest:0{2 * _DIGEST_BYTES}x}"

    # -- the Gaifman graph -------------------------------------------------------

    def gaifman(self) -> Graph:
        """Distinct elements are adjacent when they co-occur in a relation
        tuple or carry a nonzero weight together (paper §2, §7)."""
        if self._gaifman is None:
            graph = Graph(self.domain)
            for tuples in self.relations.values():
                for tup in tuples:
                    graph.add_clique(set(tup))
            for mapping in self.weights.values():
                for tup in mapping:
                    graph.add_clique(set(tup))
            self._gaifman = graph
        return self._gaifman

    def validate(self, is_zero=lambda value: value == 0) -> None:
        """Enforce the paper's weight-support requirement: a weight of arity
        r > 1 may be nonzero only on tuples present in some arity-r relation."""
        for name, mapping in self.weights.items():
            if self._arity.get(name, 1) <= 1:
                continue
            arity = self._arity[name]
            supports = [tuples for rel, tuples in self.relations.items()
                        if self._arity[rel] == arity]
            for tup, value in mapping.items():
                if is_zero(value):
                    continue
                if not any(tup in tuples for tuples in supports):
                    raise ValueError(
                        f"weight {name}{tup} is nonzero but {tup} is in no "
                        f"arity-{arity} relation")

    def copy(self) -> "Structure":
        # Bypass the constructor: the clone's content is identical by
        # construction, so the digest carries over verbatim and the copy
        # costs no hashing at all (engine pools and cluster shards
        # snapshot unchanged structures constantly).
        clone = Structure.__new__(Structure)
        clone.domain = list(self.domain)
        clone._domain_set = set(self._domain_set)
        clone.relations = {r: set(t) for r, t in self.relations.items()}
        clone.weights = {w: dict(m) for w, m in self.weights.items()}
        clone._arity = dict(self._arity)
        clone._gaifman = None
        clone._digest = self._digest
        clone._mutations = self._mutations
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rels = ", ".join(f"{r}:{len(t)}" for r, t in self.relations.items())
        return f"<Structure |A|={len(self.domain)} {rels}>"


def graph_structure(graph: Graph, directed: bool = True,
                    edge_relation: str = "E") -> Structure:
    """View a graph as a structure with edge relation ``E`` (both
    orientations when ``directed``, matching the paper's examples)."""
    structure = Structure(graph.vertices())
    for u, v in graph.edges():
        structure.add_tuple(edge_relation, (u, v))
        if directed:
            structure.add_tuple(edge_relation, (v, u))
    return structure
