"""Weighted relational structures A(w) and their Gaifman graphs (paper §2-3).

A :class:`Structure` stores a finite domain, named relations (sets of
tuples), and named weight functions (sparse maps ``tuple -> value``; absent
tuples weigh the semiring zero).  The paper's well-formedness requirement —
weights of arity > 1 vanish outside the relations — is enforced by
:meth:`Structure.validate`.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from ..graphs import Graph

Element = Hashable
Tup = Tuple[Element, ...]


class Structure:
    """A finite relational structure with semiring-valued weights."""

    def __init__(self, domain: Iterable[Element],
                 relations: Optional[Mapping[str, Iterable[Tup]]] = None,
                 weights: Optional[Mapping[str, Mapping[Tup, Any]]] = None):
        self.domain: List[Element] = list(dict.fromkeys(domain))
        self._domain_set: Set[Element] = set(self.domain)
        self.relations: Dict[str, Set[Tup]] = {}
        self.weights: Dict[str, Dict[Tup, Any]] = {}
        self._arity: Dict[str, int] = {}
        self._gaifman: Optional[Graph] = None
        self._fingerprint: Optional[str] = None
        for name, tuples in (relations or {}).items():
            for tup in tuples:
                self.add_tuple(name, tup)
            self.relations.setdefault(name, set())
        for name, mapping in (weights or {}).items():
            for tup, value in mapping.items():
                self.set_weight(name, tup, value)
            self.weights.setdefault(name, {})

    # -- construction ---------------------------------------------------------

    def _touch(self) -> None:
        """Invalidate content-derived caches after any mutation."""
        self._gaifman = None
        self._fingerprint = None

    def _check_arity(self, name: str, tup: Tup) -> Tup:
        tup = tuple(tup)
        for element in tup:
            if element not in self._domain_set:
                raise ValueError(f"{element!r} is not in the domain")
        known = self._arity.get(name)
        if known is None:
            self._arity[name] = len(tup)
        elif known != len(tup):
            raise ValueError(f"{name} used with arities {known} and {len(tup)}")
        return tup

    def add_tuple(self, relation: str, tup: Tup) -> None:
        tup = self._check_arity(relation, tup)
        self.relations.setdefault(relation, set()).add(tup)
        self._touch()

    def remove_tuple(self, relation: str, tup: Tup) -> None:
        self.relations[relation].discard(tuple(tup))
        self._touch()

    def set_weight(self, weight: str, tup: Tup, value: Any) -> None:
        tup = self._check_arity(weight, tup)
        self.weights.setdefault(weight, {})[tup] = value
        self._touch()

    def remove_weight(self, weight: str, tup: Optional[Tup] = None) -> None:
        """Drop one weight entry, or the whole weight function when
        ``tup`` is ``None`` (used e.g. by engine teardown to strip the
        selector weights it installed).  Missing names are a no-op."""
        if weight not in self.weights:
            return
        if tup is None:
            del self.weights[weight]
            if weight not in self.relations:
                self._arity.pop(weight, None)
        else:
            self.weights[weight].pop(tuple(tup), None)
        self._touch()

    # -- queries ---------------------------------------------------------------

    def arity(self, name: str) -> int:
        return self._arity[name]

    def has_tuple(self, relation: str, tup: Tup) -> bool:
        return tuple(tup) in self.relations.get(relation, ())

    def weight(self, weight: str, tup: Tup, zero: Any = 0) -> Any:
        """The weight of ``tup`` (the semiring zero when unset)."""
        return self.weights.get(weight, {}).get(tuple(tup), zero)

    def size(self) -> int:
        """``|A|`` plus the number of stored tuples — the representation
        size that 'linear time' refers to for bounded-expansion classes."""
        return (len(self.domain)
                + sum(len(t) for t in self.relations.values())
                + sum(len(w) for w in self.weights.values()))

    def fingerprint(self) -> str:
        """A content hash of the structure: domain, relations, and weights
        (weight values via ``repr``, which every shipped carrier renders
        deterministically).  Two structures with equal fingerprints are
        interchangeable inputs to ``compile_structure_query``, which is
        what the compile-plan cache keys on.  Cached after the first call
        and invalidated by every mutation, like :meth:`gaifman`."""
        if self._fingerprint is None:
            hasher = hashlib.sha256()
            for element in self.domain:
                hasher.update(repr(element).encode())
                hasher.update(b"\x00")
            for name in sorted(self.relations):
                hasher.update(b"\x01" + name.encode())
                for tup in sorted(self.relations[name], key=repr):
                    hasher.update(repr(tup).encode())
            for name in sorted(self.weights):
                hasher.update(b"\x02" + name.encode())
                mapping = self.weights[name]
                for tup in sorted(mapping, key=repr):
                    hasher.update(repr(tup).encode())
                    hasher.update(repr(mapping[tup]).encode())
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    # -- the Gaifman graph -------------------------------------------------------

    def gaifman(self) -> Graph:
        """Distinct elements are adjacent when they co-occur in a relation
        tuple or carry a nonzero weight together (paper §2, §7)."""
        if self._gaifman is None:
            graph = Graph(self.domain)
            for tuples in self.relations.values():
                for tup in tuples:
                    graph.add_clique(set(tup))
            for mapping in self.weights.values():
                for tup in mapping:
                    graph.add_clique(set(tup))
            self._gaifman = graph
        return self._gaifman

    def validate(self, is_zero=lambda value: value == 0) -> None:
        """Enforce the paper's weight-support requirement: a weight of arity
        r > 1 may be nonzero only on tuples present in some arity-r relation."""
        for name, mapping in self.weights.items():
            if self._arity.get(name, 1) <= 1:
                continue
            arity = self._arity[name]
            supports = [tuples for rel, tuples in self.relations.items()
                        if self._arity[rel] == arity]
            for tup, value in mapping.items():
                if is_zero(value):
                    continue
                if not any(tup in tuples for tuples in supports):
                    raise ValueError(
                        f"weight {name}{tup} is nonzero but {tup} is in no "
                        f"arity-{arity} relation")

    def copy(self) -> "Structure":
        clone = Structure(self.domain,
                          {r: set(t) for r, t in self.relations.items()},
                          {w: dict(m) for w, m in self.weights.items()})
        # Empty relations/weights carry no tuples for the constructor to
        # infer arities from; copy the declared arities explicitly so a
        # clone is interchangeable with the original (e.g. dynamic
        # relations that start empty).
        clone._arity.update(self._arity)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rels = ", ".join(f"{r}:{len(t)}" for r, t in self.relations.items())
        return f"<Structure |A|={len(self.domain)} {rels}>"


def graph_structure(graph: Graph, directed: bool = True,
                    edge_relation: str = "E") -> Structure:
    """View a graph as a structure with edge relation ``E`` (both
    orientations when ``directed``, matching the paper's examples)."""
    structure = Structure(graph.vertices())
    for u, v in graph.edges():
        structure.add_tuple(edge_relation, (u, v))
        if directed:
            structure.add_tuple(edge_relation, (v, u))
    return structure
