"""Weighted relational structures (system S4)."""

from .forest import LabeledForest
from .signature import RelationSymbol, Signature, WeightSymbol
from .structure import FingerprintMismatch, Structure, graph_structure

__all__ = [
    "Signature", "RelationSymbol", "WeightSymbol",
    "Structure", "graph_structure", "LabeledForest",
    "FingerprintMismatch",
]
