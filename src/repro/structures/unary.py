"""Unary-ized structures: the intermediate form after Lemma 37.

After the degeneracy stage, everything is unary: labels (which absorb the
original relations via patterns ``R_t``), weights (``w_t``), and the
orientation's out-neighbor functions ``f_1, ..., f_d`` (total via the
paper's saturation ``f_i(a) = a`` when the i-th out-neighbor is missing).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Set

from ..graphs import Graph

Node = Hashable


class UnaryStructure:
    """Domain + unary labels + unary (saturating) functions + unary weights."""

    def __init__(self, domain: Iterable[Node],
                 labels: Optional[Mapping[Hashable, Iterable[Node]]] = None,
                 functions: Optional[Mapping[Hashable, Mapping[Node, Node]]] = None,
                 weights: Optional[Mapping[str, Mapping[Node, Any]]] = None):
        self.domain: List[Node] = list(dict.fromkeys(domain))
        self._domain_set: Set[Node] = set(self.domain)
        self.labels: Dict[Hashable, Set[Node]] = {
            key: set(nodes) for key, nodes in (labels or {}).items()}
        self.functions: Dict[Hashable, Dict[Node, Node]] = {
            name: dict(mapping) for name, mapping in (functions or {}).items()}
        self.weights: Dict[str, Dict[Node, Any]] = {
            name: dict(mapping) for name, mapping in (weights or {}).items()}

    def has_label(self, key: Hashable, node: Node) -> bool:
        return node in self.labels.get(key, ())

    def apply(self, func: Hashable, node: Node) -> Optional[Node]:
        """``f(node)``, or ``None`` when undefined at ``node``.

        The degeneracy stage stores functions *totally* (the paper's
        saturation ``f_i(a) = a`` is stored explicitly), so ``None`` only
        arises after :meth:`restrict` dropped an arc leaving the color
        class — in which case every atom ``f(x) = y`` is false, as the
        Lemma 35 decomposition requires.
        """
        return self.functions.get(func, {}).get(node)

    def weight(self, name: str, node: Node, zero: Any = 0) -> Any:
        return self.weights.get(name, {}).get(node, zero)

    def gaifman(self) -> Graph:
        """Edges are the (symmetrized) non-trivial function arcs."""
        graph = Graph(self.domain)
        for mapping in self.functions.values():
            for source, target in mapping.items():
                if source != target:
                    graph.add_edge(source, target)
        return graph

    def restrict(self, keep: Iterable[Node]) -> "UnaryStructure":
        """Induced substructure; function arcs leaving ``keep`` are dropped
        (they become saturating, i.e. the atom is false there), which is
        exactly what the Lemma 35 color decomposition requires."""
        keep_set = set(keep)
        labels = {key: {n for n in nodes if n in keep_set}
                  for key, nodes in self.labels.items()}
        functions = {name: {s: t for s, t in mapping.items()
                            if s in keep_set and t in keep_set}
                     for name, mapping in self.functions.items()}
        weights = {name: {n: v for n, v in mapping.items() if n in keep_set}
                   for name, mapping in self.weights.items()}
        return UnaryStructure([n for n in self.domain if n in keep_set],
                              labels, functions, weights)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<UnaryStructure |A|={len(self.domain)} "
                f"labels={len(self.labels)} funcs={len(self.functions)}>")
