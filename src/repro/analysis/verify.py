"""The compiled-plan IR verifier: machine-checked well-formedness.

A compiled plan crosses several trust seams — it is optimized in place
of the raw Theorem 6 circuit, layer-scheduled, ``rebind``-ed across
content-equal structures by the plan cache, serialized to disk by the
plan store, and deserialized in a *fresh process* from bytes nobody in
that process produced.  Each seam assumes the full well-formedness
contract of the IR:

* gates are stored in topological order (children before parents) and
  referenced by in-range ids — every evaluator walks the array relying
  on this;
* ``AddGate``/``MulGate`` have fan-in >= 2 (the builder collapses
  smaller ones) and ``PermGate`` matrices are rectangular;
* the circuit's input table maps each key to the input gate that
  carries it, and no two live input gates share a key (hash-consing);
* a :class:`~repro.circuits.LayerSchedule` covers every live gate
  exactly once, each gate's children lie in strictly earlier layers
  (hence all gates within a layer are mutually independent), and group
  metadata (kind, fan-in, children tuples) agrees with the circuit;
* every live input gate has a recorded valuation entry, forests are
  internally consistent, and the serialized state carries every
  ``CompiledQuery`` field that is not derivable at load time.

:func:`verify_circuit`, :func:`verify_schedule` and :func:`verify_plan`
check these statically, in one linear pass over gates and edges, and
raise :class:`PlanVerifyError` naming the first violated invariant.
:func:`verify_plan_state` verifies a raw serialized state (the form the
plan store and the ``verify-store`` CLI see) without a host structure.

Verification runs at every trust boundary:

* :meth:`repro.serve.PlanStore.load` verifies every plan deserialized
  from disk; a rejection is a counted miss (recompile), never a crash;
* ``REPRO_VERIFY_PLANS=1`` (or ``ExecOptions(verify=True)``) verifies
  every plan the compile pipeline produces, post-compile;
* the test suite's compile helpers verify every plan they build;
* ``python -m repro.analysis verify-store <dir>`` audits a store.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, Any

from ..circuits import (AddGate, Circuit, ConstGate, InputGate, LayerSchedule,
                        MulGate, PermGate, PlanStateError)
from ..circuits.schedule import KIND_ADD, KIND_CONST, KIND_INPUT, KIND_MUL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core import CompiledQuery

__all__ = ["PlanVerifyError", "verify_circuit", "verify_schedule",
           "verify_plan", "verify_plan_state", "verification_enabled"]


class PlanVerifyError(PlanStateError):
    """A compiled plan violates the IR well-formedness contract.

    Subclasses :class:`~repro.circuits.PlanStateError`, so every seam
    that already treats malformed serialized state as a miss (the plan
    store, the compile fallback) handles verification rejections the
    same way — while callers that care can still tell the two apart.
    """


def _fail(message: str) -> None:
    raise PlanVerifyError(message)


#: The gate classes the IR vocabulary is closed over.
_GATE_TYPES = (InputGate, ConstGate, AddGate, MulGate, PermGate)

_KIND_OF = {InputGate: KIND_INPUT, ConstGate: KIND_CONST,
            AddGate: KIND_ADD, MulGate: KIND_MUL}


def _check_child(child: Any, gate_id: int, what: str) -> None:
    if isinstance(child, bool) or not isinstance(child, int):
        _fail(f"gate {gate_id}: {what} {child!r} is not a gate id")
    if not 0 <= child < gate_id:
        _fail(f"gate {gate_id}: {what} {child} is out of range [0, "
              f"{gate_id}) — children must precede parents "
              f"(topological gate order)")


def verify_circuit(circuit: Circuit) -> None:
    """Check the full circuit well-formedness contract.

    Gates in topological order with children strictly before parents,
    no dangling gate references, Add/Mul fan-in >= 2, rectangular
    permanent matrices, an in-range output, an input table consistent
    with the gate array, and no duplicate live input keys.  Raises
    :class:`PlanVerifyError` on the first violation; returns ``None``
    on success.  Cost is one linear pass over gates and edges.
    """
    gates = circuit.gates
    if not gates:
        _fail("circuit has no gates")
    for gate_id, gate in enumerate(gates):
        if not isinstance(gate, _GATE_TYPES):
            _fail(f"gate {gate_id}: unknown gate kind "
                  f"{type(gate).__name__!r}")
        if isinstance(gate, (AddGate, MulGate)):
            kind = type(gate).__name__
            if not isinstance(gate.children, tuple):
                _fail(f"gate {gate_id}: {kind} children must be a tuple, "
                      f"got {type(gate.children).__name__}")
            if len(gate.children) < 2:
                _fail(f"gate {gate_id}: {kind} fan-in "
                      f"{len(gate.children)} < 2 (the builder collapses "
                      f"smaller gates)")
            for child in gate.children:
                _check_child(child, gate_id, "child")
        elif isinstance(gate, PermGate):
            # Shape (rectangularity, entry types) is enforced by
            # PermGate.__post_init__; the id bound needs the position.
            for row in gate.entries:
                for entry in row:
                    if entry is not None:
                        _check_child(entry, gate_id, "permanent entry")
    output = circuit.output
    if isinstance(output, bool) or not isinstance(output, int) \
            or not 0 <= output < len(gates):
        _fail(f"output gate {output!r} is not a valid gate id "
              f"(circuit has {len(gates)} gates)")
    for key, gate_id in circuit.inputs.items():
        if isinstance(gate_id, bool) or not isinstance(gate_id, int) \
                or not 0 <= gate_id < len(gates):
            _fail(f"input table entry {key!r} -> {gate_id!r} is not a "
                  f"valid gate id")
        gate = gates[gate_id]
        if not isinstance(gate, InputGate) or gate.key != key:
            _fail(f"input table entry {key!r} -> gate {gate_id} does not "
                  f"name an InputGate with that key (found "
                  f"{type(gate).__name__})")
    seen_keys = set()
    for gate_id in circuit.live_gates():
        gate = gates[gate_id]
        if isinstance(gate, InputGate):
            if gate.key in seen_keys:
                _fail(f"duplicate live input gates for key {gate.key!r} "
                      f"(hash-consing requires one gate per key)")
            seen_keys.add(gate.key)
            if circuit.inputs.get(gate.key) != gate_id:
                _fail(f"live input gate {gate_id} (key {gate.key!r}) is "
                      f"missing from the circuit's input table")


def verify_schedule(schedule: LayerSchedule,
                    circuit: Circuit | None = None) -> None:
    """Check a layer schedule against its circuit.

    Every live gate scheduled exactly once; every child of a gate in
    layer ``i`` placed in a layer ``j < i`` (which makes all gates
    within one layer mutually independent); group kinds and fan-ins
    matching the gates they bucket; children tuples, the ``layer_of``
    index and the input/constant tables agreeing with the circuit.

    ``circuit`` (optional) asserts the schedule is bound to the circuit
    the caller is about to evaluate — a rebind seam check.
    """
    if circuit is not None and schedule.circuit is not circuit:
        _fail("schedule is bound to a different circuit object")
    circuit = schedule.circuit
    gates = circuit.gates
    layer_of_seen: dict = {}
    inputs_seen = []
    consts_seen = []
    for position, layer in enumerate(schedule.layers):
        if layer.index != position:
            _fail(f"layer at position {position} carries index "
                  f"{layer.index}")
        if not layer.groups:
            _fail(f"layer {position} has no gate groups")
        for group in layer.groups:
            if not group.gate_ids:
                _fail(f"layer {position} has an empty {group.kind!r} group")
            for slot, gate_id in enumerate(group.gate_ids):
                if isinstance(gate_id, bool) or not isinstance(gate_id, int) \
                        or not 0 <= gate_id < len(gates):
                    _fail(f"scheduled gate {gate_id!r} (layer {position}) "
                          f"is not a valid gate id")
                if gate_id in layer_of_seen:
                    _fail(f"gate {gate_id} scheduled twice (layers "
                          f"{layer_of_seen[gate_id]} and {position})")
                layer_of_seen[gate_id] = position
                gate = gates[gate_id]
                expected = _KIND_OF.get(type(gate), "perm")
                if group.kind != expected:
                    _fail(f"gate {gate_id} is a {expected!r} gate but sits "
                          f"in a {group.kind!r} group (layer {position})")
                children = circuit.children_of(gate)
                for child in children:
                    child_layer = layer_of_seen.get(child)
                    if child_layer is None or child_layer >= position:
                        _fail(f"gate {gate_id} (layer {position}) depends "
                              f"on gate {child} (layer {child_layer}) — "
                              f"children must lie in strictly earlier "
                              f"layers")
                if group.kind in (KIND_ADD, KIND_MUL):
                    if group.fan_in != len(children):
                        _fail(f"gate {gate_id} fan-in {len(children)} != "
                              f"group fan-in {group.fan_in} (layer "
                              f"{position})")
                    if group.children is None \
                            or len(group.children) != len(group.gate_ids):
                        _fail(f"{group.kind!r} group in layer {position} "
                              f"is missing its children table")
                    if tuple(group.children[slot]) != tuple(children):
                        _fail(f"gate {gate_id}: group children "
                              f"{group.children[slot]!r} disagree with the "
                              f"circuit's {tuple(children)!r}")
                if isinstance(gate, InputGate):
                    inputs_seen.append((gate_id, gate.key))
                elif isinstance(gate, ConstGate):
                    consts_seen.append((gate_id, gate.value))
    live = set(circuit.live_gates())
    scheduled = set(layer_of_seen)
    if scheduled != live:
        missing = sorted(live - scheduled)[:5]
        extra = sorted(scheduled - live)[:5]
        _fail(f"schedule does not cover exactly the live gates "
              f"(missing {missing}, extra {extra})")
    if dict(schedule.layer_of) != layer_of_seen:
        _fail("schedule.layer_of disagrees with the layer layout")
    if sorted(schedule.input_gates) != sorted(inputs_seen):
        _fail("schedule input-gate table disagrees with the circuit's "
              "live input gates")
    if len(schedule.const_gates) != len(consts_seen) or any(
            a[0] != b[0] or a[1] != b[1] for a, b in
            zip(sorted(schedule.const_gates, key=lambda p: p[0]),
                sorted(consts_seen, key=lambda p: p[0]))):
        _fail("schedule constant-gate table disagrees with the circuit's "
              "live constant gates")


#: CompiledQuery fields captured by ``to_state()``.
_STATE_FIELDS = frozenset({
    "circuit", "_schedule", "coloring", "forests", "recorded",
    "dynamic_relations",
})

#: CompiledQuery fields deliberately NOT serialized: rebound to the
#: caller's context at load time...
_REBOUND_FIELDS = frozenset({"structure", "gaifman", "blocks"})

#: ...or ephemeral caches/telemetry rebuilt lazily.
_EPHEMERAL_FIELDS = frozenset({
    "_input_version", "_base_cache", "_kernel_stats", "_kernel_stats_lock",
    "_stage_seconds",
})

#: The exact key set of a serialized plan state (``to_state()`` output).
_STATE_KEYS = frozenset({
    "format", "circuit", "schedule", "coloring", "forests", "recorded",
    "dynamic_relations",
})

_RECORDED_KINDS = ("b", "w")


def verify_plan(plan: "CompiledQuery") -> None:
    """Check a whole compiled plan: circuit, schedule (when built),
    recorded-input coverage, forest consistency, and serialize-state
    completeness.

    The recorded table must cover every live input gate (selector keys
    included) — that is what makes ``input_valuation`` total.  Forests
    must only label/weight nodes they contain, and their color sets
    must come from the plan's coloring.  Finally, every dataclass field
    of ``CompiledQuery`` must be accounted for by the serializer: a
    field that is neither serialized, nor rebound at load time, nor a
    documented ephemeral cache means ``to_state``/``from_state`` would
    silently drop state — the drift this check exists to catch.
    """
    verify_circuit(plan.circuit)
    if plan._schedule is not None:
        verify_schedule(plan._schedule, plan.circuit)
    recorded = plan.recorded
    for key, entry in recorded.items():
        if not (isinstance(entry, tuple) and len(entry) == 2
                and entry[0] in _RECORDED_KINDS):
            _fail(f"recorded entry {key!r} -> {entry!r} is not a "
                  f"('b'|'w', value) pair")
    for key, gate_id in plan.circuit.inputs.items():
        if key not in recorded:
            _fail(f"input gate {gate_id} (key {key!r}) has no recorded "
                  f"valuation entry — input_valuation would be partial")
    colors_declared = set(plan.coloring.values())
    for colors, forest in plan.forests:
        if not isinstance(colors, frozenset):
            _fail(f"forest color set {colors!r} is not a frozenset")
        if not colors <= colors_declared:
            _fail(f"forest colors {sorted(colors)} are not all declared "
                  f"by the plan coloring {sorted(colors_declared)}")
        nodes = set(forest.parent)
        for label, members in forest.labels.items():
            stray = set(members) - nodes
            if stray:
                _fail(f"forest label {label!r} names nodes outside the "
                      f"forest: {sorted(stray)[:5]}")
        for name, mapping in forest.weights.items():
            stray = set(mapping) - nodes
            if stray:
                _fail(f"forest weight {name!r} names nodes outside the "
                      f"forest: {sorted(stray)[:5]}")
    if not isinstance(plan.dynamic_relations, frozenset):
        _fail(f"dynamic_relations {plan.dynamic_relations!r} is not a "
              f"frozenset")
    field_names = {field.name for field in dataclasses.fields(type(plan))}
    unaccounted = field_names - _STATE_FIELDS - _REBOUND_FIELDS \
        - _EPHEMERAL_FIELDS
    if unaccounted:
        _fail(f"CompiledQuery fields {sorted(unaccounted)} are not "
              f"covered by the serializer: add them to to_state()/"
              f"from_state() (and to repro.analysis.verify._STATE_FIELDS) "
              f"or declare them rebound/ephemeral there")
    missing = (_STATE_FIELDS | _REBOUND_FIELDS | _EPHEMERAL_FIELDS) \
        - field_names
    if missing:
        _fail(f"repro.analysis.verify declares CompiledQuery fields "
              f"{sorted(missing)} that no longer exist — update its "
              f"field registry")


def verify_plan_state(state: Any) -> "CompiledQuery":
    """Verify a raw serialized plan state (``to_state()`` output).

    This is the no-structure form used at the store/CLI seam, where the
    host structure is unknown: the state is decoded over an empty
    structure (plans never read the structure at load time — it is a
    rebind target) and pushed through the full :func:`verify_plan`
    contract.  Any decode failure or contract violation raises
    :class:`PlanVerifyError`; the decoded plan is returned so callers
    that do have the right structure can ``rebind`` it.
    """
    from ..core import CompiledQuery
    from ..structures import Structure
    if not isinstance(state, dict):
        _fail(f"plan state is not a mapping ({type(state).__name__})")
    keys = set(state)
    if keys != _STATE_KEYS:
        _fail(f"plan state keys {sorted(keys)} != expected "
              f"{sorted(_STATE_KEYS)} (missing "
              f"{sorted(_STATE_KEYS - keys)}, unexpected "
              f"{sorted(keys - _STATE_KEYS)})")
    try:
        plan = CompiledQuery.from_state(state, Structure([]), None)
    except PlanVerifyError:
        raise
    except PlanStateError as error:
        raise PlanVerifyError(str(error)) from None
    except (ValueError, TypeError, KeyError) as error:
        raise PlanVerifyError(f"malformed plan state: {error}") from None
    verify_plan(plan)
    return plan


def verification_enabled(explicit: bool | None = None) -> bool:
    """Whether post-compile plan verification is on.

    ``explicit`` (from ``ExecOptions(verify=...)`` or a ``verify=``
    kwarg) wins; ``None`` defers to the ``REPRO_VERIFY_PLANS``
    environment variable (truthy unless empty/``0``/``false``/``no``/
    ``off``) — how CI and debugging sessions opt whole processes in
    without code changes.
    """
    if explicit is not None:
        return bool(explicit)
    value = os.environ.get("REPRO_VERIFY_PLANS", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")
