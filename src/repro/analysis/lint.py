"""The project-invariant linter: AST rules for repo-specific contracts.

Generic linters cannot see the invariants this codebase actually relies
on — they live in comments and code review.  This module turns them
into machine-checked rules over the Python AST (stdlib :mod:`ast`, no
third-party dependency), run by CI and by a pytest wrapper so the real
source tree is provably clean and each rule provably fires.

The rules:

``REP001`` **lock ordering** — the database lock (``db._lock``) is
    acquired *before* any prepared-query engine lock (``_engine_lock``),
    never inside one.  The update router holds ``db._lock`` when it
    reaches the engines; an inverted acquisition elsewhere is a
    lock-order cycle, i.e. a deadlock waiting for load.

``REP002`` **locks via ``with`` only** — no bare ``.acquire()`` /
    ``.release()`` on lock-named attributes.  A ``with`` block releases
    on every exit path (including exceptions); manual pairing has
    already been the source of abandoned-lock bugs in enough codebases
    to ban outright.

``REP003`` **epoch bump on invalidation** — any ``*invalidate*``
    method in the facade/serving layers (``repro.api``, ``repro.serve``)
    must advance the database epoch (``_epoch += 1``).  The shared
    result cache keys point-query results by epoch; an invalidation
    path that forgets the bump serves stale answers — silently.

``REP004`` **one deprecation seam** — ``DeprecationWarning`` is issued
    only through :func:`repro._compat.warn_deprecated`, which
    deduplicates to one warning per shim per process.  Direct
    ``warnings.warn(..., DeprecationWarning)`` calls bypass the
    dedup registry and spam callers.

``REP005`` **deterministic, pickle-free serialization** — modules that
    produce serialized plans or cache keys (``serialize``,
    ``plan_store``, ``plan_cache``, ``result_cache``) must not import
    pickle-family codecs (arbitrary code execution on load) nor call
    nondeterminism sources (``hash()`` is salted per process;
    ``time``/``random``/``uuid``/``os.urandom`` vary per run) — cache
    keys and stored bytes must be reproducible across processes.
    Stable facilities (``hashlib``, ``os.getpid``,
    ``threading.get_ident`` for temp-file uniqueness) stay allowed.

``REP006`` **no blocking calls in cluster async paths** — inside an
    ``async def`` in ``repro.cluster`` modules, no ``time.sleep``, no
    bare ``.result()`` (a ``concurrent.futures`` wait with no timeout),
    and no blocking pipe/socket operations (``recv``, ``recv_bytes``,
    ``send_bytes``, ``sendall``, ``accept``, ``connect``).  The gateway
    embeds in the *caller's* event loop; one blocking call in a
    coroutine stalls every request on that loop.  Blocking belongs in
    the dispatcher threads and the ``*_sync`` facades — coroutines only
    await loop-agnostic futures.

``REP007`` **no full-content rehash on the update hot path** — inside
    update-path functions (``_apply_weight``/``_apply_relation``/
    ``_apply_write``, the structure mutators, ``update``/``__exit__`` of
    the transaction router, the retag/verify hooks) in the ``api``/
    ``serve``/``cluster`` layers, no ``full_fingerprint()`` or
    ``rehash()`` calls.  The structure fingerprint is maintained
    incrementally precisely so a write costs O(delta); one stray
    full rehash in the hot path silently reverts the update model to
    O(structure) per write.  Full rehashes belong to tests and the
    ``REPRO_VERIFY_FINGERPRINT`` debug mode.

Each rule has positive and negative fixtures under
``tests/lint_fixtures/``; ``tests/test_analysis_lint.py`` asserts the
shipped source tree is clean and that every rule fires on its negative
fixture.  CLI: ``python -m repro.analysis lint src/repro``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["LintViolation", "lint_source", "lint_file", "lint_paths",
           "RULES"]

#: rule id -> one-line description (the CLI's ``--explain`` output).
RULES = {
    "REP001": "db._lock must be acquired before _engine_lock, never "
              "inside it (lock-order deadlock)",
    "REP002": "locks are acquired only via `with`, never bare "
              ".acquire()/.release()",
    "REP003": "invalidation paths in repro.api/repro.serve must bump "
              "the database epoch (`_epoch += 1`)",
    "REP004": "DeprecationWarning only via repro._compat.warn_deprecated "
              "(the per-shim dedup seam)",
    "REP005": "serialize/cache-key modules: no pickle-family imports, no "
              "nondeterminism (hash()/time/random/uuid/urandom)",
    "REP006": "cluster async paths: no time.sleep, bare .result(), or "
              "blocking pipe/socket ops inside `async def`",
    "REP007": "update hot paths in repro.api/serve/cluster: no "
              "full-content rehash (full_fingerprint()/rehash()) — the "
              "fingerprint is maintained incrementally, O(delta) per "
              "write",
}

#: pickle-family modules whose import REP005 bans outright.
_PICKLE_MODULES = frozenset({"pickle", "cPickle", "dill", "shelve",
                             "marshal"})

#: dotted calls REP005 treats as nondeterminism sources.
_NONDETERMINISTIC_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "os.urandom",
    "uuid.uuid1", "uuid.uuid4", "random.random", "random.randint",
    "random.randrange", "random.getrandbits", "random.choice",
    "random.shuffle", "random.sample",
})

#: module basenames (sans ``.py``) REP005 applies to.
_SERIALIZE_MODULES = frozenset({"serialize", "plan_store", "plan_cache",
                                "result_cache"})

#: attribute calls REP006 treats as blocking pipe/socket operations.
_BLOCKING_IO_ATTRS = frozenset({"recv", "recv_bytes", "recv_into",
                                "send_bytes", "sendall", "accept",
                                "connect"})

#: function names REP007 treats as the update hot path.
_HOT_UPDATE_FUNCS = frozenset({
    "_apply_weight", "_apply_relation", "_apply_write",
    "set_weight", "set_relation", "add_tuple", "remove_tuple",
    "remove_weight", "update_weight", "update", "__exit__",
    "_verify_fresh", "_retag_points", "_retag_unaffected",
})

#: call tails REP007 bans inside the update hot path.
_FULL_REHASH_CALLS = frozenset({"full_fingerprint", "rehash"})


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"{self.message}")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_db_lock(dotted: str) -> bool:
    """``db._lock`` / ``self.db._lock`` / ``prepared.db._lock`` ..."""
    parts = dotted.split(".")
    return len(parts) >= 2 and parts[-1] == "_lock" and parts[-2] == "db"


def _is_engine_lock(dotted: str) -> bool:
    return dotted.split(".")[-1] == "_engine_lock"


def _module_parts(path: str) -> Tuple[str, ...]:
    """Normalized path components, for layer checks (``api``/``serve``)."""
    normalized = path.replace(os.sep, "/").replace("\\", "/")
    return tuple(part for part in normalized.split("/") if part)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        parts = _module_parts(path)
        basename = parts[-1][:-3] if parts and parts[-1].endswith(".py") \
            else (parts[-1] if parts else "")
        #: REP003 applies only in the facade/serving layers.
        self.in_facade_layer = bool({"api", "serve"} & set(parts[:-1]))
        #: REP004's sanctioned seam is exempt from itself.
        self.in_compat = basename == "_compat"
        #: REP005 applies to serialize/cache-key modules.
        self.in_serialize_module = basename in _SERIALIZE_MODULES
        #: REP006 applies to the multi-process serving layer.
        self.in_cluster_module = "cluster" in parts[:-1]
        #: REP007 applies to the layers that route updates.
        self.in_update_layer = bool(
            {"api", "serve", "cluster"} & set(parts[:-1]))
        #: lexical stack of `with`-held lock names (dotted).
        self.lock_stack: List[str] = []
        #: lexical function-kind stack: True inside `async def` bodies
        #: (a nested sync `def` pushes False and shadows it).
        self.async_stack: List[bool] = []
        #: lexical stack of enclosing function names (for REP007).
        self.func_stack: List[str] = []
        self.violations: List[LintViolation] = []

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(LintViolation(
            rule=rule, path=self.path, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), message=message))

    # -- REP001 / REP002: lock discipline -----------------------------------------

    def visit_With(self, node: ast.With) -> None:
        held = []
        for item in node.items:
            expr = item.context_expr
            # `with lock:` and `with lock.acquire_timeout(...)` both
            # root at the lock attribute; classify by the dotted name.
            dotted = _dotted(expr)
            if dotted is None:
                continue
            if _is_db_lock(dotted) and any(
                    _is_engine_lock(h) for h in self.lock_stack):
                self._flag(
                    "REP001", item.context_expr,
                    f"acquires {dotted} while holding an engine lock "
                    f"({[h for h in self.lock_stack if _is_engine_lock(h)][0]})"
                    f" — lock order is db._lock BEFORE _engine_lock")
            if _is_db_lock(dotted) or _is_engine_lock(dotted):
                held.append(dotted)
        self.lock_stack.extend(held)
        self.generic_visit(node)
        del self.lock_stack[len(self.lock_stack) - len(held):]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in ("acquire", "release"):
            dotted = _dotted(func.value)
            if dotted is not None and "lock" in dotted.lower():
                self._flag(
                    "REP002", node,
                    f"bare {dotted}.{func.attr}() — acquire locks only "
                    f"via `with` (releases on every exit path)")
        self._check_deprecation_call(node)
        if self.in_serialize_module:
            self._check_nondeterministic_call(node)
        if self.in_cluster_module and self.async_stack \
                and self.async_stack[-1]:
            self._check_blocking_call(node)
        if self.in_update_layer and any(
                name in _HOT_UPDATE_FUNCS for name in self.func_stack):
            self._check_full_rehash_call(node)
        self.generic_visit(node)

    # -- REP003: epoch bump on invalidation ----------------------------------------

    def _visit_function(self, node) -> None:
        if self.in_facade_layer and "invalidate" in node.name.lower() \
                and not self._bumps_epoch(node):
            self._flag(
                "REP003", node,
                f"{node.name}() is an invalidation path but never bumps "
                f"the database epoch (`_epoch += 1`) — epoch-keyed "
                f"result caches would serve stale answers")
        self.async_stack.append(isinstance(node, ast.AsyncFunctionDef))
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()
        self.async_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @staticmethod
    def _bumps_epoch(node) -> bool:
        return any(isinstance(child, ast.AugAssign)
                   and isinstance(child.op, ast.Add)
                   and isinstance(child.target, ast.Attribute)
                   and child.target.attr == "_epoch"
                   for child in ast.walk(node))

    # -- REP004: one deprecation seam ----------------------------------------------

    def _check_deprecation_call(self, node: ast.Call) -> None:
        if self.in_compat:
            return
        dotted = _dotted(node.func)
        if dotted is None or dotted.split(".")[-1] != "warn":
            return
        mentions = list(node.args) + [kw.value for kw in node.keywords]
        for arg in mentions:
            name = _dotted(arg) or (_dotted(arg.func)
                                    if isinstance(arg, ast.Call) else None)
            if name == "DeprecationWarning":
                self._flag(
                    "REP004", node,
                    "direct warnings.warn(..., DeprecationWarning) — use "
                    "repro._compat.warn_deprecated (one warning per shim)")
                return

    # -- REP005: deterministic, pickle-free serialization ---------------------------

    def visit_Import(self, node: ast.Import) -> None:
        if self.in_serialize_module:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _PICKLE_MODULES:
                    self._flag(
                        "REP005", node,
                        f"import {alias.name} in a serialize/cache-key "
                        f"module — plan bytes must be data-only (loading "
                        f"must never execute code)")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_serialize_module and node.module \
                and node.module.split(".")[0] in _PICKLE_MODULES:
            self._flag(
                "REP005", node,
                f"from {node.module} import ... in a serialize/cache-key "
                f"module — plan bytes must be data-only")
        self.generic_visit(node)

    def _check_nondeterministic_call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self._flag(
                "REP005", node,
                "builtin hash() in a serialize/cache-key module — it is "
                "salted per process; use hashlib for stable digests")
            return
        dotted = _dotted(node.func)
        if dotted in _NONDETERMINISTIC_CALLS:
            self._flag(
                "REP005", node,
                f"{dotted}() in a serialize/cache-key module — stored "
                f"bytes and cache keys must be reproducible across "
                f"processes")

    # -- REP006: no blocking calls in cluster async paths ---------------------------

    def _check_blocking_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted == "time.sleep":
            self._flag(
                "REP006", node,
                "time.sleep() inside a cluster `async def` stalls the "
                "caller's event loop — await asyncio.sleep, or move the "
                "wait into a dispatcher thread")
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        if attr == "result" and not node.args and not node.keywords:
            self._flag(
                "REP006", node,
                "bare .result() inside a cluster `async def` blocks the "
                "event loop with no deadline — await "
                "asyncio.wrap_future(...) instead")
        elif attr in _BLOCKING_IO_ATTRS:
            self._flag(
                "REP006", node,
                f".{attr}() inside a cluster `async def` is a blocking "
                f"pipe/socket operation — only dispatcher threads may "
                f"touch worker connections")

    # -- REP007: no full rehash on the update hot path -------------------------------

    def _check_full_rehash_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        tail = dotted.split(".")[-1]
        if tail in _FULL_REHASH_CALLS:
            self._flag(
                "REP007", node,
                f"{dotted}() inside an update hot-path function — a "
                f"full content rehash is O(structure) per write; the "
                f"fingerprint digest is maintained incrementally "
                f"(verification belongs in tests / "
                f"REPRO_VERIFY_FINGERPRINT)")


def lint_source(source: str, path: str = "<string>"
                ) -> List[LintViolation]:
    """Lint one module's source text.  ``path`` determines which
    path-scoped rules apply (REP003's facade layers, REP004's
    ``_compat`` exemption, REP005's serialize modules) and is echoed in
    violations."""
    tree = ast.parse(source, filename=path)
    linter = _Linter(path)
    linter.visit(tree)
    return sorted(linter.violations,
                  key=lambda v: (v.path, v.line, v.col, v.rule))


def lint_file(path: str) -> List[LintViolation]:
    with open(path, encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def lint_paths(paths: Sequence[str]) -> List[LintViolation]:
    """Lint files and directory trees (``.py`` files, recursively)."""
    violations: List[LintViolation] = []
    for path in _python_files(paths):
        violations.extend(lint_file(path))
    return violations


def _python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = [d for d in dirs
                           if d not in ("__pycache__", ".git")]
                for name in sorted(names):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path
