"""Static analysis for the compiled-plan pipeline.

Three tools, one package:

* :mod:`repro.analysis.verify` — the IR verifier: machine-checks the
  well-formedness contract of circuits, layer schedules and whole
  compiled plans at every trust seam (plan-store loads, an opt-in
  post-compile hook, the test suite's compile helpers, and the
  ``verify-store`` CLI).
* :mod:`repro.analysis.lint` — the project-invariant linter: AST rules
  for the concurrency and serialization disciplines the codebase
  relies on (lock ordering, ``with``-only lock acquisition, epoch
  bumps on invalidation, the one-warning deprecation seam, and
  pickle/nondeterminism bans in serialize/cache-key code).
* the typing gate — ``py.typed`` plus the strict ``mypy``
  configuration in ``pyproject.toml`` (enforced in CI).

Run the CLI with ``python -m repro.analysis --help``.
"""

from .lint import LintViolation, lint_file, lint_paths, lint_source
from .verify import (PlanVerifyError, verification_enabled, verify_circuit,
                     verify_plan, verify_plan_state, verify_schedule)

__all__ = [
    "PlanVerifyError", "verify_circuit", "verify_schedule", "verify_plan",
    "verify_plan_state", "verification_enabled",
    "LintViolation", "lint_source", "lint_file", "lint_paths",
]
