"""``python -m repro.analysis`` — the static-analysis command line.

Subcommands:

``verify-store <dir> [...]``
    Audit plan-store directories: every ``plan-*.rpln`` entry is
    decoded and pushed through the full IR verifier
    (:func:`repro.analysis.verify_plan_state`).  Exit status 1 when any
    entry fails; each failure prints the entry path and the violated
    invariant.

``lint <path> [...]``
    Run the project-invariant lint rules (REP001–REP005) over files or
    directory trees.  Exit status 1 on any violation.

``rules``
    List the lint rules with their one-line descriptions.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

from .lint import RULES, lint_paths
from .verify import PlanVerifyError, verify_plan_state

_ENTRY_SUFFIX = ".rpln"


def _store_entries(directory: str) -> List[str]:
    try:
        names = sorted(os.listdir(directory))
    except OSError as error:
        raise SystemExit(
            f"verify-store: cannot read {directory}: {error}") from error
    return [os.path.join(directory, name) for name in names
            if name.endswith(_ENTRY_SUFFIX)]


def verify_store(directories: Sequence[str],
                 out=sys.stdout) -> Tuple[int, int]:
    """Verify every entry of every store directory; returns
    ``(checked, failed)`` and reports per-entry results to ``out``."""
    from ..circuits.serialize import load_plan_bytes
    checked = 0
    failed = 0
    for directory in directories:
        entries = _store_entries(directory)
        if not entries:
            print(f"{directory}: no plan entries", file=out)
            continue
        for path in entries:
            checked += 1
            try:
                with open(path, "rb") as handle:
                    container = load_plan_bytes(handle.read())
                if not isinstance(container, dict) \
                        or "plan" not in container:
                    raise PlanVerifyError(
                        "container is missing the embedded plan")
                plan = verify_plan_state(container["plan"])
            except PlanVerifyError as error:
                failed += 1
                print(f"FAIL {path}: {error}", file=out)
            except Exception as error:  # torn/garbage container
                failed += 1
                print(f"FAIL {path}: unreadable entry: {error}", file=out)
            else:
                stats = plan.circuit.stats()
                print(f"ok   {path}: {stats['gates']} gates, "
                      f"{stats['inputs']} inputs", file=out)
    print(f"verify-store: {checked} entries, {failed} failed", file=out)
    return checked, failed


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for the compiled-plan pipeline.")
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser(
        "verify-store", help="verify every entry of plan-store directories")
    cmd.add_argument("directories", nargs="+", metavar="DIR",
                     help="plan-store directories (e.g. .plan-store)")

    cmd = commands.add_parser(
        "lint", help="run the project-invariant lint rules")
    cmd.add_argument("paths", nargs="+", metavar="PATH",
                     help="files or directory trees to lint")

    commands.add_parser("rules", help="list the lint rules")

    options = parser.parse_args(argv)
    if options.command == "verify-store":
        _, failed = verify_store(options.directories)
        return 1 if failed else 0
    if options.command == "lint":
        violations = lint_paths(options.paths)
        for violation in violations:
            print(violation)
        print(f"lint: {len(violations)} violation(s)")
        return 1 if violations else 0
    for rule, description in sorted(RULES.items()):
        print(f"{rule}  {description}")
    return 0
