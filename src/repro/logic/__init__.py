"""Query languages (system S5): FO formulas and weighted expressions."""

from .fo import (FALSE, TRUE, And, Atom, Eq, Exists, Forall, Formula,
                 FuncAtom, LabelAtom, Not, Or, Truth, assign_atoms, atoms_of,
                 conj, disj, exists, forall, is_quantifier_free, map_atoms,
                 negate, neq, substitute_vars)
from .naive import (ForestModel, StructureModel, UnaryModel, eval_expression,
                    eval_formula, model_for)
from .normalize import Block, normalize
from .weighted import (Bracket, Sum, WAdd, WConst, WExpr, Weight, WMul, WSum)

__all__ = [
    "Formula", "Atom", "Eq", "FuncAtom", "LabelAtom", "Truth", "Not", "And",
    "Or", "Exists", "Forall", "TRUE", "FALSE", "conj", "disj", "exists",
    "forall", "neq", "negate", "map_atoms", "substitute_vars", "atoms_of",
    "assign_atoms", "is_quantifier_free",
    "WExpr", "WConst", "Weight", "Bracket", "WAdd", "WMul", "WSum", "Sum",
    "Block", "normalize",
    "eval_formula", "eval_expression", "model_for",
    "StructureModel", "UnaryModel", "ForestModel",
]
