"""Weighted Σ(w)-expressions (paper §3).

An expression is built from weight atoms ``w(x, y)``, Iverson brackets
``[φ]`` of first-order formulas, semiring constants, ``+``, ``*`` and
variable summation ``Σ_x``.  Python's ``+`` and ``*`` operators compose
expressions; :func:`Sum` binds variables.

Example (the paper's triangle query)::

    f = Sum(("x", "y", "z"),
            Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
            * w("x", "y") * w("y", "z") * w("z", "x"))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Tuple

from .fo import Formula


class WExpr:
    """Base class for weighted expressions; supports ``+`` and ``*``."""

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __add__(self, other: "WExpr") -> "WExpr":
        return WAdd((self, _lift(other)))

    def __radd__(self, other: Any) -> "WExpr":
        return WAdd((_lift(other), self))

    def __mul__(self, other: "WExpr") -> "WExpr":
        return WMul((self, _lift(other)))

    def __rmul__(self, other: Any) -> "WExpr":
        return WMul((_lift(other), self))


def _lift(value: Any) -> "WExpr":
    if isinstance(value, WExpr):
        return value
    if isinstance(value, Formula):
        return Bracket(value)
    return WConst(value)


@dataclass(frozen=True)
class WConst(WExpr):
    """A semiring constant.  ``0``/``1``/small ints stay symbolic so the
    same expression can be evaluated in any semiring (via ``coerce``);
    other carrier values are passed through as-is."""

    value: Any

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Weight(WExpr):
    """A weight atom ``w(x1, ..., xr)`` over variables."""

    name: str
    terms: Tuple[str, ...]

    def free_vars(self) -> FrozenSet[str]:
        return frozenset(self.terms)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.terms)})"


@dataclass(frozen=True)
class Bracket(WExpr):
    """The Iverson bracket ``[φ]``: 1 if φ holds, else 0."""

    formula: Formula

    def free_vars(self) -> FrozenSet[str]:
        return self.formula.free_vars()

    def __repr__(self) -> str:
        return f"[{self.formula!r}]"


@dataclass(frozen=True)
class WAdd(WExpr):
    parts: Tuple[WExpr, ...]

    def free_vars(self) -> FrozenSet[str]:
        return frozenset().union(*(p.free_vars() for p in self.parts)) \
            if self.parts else frozenset()

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class WMul(WExpr):
    parts: Tuple[WExpr, ...]

    def free_vars(self) -> FrozenSet[str]:
        return frozenset().union(*(p.free_vars() for p in self.parts)) \
            if self.parts else frozenset()

    def __repr__(self) -> str:
        return "(" + " * ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class WSum(WExpr):
    """``Σ_{vars} inner`` — semiring aggregation over the domain."""

    vars: Tuple[str, ...]
    inner: WExpr

    def free_vars(self) -> FrozenSet[str]:
        return self.inner.free_vars() - frozenset(self.vars)

    def __repr__(self) -> str:
        return f"(Sum {','.join(self.vars)}. {self.inner!r})"


def Sum(variables, inner: Any) -> WSum:
    """``Σ_x inner``; accepts a single name or an iterable of names."""
    if isinstance(variables, str):
        variables = (variables,)
    return WSum(tuple(variables), _lift(inner))


def BracketOf(formula: Formula) -> Bracket:
    return Bracket(formula)
