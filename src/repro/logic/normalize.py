"""Normalization of weighted expressions into sum-of-product blocks.

Lemma 28 / the proof of Lemma 29 assume the expression is a sum of blocks
``Σ_x (product of factors)`` with sum-free products.  In a commutative
semiring every closed expression flattens into this form: bound variables
are α-renamed apart, sums are pulled through products and additions
(distributivity), and products are distributed over inner additions.

A :class:`Block` is the compiler's unit of work: a tuple of summed
variables, weight factors, constant factors, and quantifier-free bracket
formulas.  Bracket formulas are *not* expanded into exclusive DNF here —
that happens per-shape at the forest stage, where most atoms have already
collapsed to constants (see DESIGN.md, "Shapes as the compilation core").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .fo import Formula, is_quantifier_free, substitute_vars
from .weighted import Bracket, WAdd, WConst, WExpr, Weight, WMul, WSum


@dataclass
class Block:
    """``Σ_{vars} (Π weights · Π consts · Π [brackets])``."""

    vars: Tuple[str, ...]
    weight_factors: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)
    const_factors: List[Any] = field(default_factory=list)
    brackets: List[Formula] = field(default_factory=list)

    def all_vars_used(self) -> frozenset:
        used = set()
        for _, terms in self.weight_factors:
            used.update(terms)
        for formula in self.brackets:
            used.update(formula.free_vars())
        return frozenset(used)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        factors = ([f"{n}({','.join(t)})" for n, t in self.weight_factors]
                   + [repr(c) for c in self.const_factors]
                   + [f"[{b!r}]" for b in self.brackets])
        return f"Sum{list(self.vars)}. " + " * ".join(factors or ["1"])


class _FreshNames:
    def __init__(self, prefix: str = "_v"):
        self.prefix = prefix
        self.counter = itertools.count()

    def fresh(self) -> str:
        return f"{self.prefix}{next(self.counter)}"


def rename_apart(expr: WExpr, names: _FreshNames,
                 env: Dict[str, str]) -> WExpr:
    """α-rename every bound variable to a globally fresh name."""
    if isinstance(expr, WConst):
        return expr
    if isinstance(expr, Weight):
        return Weight(expr.name, tuple(env.get(t, t) for t in expr.terms))
    if isinstance(expr, Bracket):
        return Bracket(substitute_vars(expr.formula, env))
    if isinstance(expr, WAdd):
        return WAdd(tuple(rename_apart(p, names, env) for p in expr.parts))
    if isinstance(expr, WMul):
        return WMul(tuple(rename_apart(p, names, env) for p in expr.parts))
    if isinstance(expr, WSum):
        fresh = {var: names.fresh() for var in expr.vars}
        inner_env = dict(env)
        inner_env.update(fresh)
        return WSum(tuple(fresh[v] for v in expr.vars),
                    rename_apart(expr.inner, names, inner_env))
    raise TypeError(f"unknown expression {expr!r}")


def normalize(expr: WExpr) -> List[Block]:
    """Flatten a *closed* expression into blocks.

    Raises if the expression has free variables (wrap free-variable queries
    with selector weights first — see :mod:`repro.engine`) or if a bracket
    contains quantifiers (apply quantifier elimination first — see
    :mod:`repro.qe`).
    """
    free = expr.free_vars()
    if free:
        raise ValueError(f"normalize requires a closed expression; free: "
                         f"{sorted(free)}")
    renamed = rename_apart(expr, _FreshNames(), {})
    blocks = [Block(tuple(vars_), list(factors[0]), list(factors[1]),
                    list(factors[2]))
              for vars_, factors in _flatten(renamed)]
    for block in blocks:
        for formula in block.brackets:
            if not is_quantifier_free(formula):
                raise ValueError(
                    f"bracket {formula!r} contains quantifiers; run "
                    f"quantifier elimination first (repro.qe)")
    return blocks


_Factors = Tuple[List[Tuple[str, Tuple[str, ...]]], List[Any], List[Formula]]


def _flatten(expr: WExpr) -> List[Tuple[Tuple[str, ...], _Factors]]:
    """Return the list of (summed vars, factor lists) products of ``expr``."""
    if isinstance(expr, WConst):
        return [((), ([], [expr.value], []))]
    if isinstance(expr, Weight):
        return [((), ([(expr.name, expr.terms)], [], []))]
    if isinstance(expr, Bracket):
        return [((), ([], [], [expr.formula]))]
    if isinstance(expr, WAdd):
        out = []
        for part in expr.parts:
            out.extend(_flatten(part))
        return out
    if isinstance(expr, WSum):
        return [(expr.vars + vars_, factors)
                for vars_, factors in _flatten(expr.inner)]
    if isinstance(expr, WMul):
        # Distribute the product over each part's sum-of-blocks.  Bound
        # variables are renamed apart, so pulling sums out is sound.
        combos: List[Tuple[Tuple[str, ...], _Factors]] = \
            [((), ([], [], []))]
        for part in expr.parts:
            part_blocks = _flatten(part)
            merged = []
            for vars_a, (w_a, c_a, b_a) in combos:
                for vars_b, (w_b, c_b, b_b) in part_blocks:
                    merged.append((vars_a + vars_b,
                                   (w_a + w_b, c_a + c_b, b_a + b_b)))
            combos = merged
        return combos
    raise TypeError(f"unknown expression {expr!r}")
