"""First-order formulas (and the internal atoms of the compilation stages).

Public syntax: relation atoms ``R(x, y)``, equality, boolean connectives,
and quantifiers, built with operators (``&``, ``|``, ``~``) or the helper
constructors.  Terms are variables only — the paper's function symbols
arise internally (Lemma 37's ``f_i``), represented by :class:`FuncAtom`,
and the forest encoding adds :class:`LabelAtom`.

All formula objects are immutable and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, Tuple


class Formula:
    """Base class; supports ``&``, ``|``, ``~`` composition."""

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Truth(Formula):
    """The constants ``true`` / ``false``."""

    value: bool

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "true" if self.value else "false"


TRUE = Truth(True)
FALSE = Truth(False)


@dataclass(frozen=True)
class Atom(Formula):
    """A relation atom ``R(x1, ..., xk)`` over variables."""

    relation: str
    terms: Tuple[str, ...]

    def free_vars(self) -> FrozenSet[str]:
        return frozenset(self.terms)

    def __repr__(self) -> str:
        return f"{self.relation}({', '.join(self.terms)})"


@dataclass(frozen=True)
class Eq(Formula):
    """The equality atom ``x = y``."""

    left: str
    right: str

    def free_vars(self) -> FrozenSet[str]:
        return frozenset((self.left, self.right))

    def __repr__(self) -> str:
        return f"{self.left}={self.right}"


@dataclass(frozen=True)
class FuncAtom(Formula):
    """``f(x) = y`` for an internal unary function symbol (Lemma 37).

    Semantics follow the paper's saturation convention: ``f_i(a)`` is the
    i-th out-neighbor of ``a`` when it exists and ``a`` itself otherwise.
    """

    func: Hashable
    arg: str
    out: str

    def free_vars(self) -> FrozenSet[str]:
        return frozenset((self.arg, self.out))

    def __repr__(self) -> str:
        return f"{self.func}({self.arg})={self.out}"


@dataclass(frozen=True)
class LabelAtom(Formula):
    """``L(x)`` for a unary label of the encoded (forest) structure."""

    label: Hashable
    var: str

    def free_vars(self) -> FrozenSet[str]:
        return frozenset((self.var,))

    def __repr__(self) -> str:
        return f"[{self.label!r}]({self.var})"


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula

    def free_vars(self) -> FrozenSet[str]:
        return self.inner.free_vars()

    def __repr__(self) -> str:
        return f"~{self.inner!r}"


@dataclass(frozen=True)
class And(Formula):
    parts: Tuple[Formula, ...]

    def free_vars(self) -> FrozenSet[str]:
        return frozenset().union(*(p.free_vars() for p in self.parts)) \
            if self.parts else frozenset()

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    parts: Tuple[Formula, ...]

    def free_vars(self) -> FrozenSet[str]:
        return frozenset().union(*(p.free_vars() for p in self.parts)) \
            if self.parts else frozenset()

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Exists(Formula):
    vars: Tuple[str, ...]
    inner: Formula

    def free_vars(self) -> FrozenSet[str]:
        return self.inner.free_vars() - frozenset(self.vars)

    def __repr__(self) -> str:
        return f"(E {','.join(self.vars)}. {self.inner!r})"


@dataclass(frozen=True)
class Forall(Formula):
    vars: Tuple[str, ...]
    inner: Formula

    def free_vars(self) -> FrozenSet[str]:
        return self.inner.free_vars() - frozenset(self.vars)

    def __repr__(self) -> str:
        return f"(A {','.join(self.vars)}. {self.inner!r})"


# -- convenience constructors ---------------------------------------------------

def conj(*parts: Formula) -> Formula:
    parts = tuple(p for p in parts if p != TRUE)
    if any(p == FALSE for p in parts):
        return FALSE
    if not parts:
        return TRUE
    return parts[0] if len(parts) == 1 else And(parts)


def disj(*parts: Formula) -> Formula:
    parts = tuple(p for p in parts if p != FALSE)
    if any(p == TRUE for p in parts):
        return TRUE
    if not parts:
        return FALSE
    return parts[0] if len(parts) == 1 else Or(parts)


def exists(variables, inner: Formula) -> Formula:
    if isinstance(variables, str):
        variables = (variables,)
    return Exists(tuple(variables), inner)


def forall(variables, inner: Formula) -> Formula:
    if isinstance(variables, str):
        variables = (variables,)
    return Forall(tuple(variables), inner)


def neq(left: str, right: str) -> Formula:
    return Not(Eq(left, right))


# -- structural transformations ---------------------------------------------------

def map_atoms(formula: Formula,
              fn: Callable[[Formula], Formula]) -> Formula:
    """Rebuild ``formula`` with every atom passed through ``fn``.

    Atoms are :class:`Atom`, :class:`Eq`, :class:`FuncAtom`,
    :class:`LabelAtom` and :class:`Truth`.  This is the 'reduction'
    operation of Lemma 27: stages rewrite atoms in place, leaving the
    boolean structure (hence negation) untouched.
    """
    if isinstance(formula, (Atom, Eq, FuncAtom, LabelAtom, Truth)):
        return fn(formula)
    if isinstance(formula, Not):
        return negate(map_atoms(formula.inner, fn))
    if isinstance(formula, And):
        return conj(*(map_atoms(p, fn) for p in formula.parts))
    if isinstance(formula, Or):
        return disj(*(map_atoms(p, fn) for p in formula.parts))
    if isinstance(formula, Exists):
        return exists(formula.vars, map_atoms(formula.inner, fn))
    if isinstance(formula, Forall):
        return forall(formula.vars, map_atoms(formula.inner, fn))
    raise TypeError(f"unknown formula {formula!r}")


def negate(formula: Formula) -> Formula:
    """``~formula`` with constant folding."""
    if isinstance(formula, Truth):
        return Truth(not formula.value)
    if isinstance(formula, Not):
        return formula.inner
    return Not(formula)


def substitute_vars(formula: Formula, mapping: Dict[str, str]) -> Formula:
    """Rename free variables (capture is the caller's responsibility)."""
    def rename(atom: Formula) -> Formula:
        if isinstance(atom, Atom):
            return Atom(atom.relation,
                        tuple(mapping.get(t, t) for t in atom.terms))
        if isinstance(atom, Eq):
            return Eq(mapping.get(atom.left, atom.left),
                      mapping.get(atom.right, atom.right))
        if isinstance(atom, FuncAtom):
            return FuncAtom(atom.func, mapping.get(atom.arg, atom.arg),
                            mapping.get(atom.out, atom.out))
        if isinstance(atom, LabelAtom):
            return LabelAtom(atom.label, mapping.get(atom.var, atom.var))
        return atom

    if isinstance(formula, (Exists, Forall)):
        shadowed = {k: v for k, v in mapping.items() if k not in formula.vars}
        inner = substitute_vars(formula.inner, shadowed)
        ctor = exists if isinstance(formula, Exists) else forall
        return ctor(formula.vars, inner)
    if isinstance(formula, Not):
        return negate(substitute_vars(formula.inner, mapping))
    if isinstance(formula, And):
        return conj(*(substitute_vars(p, mapping) for p in formula.parts))
    if isinstance(formula, Or):
        return disj(*(substitute_vars(p, mapping) for p in formula.parts))
    return rename(formula)


def is_quantifier_free(formula: Formula) -> bool:
    if isinstance(formula, (Exists, Forall)):
        return False
    if isinstance(formula, Not):
        return is_quantifier_free(formula.inner)
    if isinstance(formula, (And, Or)):
        return all(is_quantifier_free(p) for p in formula.parts)
    return True


def atoms_of(formula: Formula) -> list:
    """All atom occurrences (deduplicated, stable order)."""
    found: list = []
    seen = set()

    def walk(f: Formula) -> None:
        if isinstance(f, (Atom, Eq, FuncAtom, LabelAtom)):
            if f not in seen:
                seen.add(f)
                found.append(f)
        elif isinstance(f, Not):
            walk(f.inner)
        elif isinstance(f, (And, Or)):
            for p in f.parts:
                walk(p)
        elif isinstance(f, (Exists, Forall)):
            walk(f.inner)

    walk(formula)
    return found


def assign_atoms(formula: Formula, assignment: Dict[Formula, bool]) -> Formula:
    """Partially evaluate: replace assigned atoms by constants and fold."""
    def fold(atom: Formula) -> Formula:
        if isinstance(atom, Truth):
            return atom
        if atom in assignment:
            return Truth(assignment[atom])
        return atom

    return map_atoms(formula, fold)
