"""Naive evaluators: the test oracles and benchmark baselines (system S13).

Direct recursive evaluation of FO formulas and weighted expressions over a
*model*.  Quantifiers and summations loop over the whole domain, so a block
with p variables costs O(|A|^p) — the baseline the factorized evaluator is
measured against.

A model exposes ``domain``, ``atom(atom, env) -> bool`` and
``weight_value(name, tup) -> value``; adapters are provided for
:class:`~repro.structures.Structure`,
:class:`~repro.structures.unary.UnaryStructure` and
:class:`~repro.structures.LabeledForest`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from ..structures import LabeledForest, Structure
from ..structures.unary import UnaryStructure
from .fo import (And, Atom, Eq, Exists, Forall, Formula, FuncAtom, LabelAtom,
                 Not, Or, Truth)
from .weighted import Bracket, WAdd, WConst, WExpr, Weight, WMul, WSum

Env = Dict[str, Any]


class StructureModel:
    """Adapter: public relational structures with tuple weights."""

    def __init__(self, structure: Structure, zero: Any = 0):
        self.structure = structure
        self.domain: List[Any] = list(structure.domain)
        self.zero = zero

    def atom(self, atom: Formula, env: Env) -> bool:
        if isinstance(atom, Atom):
            return self.structure.has_tuple(
                atom.relation, tuple(env[t] for t in atom.terms))
        if isinstance(atom, Eq):
            return env[atom.left] == env[atom.right]
        raise TypeError(f"structure model cannot evaluate {atom!r}")

    def weight_value(self, name: str, tup: tuple) -> Any:
        return self.structure.weight(name, tup, self.zero)


class UnaryModel:
    """Adapter: the unary-ized intermediate structures of Lemma 37."""

    def __init__(self, unary: UnaryStructure, zero: Any = 0):
        self.unary = unary
        self.domain: List[Any] = list(unary.domain)
        self.zero = zero

    def atom(self, atom: Formula, env: Env) -> bool:
        if isinstance(atom, LabelAtom):
            return self.unary.has_label(atom.label, env[atom.var])
        if isinstance(atom, Eq):
            return env[atom.left] == env[atom.right]
        if isinstance(atom, FuncAtom):
            return self.unary.apply(atom.func, env[atom.arg]) == env[atom.out]
        raise TypeError(f"unary model cannot evaluate {atom!r}")

    def weight_value(self, name: str, tup: tuple) -> Any:
        if len(tup) != 1:
            raise TypeError("unary structures carry unary weights only")
        return self.unary.weight(name, tup[0], self.zero)


class ForestModel:
    """Adapter: labeled forests (Case 1).  ``FuncAtom(("parent", i), x, y)``
    means ``parent^i(x) = y`` with the paper's saturation at roots."""

    def __init__(self, forest: LabeledForest, zero: Any = 0):
        self.forest = forest
        self.domain: List[Any] = forest.nodes()
        self.zero = zero

    def atom(self, atom: Formula, env: Env) -> bool:
        if isinstance(atom, LabelAtom):
            return self.forest.has_label(atom.label, env[atom.var])
        if isinstance(atom, Eq):
            return env[atom.left] == env[atom.right]
        if isinstance(atom, FuncAtom):
            func = atom.func
            if isinstance(func, tuple) and func and func[0] == "parent":
                steps = func[1] if len(func) > 1 else 1
                return self.forest.ancestor_up(env[atom.arg], steps) == env[atom.out]
            if func == "parent":
                return self.forest.ancestor_up(env[atom.arg], 1) == env[atom.out]
            raise TypeError(f"forest model has no function {func!r}")
        raise TypeError(f"forest model cannot evaluate {atom!r}")

    def weight_value(self, name: str, tup: tuple) -> Any:
        if len(tup) != 1:
            raise TypeError("forests carry unary weights only")
        return self.forest.weight(name, tup[0], self.zero)


def eval_formula(formula: Formula, model, env: Optional[Env] = None) -> bool:
    """Classical FO semantics by recursion (quantifiers loop the domain)."""
    env = env or {}
    if isinstance(formula, Truth):
        return formula.value
    if isinstance(formula, Not):
        return not eval_formula(formula.inner, model, env)
    if isinstance(formula, And):
        return all(eval_formula(p, model, env) for p in formula.parts)
    if isinstance(formula, Or):
        return any(eval_formula(p, model, env) for p in formula.parts)
    if isinstance(formula, (Exists, Forall)):
        combine = any if isinstance(formula, Exists) else all
        names = formula.vars

        def bindings():
            for values in itertools.product(model.domain, repeat=len(names)):
                inner_env = dict(env)
                inner_env.update(zip(names, values))
                yield eval_formula(formula.inner, model, inner_env)

        return combine(bindings())
    return model.atom(formula, env)


def eval_expression(expr: WExpr, model, sr, env: Optional[Env] = None) -> Any:
    """Naive semantics of weighted expressions (paper §3, 'interpretation')."""
    env = env or {}
    if isinstance(expr, WConst):
        return sr.coerce(expr.value)
    if isinstance(expr, Weight):
        tup = tuple(env[t] for t in expr.terms)
        return model.weight_value(expr.name, tup)
    if isinstance(expr, Bracket):
        return sr.one if eval_formula(expr.formula, model, env) else sr.zero
    if isinstance(expr, WAdd):
        return sr.sum(eval_expression(p, model, sr, env) for p in expr.parts)
    if isinstance(expr, WMul):
        return sr.prod(eval_expression(p, model, sr, env) for p in expr.parts)
    if isinstance(expr, WSum):
        total = sr.zero
        for values in itertools.product(model.domain, repeat=len(expr.vars)):
            inner_env = dict(env)
            inner_env.update(zip(expr.vars, values))
            total = sr.add(total, eval_expression(expr.inner, model, sr, inner_env))
        return total
    raise TypeError(f"unknown expression {expr!r}")


def model_for(data, zero: Any = 0):
    """Pick the right adapter for ``data``."""
    if isinstance(data, Structure):
        return StructureModel(data, zero)
    if isinstance(data, UnaryStructure):
        return UnaryModel(data, zero)
    if isinstance(data, LabeledForest):
        return ForestModel(data, zero)
    raise TypeError(f"no model adapter for {type(data).__name__}")
