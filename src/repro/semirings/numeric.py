"""Numeric semirings and rings: N, Z, Q, floats, and the modular rings Z_m."""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Sequence

from .base import Semiring


class NaturalSemiring(Semiring):
    """``(N, +, *)`` — bag semantics / counting (paper §1, Example 4)."""

    name = "N"
    zero = 0
    one = 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def scale(self, n: int, a: int) -> int:
        return n * a if n > 0 else 0


class IntegerRing(Semiring):
    """``(Z, +, *)`` — the prototypical ring (enables Lemma 15)."""

    name = "Z"
    is_ring = True
    zero = 0
    one = 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def mul(self, a: int, b: int) -> int:
        return a * b

    def neg(self, a: int) -> int:
        return -a

    def scale(self, n: int, a: int) -> int:
        return n * a if n > 0 else 0


class RationalField(Semiring):
    """``(Q, +, *)`` via :class:`fractions.Fraction` — exact PageRank weights."""

    name = "Q"
    is_ring = True
    zero = Fraction(0)
    one = Fraction(1)

    def add(self, a: Fraction, b: Fraction) -> Fraction:
        return a + b

    def mul(self, a: Fraction, b: Fraction) -> Fraction:
        return a * b

    def neg(self, a: Fraction) -> Fraction:
        return -a

    def scale(self, n: int, a: Fraction) -> Fraction:
        return n * a if n > 0 else Fraction(0)

    def coerce(self, value: Any) -> Fraction:
        if isinstance(value, bool):
            return Fraction(1) if value else Fraction(0)
        if isinstance(value, int):
            return Fraction(value)
        return Fraction(value)


class FloatField(Semiring):
    """IEEE floats as an (approximate) ring; ``eq`` uses a relative tolerance.

    Used for scaling benchmarks where Python arithmetic must be unit-cost.
    """

    name = "float"
    is_ring = True
    zero = 0.0
    one = 1.0

    def __init__(self, tolerance: float = 1e-9):
        self.tolerance = tolerance

    def add(self, a: float, b: float) -> float:
        return a + b

    def mul(self, a: float, b: float) -> float:
        return a * b

    def neg(self, a: float) -> float:
        return -a

    def scale(self, n: int, a: float) -> float:
        return n * a if n > 0 else 0.0

    def eq(self, a: float, b: float) -> bool:
        return abs(a - b) <= self.tolerance * max(1.0, abs(a), abs(b))

    def coerce(self, value: Any) -> float:
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        return float(value)


class ModularRing(Semiring):
    """``Z_m`` — a ring that is also finite: exercises both fast-update paths."""

    name = "Z_m"
    is_ring = True
    is_finite = True

    def __init__(self, modulus: int):
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        self.modulus = modulus
        self.name = f"Z_{modulus}"
        self.zero = 0
        self.one = 1 % modulus

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def neg(self, a: int) -> int:
        return (-a) % self.modulus

    def scale(self, n: int, a: int) -> int:
        return (n * a) % self.modulus if n > 0 else 0

    def elements(self) -> Sequence[int]:
        return range(self.modulus)
