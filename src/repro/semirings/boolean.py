"""The boolean semiring B and finite boolean algebras P(X).

``B = ({False, True}, or, and)`` recovers classical query semantics: the
Iverson bracket maps a formula's truth value into any semiring through B,
and existential quantification is summation in B (paper §1, §7).
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Sequence

from .base import Semiring


class BooleanSemiring(Semiring):
    """``({False, True}, or, and)`` — model checking as circuit evaluation."""

    name = "B"
    is_finite = True
    zero = False
    one = True

    def add(self, a: bool, b: bool) -> bool:
        return a or b

    def mul(self, a: bool, b: bool) -> bool:
        return a and b

    def scale(self, n: int, a: bool) -> bool:
        return a if n > 0 else False

    def elements(self) -> Sequence[bool]:
        return (False, True)

    def coerce(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return value > 0
        return bool(value)


class SetAlgebra(Semiring):
    """The boolean algebra ``(P(X), union, intersection)`` over a finite X.

    A finite semiring that is *not* a ring and whose addition is idempotent
    but not cyclic-group-like — a good stress test for the lasso arithmetic
    of Lemma 38 and the finite permanent of Lemma 18.
    """

    name = "P(X)"
    is_finite = True

    def __init__(self, universe: Iterable[Any]):
        self.universe: FrozenSet[Any] = frozenset(universe)
        self.name = f"P(X:{len(self.universe)})"
        self.zero = frozenset()
        self.one = self.universe

    def add(self, a: FrozenSet[Any], b: FrozenSet[Any]) -> FrozenSet[Any]:
        return a | b

    def mul(self, a: FrozenSet[Any], b: FrozenSet[Any]) -> FrozenSet[Any]:
        return a & b

    def scale(self, n: int, a: FrozenSet[Any]) -> FrozenSet[Any]:
        return a if n > 0 else frozenset()

    def elements(self) -> Sequence[FrozenSet[Any]]:
        items = sorted(self.universe, key=repr)
        subsets = [frozenset()]
        for item in items:
            subsets += [s | {item} for s in subsets]
        return subsets

    def coerce(self, value: Any) -> FrozenSet[Any]:
        if isinstance(value, bool):
            return self.one if value else self.zero
        if isinstance(value, int):
            return self.one if value > 0 else self.zero
        return frozenset(value)
