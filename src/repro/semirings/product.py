"""Direct products of semirings (componentwise operations).

Products preserve both capability flags: a product of rings is a ring, a
product of finite semirings is finite.  They are used in tests to build
"mixed" carriers and to check that circuit evaluation is componentwise.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence, Tuple

from .base import Semiring


class ProductSemiring(Semiring):
    """The componentwise product ``S_1 x ... x S_k``."""

    def __init__(self, *factors: Semiring):
        if not factors:
            raise ValueError("product of zero semirings is not supported")
        self.factors: Tuple[Semiring, ...] = factors
        self.name = " x ".join(f.name for f in factors)
        self.is_ring = all(f.is_ring for f in factors)
        self.is_finite = all(f.is_finite for f in factors)
        self.zero = tuple(f.zero for f in factors)
        self.one = tuple(f.one for f in factors)

    def add(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(f.add(x, y) for f, x, y in zip(self.factors, a, b))

    def mul(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(f.mul(x, y) for f, x, y in zip(self.factors, a, b))

    def neg(self, a: Tuple[Any, ...]) -> Tuple[Any, ...]:
        if not self.is_ring:
            raise NotImplementedError(f"{self.name} is not a ring")
        return tuple(f.neg(x) for f, x in zip(self.factors, a))

    def scale(self, n: int, a: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(f.scale(n, x) for f, x in zip(self.factors, a))

    def eq(self, a: Tuple[Any, ...], b: Tuple[Any, ...]) -> bool:
        return all(f.eq(x, y) for f, x, y in zip(self.factors, a, b))

    def elements(self) -> Sequence[Tuple[Any, ...]]:
        if not self.is_finite:
            raise NotImplementedError(f"{self.name} is not finite")
        return [tuple(combo) for combo in
                itertools.product(*(f.elements() for f in self.factors))]

    def coerce(self, value: Any) -> Tuple[Any, ...]:
        if isinstance(value, (bool, int)):
            return tuple(f.coerce(value) for f in self.factors)
        return tuple(value)
