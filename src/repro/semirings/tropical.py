"""Tropical and lattice semirings: (min,+), (max,+), (min,max).

These are the optimisation semirings of the paper's introduction: evaluating
the triangle query over ``(N u {+inf}, min, +)`` yields the minimum total
cost of a directed triangle.  None of them is a ring, and none is finite,
so they exercise the general-semiring path (Lemma 11, logarithmic updates)
-- exactly the case Proposition 14 proves cannot be improved.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from .base import Semiring

INF = math.inf


class MinPlus(Semiring):
    """``(R u {+inf}, min, +)`` — shortest/cheapest-combination aggregation."""

    name = "min-plus"
    zero = INF
    one = 0

    def add(self, a, b):
        return a if a <= b else b

    def mul(self, a, b):
        return a + b

    def scale(self, n: int, a):
        return a if n > 0 else INF

    def coerce(self, value: Any):
        if isinstance(value, bool):
            return 0 if value else INF
        if isinstance(value, int):
            # n-fold sum of `one`: min(0, 0, ...) = 0 for n >= 1.
            return 0 if value > 0 else INF
        return value


class MaxPlus(Semiring):
    """``(R u {-inf}, max, +)`` — the Q_max semiring of the intro's example."""

    name = "max-plus"
    zero = -INF
    one = 0

    def add(self, a, b):
        return a if a >= b else b

    def mul(self, a, b):
        return a + b

    def scale(self, n: int, a):
        return a if n > 0 else -INF

    def coerce(self, value: Any):
        if isinstance(value, bool):
            return 0 if value else -INF
        if isinstance(value, int):
            return 0 if value > 0 else -INF
        return value


class MinMax(Semiring):
    """``(N u {+inf}, min, max)`` — bottleneck optimisation (paper §2)."""

    name = "min-max"
    zero = INF
    one = 0

    def add(self, a, b):
        return a if a <= b else b

    def mul(self, a, b):
        return a if a >= b else b

    def scale(self, n: int, a):
        return a if n > 0 else INF

    def coerce(self, value: Any):
        if isinstance(value, bool):
            return 0 if value else INF
        if isinstance(value, int):
            return 0 if value > 0 else INF
        return value


class BoundedMinMax(Semiring):
    """``({0..m} u {inf}, min, max)`` — a *finite* lattice semiring.

    Finite variant of :class:`MinMax`: lets the finite-semiring permanent
    (Lemma 18) be tested against a non-ring, non-boolean carrier.
    """

    name = "min-max-m"
    is_finite = True

    def __init__(self, bound: int):
        self.bound = bound
        self.name = f"min-max-{bound}"
        self.zero = INF
        self.one = 0

    def add(self, a, b):
        return a if a <= b else b

    def mul(self, a, b):
        return a if a >= b else b

    def scale(self, n: int, a):
        return a if n > 0 else INF

    def elements(self) -> Sequence[Any]:
        return list(range(self.bound + 1)) + [INF]

    def coerce(self, value: Any):
        if isinstance(value, bool):
            return 0 if value else INF
        if isinstance(value, int):
            return 0 if value > 0 else INF
        return value
