"""The free commutative semiring F_A (provenance semiring, paper §5).

Elements are formal N-linear combinations of monomials over a set of
generators -- isomorphic to polynomials N[A].  This is the *eager*
representation, suitable for small instances and for cross-checking the
lazy enumerator representation of Theorem 22 (see ``repro.enumeration``).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Mapping, Tuple

from .base import Semiring

Monomial = Tuple[Hashable, ...]


class Poly:
    """An element of the free semiring: monomial -> positive coefficient.

    Monomials are sorted tuples of generator ids (repetitions = powers).
    Instances are immutable and hashable so they can live inside other
    semiring machinery (e.g. as matrix entries).
    """

    __slots__ = ("terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, int]):
        self.terms: Dict[Monomial, int] = {
            mono: coeff for mono, coeff in terms.items() if coeff != 0
        }
        self._hash: int | None = None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Poly) and self.terms == other.terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self.terms.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono in sorted(self.terms, key=repr):
            coeff = self.terms[mono]
            body = "*".join(str(g) for g in mono) if mono else "1"
            parts.append(body if coeff == 1 else f"{coeff}*{body}")
        return " + ".join(parts)

    def monomials(self) -> Iterable[Monomial]:
        """Each monomial repeated per its coefficient (enumeration order)."""
        for mono in sorted(self.terms, key=repr):
            for _ in range(self.terms[mono]):
                yield mono

    def total_terms(self) -> int:
        """Number of summands counted with multiplicity."""
        return sum(self.terms.values())


class FreeSemiring(Semiring):
    """``F_A``: sums of unordered sequences of generators (paper §5)."""

    name = "free"

    def __init__(self):
        self.zero = Poly({})
        self.one = Poly({(): 1})

    def generator(self, ident: Hashable) -> Poly:
        """The polynomial consisting of the single generator ``ident``."""
        return Poly({(ident,): 1})

    def monomial(self, idents: Iterable[Hashable], coeff: int = 1) -> Poly:
        return Poly({tuple(sorted(idents, key=repr)): coeff})

    def add(self, a: Poly, b: Poly) -> Poly:
        if not a.terms:
            return b
        if not b.terms:
            return a
        terms = dict(a.terms)
        for mono, coeff in b.terms.items():
            terms[mono] = terms.get(mono, 0) + coeff
        return Poly(terms)

    def mul(self, a: Poly, b: Poly) -> Poly:
        if not a.terms or not b.terms:
            return self.zero
        terms: Dict[Monomial, int] = {}
        for mono_a, coeff_a in a.terms.items():
            for mono_b, coeff_b in b.terms.items():
                merged = tuple(sorted(mono_a + mono_b, key=repr))
                terms[merged] = terms.get(merged, 0) + coeff_a * coeff_b
        return Poly(terms)

    def scale(self, n: int, a: Poly) -> Poly:
        if n <= 0 or not a.terms:
            return self.zero
        return Poly({mono: n * coeff for mono, coeff in a.terms.items()})

    def coerce(self, value: Any) -> Poly:
        if isinstance(value, Poly):
            return value
        if isinstance(value, bool):
            return self.one if value else self.zero
        if isinstance(value, int):
            return self.scale(value, self.one) if value > 0 else self.zero
        raise TypeError(f"cannot coerce {value!r} into the free semiring")

    def support(self, a: Poly) -> bool:
        """The canonical homomorphism ``F_A -> B`` (0 -> False, else True)."""
        return bool(a.terms)

    def evaluate(self, a: Poly, assignment: Mapping[Hashable, Any],
                 target: Semiring) -> Any:
        """Apply the universal property: map generators via ``assignment``
        and evaluate in ``target`` — provenance specialisation (Green et al.).
        """
        total = target.zero
        for mono, coeff in a.terms.items():
            prod = target.prod(assignment[g] for g in mono)
            total = target.add(total, target.scale(coeff, prod))
        return total
