"""Finite semirings from Cayley tables, and the lasso arithmetic of Lemma 38.

For a finite semiring the sequence ``s, 2*s, 3*s, ...`` of additive multiples
is eventually periodic: a path (the "lasso" stem) followed by a cycle that
forms a cyclic subgroup of ``(S, +)`` (Claim 2 in the paper's appendix).
:class:`ScalarMultiplier` precomputes stem and cycle so that ``n * s`` is
answered in constant time for arbitrarily large ``n`` — the key step that
makes the finite-semiring permanent of Lemma 18 maintainable in O(1).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Sequence, Tuple

from .base import Semiring


class TableSemiring(Semiring):
    """A finite semiring given explicitly by its addition/multiplication tables.

    ``add_table`` and ``mul_table`` map pairs of elements to elements.
    The constructor validates the tables against the semiring axioms, so a
    :class:`TableSemiring` is correct by construction.
    """

    is_finite = True

    def __init__(self, elements: Sequence[Hashable],
                 add_table: Mapping[Tuple[Any, Any], Any],
                 mul_table: Mapping[Tuple[Any, Any], Any],
                 zero: Any, one: Any, name: str = "table",
                 validate: bool = True):
        self._elements = list(elements)
        self._add = dict(add_table)
        self._mul = dict(mul_table)
        self.zero = zero
        self.one = one
        self.name = name
        if validate:
            from .base import check_semiring_axioms
            check_semiring_axioms(self, self._elements)

    def add(self, a: Any, b: Any) -> Any:
        return self._add[a, b]

    def mul(self, a: Any, b: Any) -> Any:
        return self._mul[a, b]

    def elements(self) -> Sequence[Any]:
        return list(self._elements)

    @classmethod
    def from_ops(cls, elements: Sequence[Hashable], add, mul, zero, one,
                 name: str = "table") -> "TableSemiring":
        """Tabulate Python functions ``add``/``mul`` over ``elements``."""
        add_table = {(a, b): add(a, b) for a in elements for b in elements}
        mul_table = {(a, b): mul(a, b) for a in elements for b in elements}
        return cls(elements, add_table, mul_table, zero, one, name)


def saturating_counter_semiring(cap: int) -> TableSemiring:
    """The semiring ``({0..cap}, +sat, *sat)`` of counters saturating at ``cap``.

    A genuinely non-ring finite semiring whose additive structure has a stem
    of length ``cap`` and a trivial cycle — the extreme case for lasso
    arithmetic.
    """
    elements = list(range(cap + 1))
    return TableSemiring.from_ops(
        elements,
        add=lambda a, b: min(a + b, cap),
        mul=lambda a, b: min(a * b, cap),
        zero=0, one=1, name=f"sat-{cap}")


class ScalarMultiplier:
    """Constant-time ``n * s`` for one fixed element of a finite semiring.

    Walks ``s, s+s, s+s+s, ...`` until a repeat; stores the stem and the
    cycle.  ``n * s`` for ``n >= 1`` is then a table lookup at index
    ``stem + (n - 1 - stem) mod cycle`` (0-based over the multiples list).
    """

    def __init__(self, sr: Semiring, s: Any):
        self.sr = sr
        self.element = s
        multiples: List[Any] = []  # multiples[i] == (i+1) * s
        seen: Dict[Any, int] = {}
        current = s
        while current not in seen:
            seen[current] = len(multiples)
            multiples.append(current)
            current = sr.add(current, s)
        self.multiples = multiples
        self.stem = seen[current]          # index where the cycle starts
        self.cycle = len(multiples) - self.stem

    def times(self, n: int) -> Any:
        """Return ``n * s`` (``n <= 0`` gives the semiring zero)."""
        if n <= 0:
            return self.sr.zero
        index = n - 1
        if index < len(self.multiples):
            return self.multiples[index]
        return self.multiples[self.stem + (index - self.stem) % self.cycle]


class LassoArithmetic:
    """Cache of :class:`ScalarMultiplier` objects per element of a semiring."""

    def __init__(self, sr: Semiring):
        self.sr = sr
        self._cache: Dict[Any, ScalarMultiplier] = {}

    def scale(self, n: int, s: Any) -> Any:
        if n <= 0 or self.sr.is_zero(s):
            return self.sr.zero if n <= 0 else s if n == 1 else self.sr.zero
        try:
            mult = self._cache[s]
        except KeyError:
            mult = self._cache[s] = ScalarMultiplier(self.sr, s)
        return mult.times(n)
