"""Commutative semirings: the algebraic substrate of the whole framework.

The paper evaluates one and the same circuit in many semirings (boolean for
model checking, (N,+,*) for counting, tropical for optimisation, the free
semiring for provenance).  A :class:`Semiring` object packages the carrier
operations together with the capability flags the algorithms dispatch on:

* ``is_ring`` -- additive inverses exist, enabling the inclusion-exclusion
  permanent of Lemma 15 (constant-time updates);
* ``is_finite`` -- the carrier is finite, enabling the column-type counting
  permanent of Lemma 18 (constant-time updates, lasso arithmetic for ``n*s``).

Elements are plain Python objects; a semiring never wraps them, it only
provides the operations.  This keeps hot loops allocation-free.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Sequence


class Semiring:
    """A commutative semiring ``(S, +, *, 0, 1)``.

    Subclasses must provide :attr:`zero`, :attr:`one`, :meth:`add` and
    :meth:`mul`.  ``+`` and ``*`` are commutative and associative, ``*``
    distributes over ``+``, and ``0 * s == 0`` for every ``s``.
    """

    #: Human-readable name used in reprs, benchmark tables and error messages.
    name: str = "semiring"

    #: True when additive inverses exist (see :meth:`neg`).
    is_ring: bool = False

    #: True when the carrier is finite (see :meth:`elements`).
    is_finite: bool = False

    #: True when ``+`` is declared commutative and associative, so partial
    #: aggregates may be folded in *any* order — micro-batch coalescing and
    #: cross-shard ``⊕``-merge (``repro.cluster``) both reorder additions
    #: freely.  Every commutative semiring satisfies this by definition;
    #: the flag exists so experimental carriers that bend the axioms (e.g.
    #: order-sensitive accumulators built on :class:`TableSemiring`'s
    #: machinery) can opt out and be *refused* by the serving layers
    #: instead of silently merged wrong.
    is_mergeable: bool = True

    zero: Any = None
    one: Any = None

    def add(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def mul(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    # -- optional capabilities -------------------------------------------------

    def neg(self, a: Any) -> Any:
        """Additive inverse; only available when :attr:`is_ring` is True."""
        raise NotImplementedError(f"{self.name} is not a ring")

    def sub(self, a: Any, b: Any) -> Any:
        """``a - b``; only available when :attr:`is_ring` is True."""
        return self.add(a, self.neg(b))

    def elements(self) -> Sequence[Any]:
        """All carrier elements; only available when :attr:`is_finite` is True."""
        raise NotImplementedError(f"{self.name} is not finite")

    # -- derived helpers -------------------------------------------------------

    def sum(self, items: Iterable[Any]) -> Any:
        """Fold ``+`` over ``items`` (empty sum is :attr:`zero`)."""
        acc = self.zero
        for item in items:
            acc = self.add(acc, item)
        return acc

    def prod(self, items: Iterable[Any]) -> Any:
        """Fold ``*`` over ``items`` (empty product is :attr:`one`)."""
        acc = self.one
        for item in items:
            acc = self.mul(acc, item)
        return acc

    def scale(self, n: int, a: Any) -> Any:
        """The ``n``-fold sum ``a + ... + a`` (``n <= 0`` gives zero).

        Rings override this with direct multiplication; finite semirings use
        lasso arithmetic (Lemma 38).  The default doubles, which is enough
        for the small scalars arising in query compilation.
        """
        if n <= 0:
            return self.zero
        result = self.zero
        addend = a
        while n:
            if n & 1:
                result = self.add(result, addend)
            n >>= 1
            if n:
                addend = self.add(addend, addend)
        return result

    def eq(self, a: Any, b: Any) -> bool:
        """Equality of carrier elements (overridable, e.g. float tolerance)."""
        return a == b

    def is_zero(self, a: Any) -> bool:
        return self.eq(a, self.zero)

    def coerce(self, value: Any) -> Any:
        """Interpret a generic constant (``0``/``1``/bool/int) in this semiring.

        Circuits store constants as small integers so the same circuit can be
        replayed in any semiring; ``coerce`` maps them into the carrier as
        ``value``-fold sums of :attr:`one`.
        """
        if isinstance(value, bool):
            return self.one if value else self.zero
        if isinstance(value, int):
            if value >= 0:
                return self.scale(value, self.one)
            if self.is_ring:
                return self.neg(self.scale(-value, self.one))
            raise ValueError(f"cannot coerce negative {value} into {self.name}")
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Semiring {self.name}>"


class Homomorphism:
    """A semiring homomorphism ``h : source -> target``.

    Homomorphisms commute with permanents (used in Lemma 23: the support map
    ``F_A -> B`` turns enumerator permanents into boolean matching tests).
    """

    def __init__(self, source: Semiring, target: Semiring,
                 fn: Callable[[Any], Any], name: str = "hom"):
        self.source = source
        self.target = target
        self.fn = fn
        self.name = name

    def __call__(self, value: Any) -> Any:
        return self.fn(value)

    def check_on(self, samples: Sequence[Any]) -> None:
        """Assert the homomorphism laws on a finite sample (test helper)."""
        src, tgt, h = self.source, self.target, self.fn
        assert tgt.eq(h(src.zero), tgt.zero), f"{self.name}: h(0) != 0"
        assert tgt.eq(h(src.one), tgt.one), f"{self.name}: h(1) != 1"
        for a, b in itertools.product(samples, repeat=2):
            assert tgt.eq(h(src.add(a, b)), tgt.add(h(a), h(b)))
            assert tgt.eq(h(src.mul(a, b)), tgt.mul(h(a), h(b)))


def check_semiring_axioms(sr: Semiring, samples: Sequence[Any]) -> None:
    """Assert all commutative-semiring axioms on a finite sample.

    Used by the test suite (including hypothesis-generated samples) to
    validate every concrete semiring and every user-supplied table semiring.
    """
    eq, add, mul = sr.eq, sr.add, sr.mul
    zero, one = sr.zero, sr.one
    for a in samples:
        assert eq(add(a, zero), a), f"{sr.name}: a+0 != a for {a!r}"
        assert eq(mul(a, one), a), f"{sr.name}: a*1 != a for {a!r}"
        assert eq(mul(a, zero), zero), f"{sr.name}: a*0 != 0 for {a!r}"
    for a, b in itertools.product(samples, repeat=2):
        assert eq(add(a, b), add(b, a)), f"{sr.name}: + not commutative"
        assert eq(mul(a, b), mul(b, a)), f"{sr.name}: * not commutative"
    for a, b, c in itertools.product(samples, repeat=3):
        assert eq(add(add(a, b), c), add(a, add(b, c))), f"{sr.name}: + not associative"
        assert eq(mul(mul(a, b), c), mul(a, mul(b, c))), f"{sr.name}: * not associative"
        assert eq(mul(a, add(b, c)), add(mul(a, b), mul(a, c))), \
            f"{sr.name}: * does not distribute over +"
    if sr.is_ring:
        for a in samples:
            assert eq(add(a, sr.neg(a)), zero), f"{sr.name}: a + (-a) != 0"
