"""Commutative semirings (system S1 of DESIGN.md).

The framework evaluates the same compiled circuit in many semirings; this
package provides the carriers the paper uses plus validation helpers.
"""

from .base import Homomorphism, Semiring, check_semiring_axioms
from .boolean import BooleanSemiring, SetAlgebra
from .finite import (LassoArithmetic, ScalarMultiplier, TableSemiring,
                     saturating_counter_semiring)
from .numeric import (FloatField, IntegerRing, ModularRing, NaturalSemiring,
                      RationalField)
from .product import ProductSemiring
from .provenance import FreeSemiring, Poly
from .registry import (SEMIRING_REGISTRY, SemiringSpec, ensure_mergeable,
                       register_semiring, resolve_semiring)
from .tropical import INF, BoundedMinMax, MaxPlus, MinMax, MinPlus

#: Shared default instances (all semirings here are stateless).
BOOLEAN = BooleanSemiring()
NATURAL = NaturalSemiring()
INTEGER = IntegerRing()
RATIONAL = RationalField()
FLOAT = FloatField()
MIN_PLUS = MinPlus()
MAX_PLUS = MaxPlus()
MIN_MAX = MinMax()

__all__ = [
    "Semiring", "Homomorphism", "check_semiring_axioms",
    "SemiringSpec", "SEMIRING_REGISTRY", "register_semiring",
    "resolve_semiring", "ensure_mergeable",
    "BooleanSemiring", "SetAlgebra",
    "TableSemiring", "saturating_counter_semiring",
    "ScalarMultiplier", "LassoArithmetic",
    "NaturalSemiring", "IntegerRing", "RationalField", "FloatField",
    "ModularRing", "ProductSemiring", "FreeSemiring", "Poly",
    "MinPlus", "MaxPlus", "MinMax", "BoundedMinMax", "INF",
    "BOOLEAN", "NATURAL", "INTEGER", "RATIONAL", "FLOAT",
    "MIN_PLUS", "MAX_PLUS", "MIN_MAX",
]
