"""The semiring registry: named factories plus serving capability flags.

The serving layers dispatch on *capabilities*, not concrete classes:
micro-batch coalescing (:class:`repro.serve.QueryService`) and
cross-shard ``⊕``-merge (:class:`repro.cluster.ClusterService`) both
fold partial aggregates in an order the caller never chose, which is
only sound when the semiring's addition is commutative and associative.
Every commutative semiring is, by definition — but the framework admits
user-built carriers (:class:`~repro.semirings.TableSemiring` takes
arbitrary operation tables) whose ``+`` may bend the axioms, and those
must be *refused* at service construction, not merged wrong at runtime.

:func:`ensure_mergeable` is that refusal seam; the registry itself maps
stable names to factories with their declared flags, so tools (CLI
benches, config files, the plan-store corpus) can name semirings without
importing their classes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .base import Semiring
from .boolean import BooleanSemiring, SetAlgebra
from .finite import saturating_counter_semiring
from .numeric import (FloatField, IntegerRing, ModularRing, NaturalSemiring,
                      RationalField)
from .product import ProductSemiring
from .tropical import BoundedMinMax, MaxPlus, MinMax, MinPlus

__all__ = ["SemiringSpec", "SEMIRING_REGISTRY", "register_semiring",
           "resolve_semiring", "ensure_mergeable"]


class SemiringSpec:
    """One registry entry: a factory plus its serving capability flags."""

    __slots__ = ("name", "factory", "is_mergeable")

    def __init__(self, name: str, factory: Callable[[], Semiring],
                 is_mergeable: bool = True):
        self.name = name
        self.factory = factory
        self.is_mergeable = is_mergeable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SemiringSpec {self.name!r} "
                f"mergeable={self.is_mergeable}>")


#: name -> :class:`SemiringSpec` for every shipped semiring family.
SEMIRING_REGISTRY: Dict[str, SemiringSpec] = {}


def register_semiring(name: str, factory: Callable[[], Semiring], *,
                      is_mergeable: bool = True,
                      replace: bool = False) -> SemiringSpec:
    """Register a named semiring factory with its capability flags.

    ``is_mergeable`` declares the addition commutative/associative so
    shard merges and micro-batch reorderings are sound; registering an
    existing name without ``replace=True`` fails loudly.
    """
    if name in SEMIRING_REGISTRY and not replace:
        raise ValueError(f"semiring {name!r} is already registered; pass "
                         f"replace=True to override")
    spec = SemiringSpec(name, factory, is_mergeable)
    SEMIRING_REGISTRY[name] = spec
    return spec


def resolve_semiring(name: str) -> Semiring:
    """Instantiate the registered semiring named ``name``."""
    try:
        spec = SEMIRING_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SEMIRING_REGISTRY))
        raise KeyError(f"unknown semiring {name!r}; registered: {known}") \
            from None
    sr = spec.factory()
    if getattr(sr, "is_mergeable", True) != spec.is_mergeable:
        # The instance flag is authoritative for dispatch; keep the
        # registry honest rather than shipping contradictory metadata.
        sr.is_mergeable = spec.is_mergeable
    return sr


def ensure_mergeable(sr: Semiring,
                     context: Optional[str] = None) -> Semiring:
    """Refuse a semiring whose ``⊕`` is not declared safe to reorder.

    The serving layers fold partial aggregates in arrival order
    (micro-batches) or shard order (cluster merge); a semiring that has
    not declared its addition commutative/associative
    (``is_mergeable``) would be merged in an order the query never
    specified — refused here, eagerly, at service construction.
    """
    if getattr(sr, "is_mergeable", True):
        return sr
    where = f" for {context}" if context else ""
    raise ValueError(
        f"semiring {getattr(sr, 'name', sr)!r} does not declare its "
        f"addition commutative/associative (is_mergeable=False); "
        f"partial-aggregate merge{where} would fold ⊕ in an order the "
        f"query never specified — use a mergeable semiring or evaluate "
        f"through PreparedQuery directly")


def _register_shipped() -> None:
    """The shipped semiring families, all honestly commutative."""
    entries: Dict[str, Callable[[], Semiring]] = {
        "B": BooleanSemiring,
        "N": NaturalSemiring,
        "Z": IntegerRing,
        "Q": RationalField,
        "float": FloatField,
        "min-plus": MinPlus,
        "max-plus": MaxPlus,
        "min-max": MinMax,
        "min-max-3": lambda: BoundedMinMax(3),
        "Z_7": lambda: ModularRing(7),
        "sat-4": lambda: saturating_counter_semiring(4),
        "set-algebra": lambda: SetAlgebra(frozenset("abc")),
        "N x B": lambda: ProductSemiring(NaturalSemiring(),
                                         BooleanSemiring()),
    }
    for name, factory in entries.items():
        register_semiring(name, factory)


_register_shipped()
