"""Compile-plan cache: one Theorem 6 compilation, many consumers.

Compilation (normalize, low-treedepth coloring, forest encoding, the
forest compiler, the optimizer pass pipeline, the layer schedule) is the
expensive linear-time preprocessing the paper amortizes; everything after
it is fast.  :class:`PlanCache` memoizes whole compilations keyed by
:func:`repro.core.plan_cache_key` — (structure content fingerprint,
expression repr, dynamic relations, optimize flag) — so repeated
workloads over content-equal structures skip compilation entirely.

Entries are stored as pristine templates and handed out via
:meth:`CompiledQuery.rebind`, which shares the immutable circuit and
layer schedule but copies the mutable update state (recorded inputs,
forest labels), so consumers can update weights and toggle dynamic
relations without aliasing each other.  Thread-safe; bounded LRU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class PlanCache:
    """Bounded, thread-safe LRU of compiled-plan templates.

    Satisfies the ``plan_cache`` protocol of
    :func:`repro.core.compile_structure_query` (``lookup``/``store``);
    pass one instance to many :class:`~repro.engine.WeightedQueryEngine`
    or :class:`~repro.serve.QueryService` constructions to share plans
    process-wide.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> Optional[Any]:
        """The cached plan template for ``key``, or ``None`` (LRU touch)."""
        with self._lock:
            template = self._entries.get(key)
            if template is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return template

    def store(self, key: Hashable, plan: Any) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"size": len(self._entries), "maxsize": self.maxsize,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"<PlanCache size={s['size']}/{s['maxsize']} "
                f"hits={s['hits']} misses={s['misses']}>")
