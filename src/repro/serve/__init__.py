"""Serving layer (system S9): batching, caching and concurrency composed.

``repro.serve`` is the bridge from "fast kernel" to "system under load":
:class:`QueryService` coalesces concurrent point queries into
micro-batches dispatched through the vectorized batched evaluator,
:class:`PlanCache` amortizes one Theorem 6 compilation across engines
and services, and :class:`ResultCache` memoizes point-query results with
epoch-precise invalidation driven by the dynamic evaluator's
touched-gate reporting.
"""

from .plan_cache import PlanCache
from .plan_store import PlanStore
from .result_cache import MISS, ResultCache, ScopedResultCache
from .service import QueryService

__all__ = ["QueryService", "PlanCache", "PlanStore", "ResultCache",
           "ScopedResultCache", "MISS"]
