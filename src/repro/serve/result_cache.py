"""Epoch-tagged LRU cache for point-query results.

A point query ``f(a)`` over a fixed engine state is a pure function of
the argument tuple, so results are cacheable until the state changes.
Invalidation is driven by :class:`~repro.core.DynamicQuery`'s
touched-gate reporting: every effective ``update_weight``/``set_relation``
(one that recomputes at least one gate) advances the service *epoch*,
and entries are tagged with the epoch they were computed under — a
lookup at a later epoch misses and evicts the stale entry lazily.  An
update that touches zero gates (a no-op write of an unchanged value, or
a write to an input the circuit never reads) provably changes no query
result and leaves the cache warm.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterable, Tuple

#: Sentinel returned by :meth:`ResultCache.get` on a miss (``None`` is a
#: legitimate carrier value in user semirings).
MISS = object()


class ResultCache:
    """Bounded, thread-safe LRU of ``(epoch, value)`` entries."""

    MISS = MISS

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Tuple[int, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale = 0

    def get(self, key: Hashable, epoch: int) -> Any:
        """The cached value for ``key`` at ``epoch``, or :data:`MISS`.

        An entry tagged with an older epoch counts as a miss and is
        evicted on the spot (lazy invalidation: one epoch bump makes the
        whole cache stale without walking it).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return MISS
            if entry[0] != epoch:
                del self._entries[key]
                self.stale += 1
                self.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]

    def put(self, key: Hashable, value: Any, epoch: int) -> None:
        with self._lock:
            self._entries[key] = (epoch, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list:
        """A snapshot of the cached keys (any epoch, LRU order)."""
        with self._lock:
            return list(self._entries)

    def retag(self, key: Hashable, from_epoch: int, to_epoch: int) -> bool:
        """Carry one entry across an epoch bump: if ``key`` is cached
        under exactly ``from_epoch``, tag it ``to_epoch`` and return
        True.  The conditional matters — an entry from an even older
        epoch may have been invalidated by an *earlier* update and must
        not be resurrected.  This is the fine-grained invalidation hook:
        after an effective update advances the epoch, the updater retags
        the entries its change provably cannot affect, so only touched
        results go stale."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry[0] != from_epoch:
                return False
            self._entries[key] = (to_epoch, entry[1])
            return True

    def retag_many(self, keys: Iterable[Hashable],
                   from_epoch: int, to_epoch: int) -> int:
        """Bulk :meth:`retag` under one lock round; returns how many
        entries were carried over.  A write stream retags every
        provably-unaffected entry after each effective update, so the
        per-entry lock/unlock of N ``retag`` calls is hot-path overhead
        worth batching away."""
        carried = 0
        with self._lock:
            for key in keys:
                entry = self._entries.get(key)
                if entry is not None and entry[0] == from_epoch:
                    self._entries[key] = (to_epoch, entry[1])
                    carried += 1
        return carried

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"size": len(self._entries), "maxsize": self.maxsize,
                    "hits": self.hits, "misses": self.misses,
                    "stale": self.stale}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"<ResultCache size={s['size']}/{s['maxsize']} "
                f"hits={s['hits']} misses={s['misses']} stale={s['stale']}>")

    # -- scoped views ------------------------------------------------------------

    def scoped(self, namespace: Hashable) -> "ScopedResultCache":
        """A namespaced view of this cache: keys are transparently
        prefixed with ``namespace``, so many consumers (one per prepared
        query / service) share a single LRU memory budget without their
        argument-tuple keys colliding."""
        return ScopedResultCache(self, namespace)

    def clear_scope(self, namespace: Hashable) -> int:
        """Drop every entry of one scope; returns how many were dropped."""
        with self._lock:
            doomed = [key for key in self._entries
                      if isinstance(key, tuple) and key
                      and key[0] == namespace]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def scope_keys(self, namespace: Hashable) -> list:
        """The inner keys cached under one scope (any epoch)."""
        with self._lock:
            return [key[1] for key in self._entries
                    if isinstance(key, tuple) and len(key) == 2
                    and key[0] == namespace]


class ScopedResultCache:
    """A namespaced view of a shared :class:`ResultCache`.

    Satisfies the cache protocol :class:`~repro.serve.QueryService` and
    the facade's bound point queries consume (``get``/``put``/``stats``/
    ``clear``), storing entries under ``(namespace, key)`` in the parent.
    Hit/miss counters are tracked per scope; capacity, eviction and the
    epoch semantics belong to the parent.
    """

    MISS = MISS

    def __init__(self, parent: ResultCache, namespace: Hashable) -> None:
        self.parent = parent
        self.namespace = namespace
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, epoch: int) -> Any:
        value = self.parent.get((self.namespace, key), epoch)
        with self._lock:
            if value is MISS:
                self.misses += 1
            else:
                self.hits += 1
        return value

    def put(self, key: Hashable, value: Any, epoch: int) -> None:
        self.parent.put((self.namespace, key), value, epoch)

    def clear(self) -> None:
        self.parent.clear_scope(self.namespace)

    def keys(self) -> list:
        """This scope's cached inner keys (any epoch)."""
        return self.parent.scope_keys(self.namespace)

    def retag(self, key: Hashable, from_epoch: int, to_epoch: int) -> bool:
        """Conditional epoch carry-over (see :meth:`ResultCache.retag`)."""
        return self.parent.retag((self.namespace, key), from_epoch, to_epoch)

    def retag_many(self, keys: Iterable[Hashable],
                   from_epoch: int, to_epoch: int) -> int:
        """Bulk carry-over (see :meth:`ResultCache.retag_many`)."""
        return self.parent.retag_many(
            [(self.namespace, key) for key in keys], from_epoch, to_epoch)

    def stats(self) -> Dict[str, int]:
        parent = self.parent.stats()
        with self._lock:
            return {"size": parent["size"], "maxsize": parent["maxsize"],
                    "hits": self.hits, "misses": self.misses,
                    "shared": True}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ScopedResultCache ns={self.namespace!r} "
                f"hits={self.hits} misses={self.misses}>")
