"""PlanStore: the persistent on-disk tier under the in-memory PlanCache.

One Theorem 6 compilation takes seconds; loading its serialized plan
takes milliseconds.  :class:`PlanStore` persists compiled plans to a
directory, keyed by :func:`repro.core.plan_cache_key` — the same
(structure fingerprint, expression repr, dynamic relations, optimize)
tuple the in-memory cache uses — so a *fresh process* (a serving
worker, a warm CI runner, a second ``Database`` on the same path) loads
instead of recompiling.

Robustness contract:

* **atomic writes** — each entry is written to a unique temp file and
  ``os.replace``-d into place, so readers never see a torn entry and
  concurrent writers of the same key resolve last-writer-wins;
* **versioned** — entries carry the plan-format and library versions
  (:mod:`repro.circuits.serialize`); a mismatch is a miss and the stale
  file is removed;
* **corruption-tolerant** — a truncated/bit-flipped/garbage entry is a
  counted miss (and removed), never an exception to the caller;
* **verified** — every deserialized plan passes the full IR
  well-formedness contract (:func:`repro.analysis.verify_plan`) before
  it is returned; a plan that decodes but violates an invariant (a
  tampered gate id, a reordered layer, a dropped state field) is a
  counted ``rejected`` miss, removed like any other corrupt entry;
* **bounded** — an LRU sweep (by file mtime; hits refresh it) caps the
  entry count and total bytes;
* **no pickle** — the format is data-only JSON in a checksummed binary
  container; loading a store cannot execute code (though a *tampered*
  store can alter answers — point the path at a trusted directory).

Plans whose recorded values fall outside the serializable vocabulary
(e.g. free-semiring polynomials as selector zeros) are skipped on save,
also without error — the store is an accelerator, never a gate.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from typing import Any, Dict, Hashable, Optional

from ..analysis.verify import PlanVerifyError, verify_plan
from ..circuits.serialize import (PlanNotSerializable, PlanStaleError,
                                  dump_plan_bytes, encode_atom,
                                  load_plan_bytes)

_ENTRY_PREFIX = "plan-"
_ENTRY_SUFFIX = ".rpln"


class PlanStore:
    """A disk-backed store of serialized compiled plans.

    ``path`` is created if missing.  ``max_entries``/``max_bytes`` bound
    the store; the oldest entries (by mtime — refreshed on every hit)
    are evicted after each save.  Thread-safe; multiple processes may
    share one directory (writes are atomic, loads tolerate races).

    Satisfies the ``plan_store`` protocol of
    :func:`repro.core._compile_structure_query` (``load``/``save``).
    """

    def __init__(self, path: Any, max_entries: int = 256,
                 max_bytes: int = 512 * 1024 * 1024):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.path = os.fspath(path)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        os.makedirs(self.path, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.rejected = 0
        self.errors = 0
        self.skips = 0
        self.saves = 0
        self.evictions = 0

    # -- keys --------------------------------------------------------------------

    def _entry_path(self, key: Hashable) -> str:
        digest = hashlib.sha256(
            json.dumps(encode_atom(key), separators=(",", ":"),
                       sort_keys=True).encode()).hexdigest()
        return os.path.join(self.path, f"{_ENTRY_PREFIX}{digest}"
                                       f"{_ENTRY_SUFFIX}")

    # -- load / save -------------------------------------------------------------

    def load(self, key: Hashable, structure: Any,
             expr: Any = None) -> Optional[Any]:
        """The stored plan for ``key``, rebuilt over ``structure`` — or
        ``None`` (a miss).  Stale or corrupt entries are removed and
        counted; no failure mode raises (bad entry → recompile)."""
        from ..core import CompiledQuery
        path = self._entry_path(key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            with self._lock:
                self.misses += 1
            return None
        try:
            state = load_plan_bytes(data)
            # The full key is embedded alongside the plan: a hash
            # collision (or a foreign file at the right name) must be a
            # miss, not a silently-wrong plan.
            if not isinstance(state, dict) or \
                    state.get("key") != encode_atom(key):
                raise PlanStaleError("stored key does not match")
            plan = CompiledQuery.from_state(state.get("plan"), structure,
                                            expr)
            # Disk bytes are untrusted: decode succeeding only means the
            # container and codec were intact.  The verifier checks the
            # IR contract itself (topological order, arities, schedule
            # coverage, recorded-input completeness) before the plan can
            # reach an evaluator.
            verify_plan(plan)
        except PlanVerifyError:
            with self._lock:
                self.rejected += 1
            self._discard(path)
            return None
        except PlanStaleError:
            with self._lock:
                self.stale += 1
            self._discard(path)
            return None
        except Exception:
            with self._lock:
                self.errors += 1
            self._discard(path)
            return None
        with self._lock:
            self.hits += 1
        try:
            os.utime(path)  # refresh the LRU clock
        except OSError:
            pass
        return plan

    def save(self, key: Hashable, plan: Any) -> bool:
        """Persist ``plan`` under ``key`` (atomic write-then-rename);
        returns whether an entry was written.  Unserializable plans are
        counted as skips; I/O failures as errors — neither raises."""
        try:
            data = dump_plan_bytes({"key": encode_atom(key),
                                    "plan": plan.to_state()})
        except PlanNotSerializable:
            with self._lock:
                self.skips += 1
            return False
        path = self._entry_path(key)
        tmp = f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except OSError:
            with self._lock:
                self.errors += 1
            self._discard(tmp)
            return False
        with self._lock:
            self.saves += 1
        self._prune()
        return True

    # -- maintenance -------------------------------------------------------------

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _entries(self) -> list:
        """``(path, mtime, size)`` for every entry file, tolerating
        concurrent deletion."""
        entries = []
        try:
            names = os.listdir(self.path)
        except OSError:
            return entries
        for name in names:
            if not (name.startswith(_ENTRY_PREFIX)
                    and name.endswith(_ENTRY_SUFFIX)):
                continue
            path = os.path.join(self.path, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            entries.append((path, info.st_mtime, info.st_size))
        return entries

    def _prune(self) -> None:
        """Evict oldest-first until within ``max_entries``/``max_bytes``."""
        entries = sorted(self._entries(), key=lambda entry: entry[1])
        total = sum(size for _, _, size in entries)
        index = 0
        while entries[index:] and (len(entries) - index > self.max_entries
                                   or total > self.max_bytes):
            path, _, size = entries[index]
            index += 1
            total -= size
            self._discard(path)
            with self._lock:
                self.evictions += 1

    def clear(self) -> None:
        for path, _, _ in self._entries():
            self._discard(path)

    def __len__(self) -> int:
        return len(self._entries())

    def stats(self) -> Dict[str, Any]:
        entries = self._entries()
        with self._lock:
            return {
                "path": self.path,
                "entries": len(entries),
                "bytes": sum(size for _, _, size in entries),
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stale": self.stale,
                "rejected": self.rejected,
                "errors": self.errors,
                "skips": self.skips,
                "saves": self.saves,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (f"<PlanStore {self.path!r} entries={s['entries']} "
                f"hits={s['hits']} misses={s['misses']} "
                f"saves={s['saves']}>")
