"""QueryService: concurrent point queries served by micro-batched sweeps.

The paper's economics are "linear preprocessing, then O_k(1) per
lookup"; the serving layer turns that into throughput under concurrent
load.  Client threads call :meth:`QueryService.query` from anywhere; the
service coalesces concurrent requests into *micro-batches* (bounded by
``max_batch_size``, with at most ``max_batch_delay`` seconds of
coalescing latency) and dispatches each batch through
``CompiledQuery.evaluate_batch`` — one vectorized sweep amortizes the
per-probe interpreter overhead over the whole batch, which is where a
naive per-query ``engine.query`` loop spends its time.

Three layers compose here:

* **micro-batching** — a FIFO request queue drained by one dispatcher
  thread per pool engine; identical argument tuples inside a batch are
  deduplicated before evaluation;
* **plan caching** — pool engines are constructed over content-equal
  snapshots of the host structure through one :class:`PlanCache`, so the
  Theorem 6 compilation is paid once for the whole pool (and reused by
  later services over equal content);
* **result caching** — an epoch-tagged :class:`ResultCache` keyed by
  argument tuple, invalidated precisely by the touched-gate reporting of
  ``update_weight``/``set_relation``: only an update that actually
  recomputes gates advances the epoch.

Updates go through the service (:meth:`update_weight` /
:meth:`set_relation`), which applies them to every pool engine under a
lock; batches already in flight may see either state — the usual serving
semantics.  Use the service as a context manager: ``close()`` drains the
accepted requests, stops the dispatchers, and closes every engine, which
strips all selector weights from the host structure.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Dict, Hashable, List, Optional, \
    Sequence, Tuple

from .._compat import warn_deprecated
from ..circuits import DEFAULT_MAX_GROUPS, validate_backend, \
    validate_exact_mode
from ..engine import WeightedQueryEngine
from ..logic.weighted import WExpr
from ..semirings import Semiring, ensure_mergeable
from ..structures import Structure
from .plan_cache import PlanCache
from .result_cache import MISS, ResultCache


class QueryService:
    """Serve concurrent point queries of one compiled weighted query.

    ``pool_size`` engines (each with its own dispatcher thread) drain a
    shared request queue; ``max_batch_size``/``max_batch_delay`` bound
    each micro-batch's size and coalescing latency; ``backend`` is
    forwarded to ``evaluate_batch`` (``"auto"`` picks the vectorized
    NumPy backend when the semiring has an array kernel).

    ``plan_cache`` defaults to a private :class:`PlanCache`; pass a
    shared instance to reuse compilations across services.  Set
    ``result_cache_size=0`` to disable result caching.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        # Direct construction is the deprecated seam; the facade builds
        # services through :meth:`_create` (see Database.serve).
        warn_deprecated("QueryService(...)", "Database.serve(expr, ...)")
        self._init(*args, **kwargs)

    @classmethod
    def _create(cls, *args, **kwargs) -> "QueryService":
        """Internal warning-free constructor (facade)."""
        service = cls.__new__(cls)
        service._init(*args, **kwargs)
        return service

    def _init(self, structure: Structure, expr: WExpr, sr: Semiring,
              dynamic_relations: Sequence[str] = (),
              free_order: Optional[Sequence[str]] = None,
              strategy: Optional[str] = None,
              optimize: bool = True,
              pool_size: int = 1,
              max_batch_size: int = 64,
              max_batch_delay: float = 0.002,
              backend: str = "auto",
              exact_mode: str = "auto",
              plan_cache: Optional[PlanCache] = None,
              plan_store: Optional[Any] = None,
              result_cache_size: int = 1024,
              result_cache: Optional[Any] = None,
              workers: Optional[int] = None,
              executor: Optional[Any] = None,
              verify: Optional[bool] = None):
        validate_backend(backend)
        validate_exact_mode(exact_mode)
        # The service folds partial aggregates in arrival order (batch
        # dedup, grouped rollups); a semiring that has not declared its
        # ⊕ commutative/associative is refused here, eagerly, rather
        # than merged in an order the query never specified.
        ensure_mergeable(sr, "QueryService micro-batch merge")
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.sr = sr
        self.backend = backend
        self.exact_mode = exact_mode
        self.max_batch_size = int(max_batch_size)
        self.max_batch_delay = float(max_batch_delay)
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        # The optional persistent tier under the in-memory cache: pool
        # engine 1 loads from disk on a cold process; engines 2..N then
        # hit the (seeded) memory cache.
        self.plan_store = plan_store
        # An explicit ``result_cache`` instance (e.g. a scoped view of a
        # Database-owned shared cache) wins over the size knob.
        if result_cache is not None:
            self.result_cache = result_cache
        else:
            self.result_cache = (ResultCache(result_cache_size)
                                 if result_cache_size else None)
        self._workers = workers
        self._executor = executor
        # Snapshot the host structure for engines 2..N *before* engine 1
        # installs its selector weights: all snapshots then share the
        # host's content fingerprint, so every pool engine resolves to
        # the same cached plan (one compilation for the whole pool).
        snapshots = [structure.copy() for _ in range(pool_size - 1)]
        self.engines: List[WeightedQueryEngine] = []
        try:
            for member in [structure] + snapshots:
                self.engines.append(WeightedQueryEngine._create(
                    member, expr, sr, dynamic_relations=dynamic_relations,
                    free_order=free_order, strategy=strategy,
                    optimize=optimize, plan_cache=self.plan_cache,
                    plan_store=plan_store, verify=verify))
        except BaseException:
            for engine in self.engines:
                engine.close()
            raise
        self.free: Tuple[str, ...] = self.engines[0].free
        self._domain = frozenset(structure.domain)
        self._domain_order = tuple(structure.domain)
        self._epoch = 0
        self._closed = False
        # Request intake is a plain list guarded by one condition: a
        # submit is a single lock-append-notify, and a dispatcher takes a
        # whole micro-batch in one slice — per-request synchronization is
        # what a serving hot path cannot afford.
        self._buffer: List[Tuple[Tuple, "Future", int]] = []
        self._intake = threading.Condition()
        self._update_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._batches = 0
        self._batched_queries = 0
        self._deduped_queries = 0
        self._largest_batch = 0
        self._group_tables = 0
        self._group_rows = 0
        self._retagged = 0
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop, args=(engine,),
                             name=f"QueryService-dispatch-{index}",
                             daemon=True)
            for index, engine in enumerate(self.engines)]
        for thread in self._dispatchers:
            thread.start()

    # -- queries ---------------------------------------------------------------

    def submit(self, *arguments) -> "Future":
        """Enqueue one point query; returns a future for its value.

        Accepts either positional arguments aligned with the free-variable
        order or a single ``{var: element}`` mapping, like
        ``WeightedQueryEngine.query``.  A result-cache hit resolves the
        future immediately without touching the queue.
        """
        self._check_open()  # a closed service must reject cache hits too
        if len(arguments) == 1 and isinstance(arguments[0], dict):
            assignment = arguments[0]
            arguments = tuple(assignment[var] for var in self.free)
        arguments = tuple(arguments)
        if len(arguments) != len(self.free):
            raise ValueError(f"expected {len(self.free)} arguments, "
                             f"got {arguments!r}")
        for element in arguments:
            if element not in self._domain:
                # Validate here, not in the dispatcher: a bad argument
                # must fail its own caller, not every request that
                # happened to share its micro-batch.
                raise KeyError(f"{element!r} is not in the structure's "
                               f"domain")
        future: "Future" = Future()
        epoch = self._epoch
        if self.result_cache is not None:
            value = self.result_cache.get(arguments, epoch)
            if value is not MISS:
                future.set_result(value)
                return future
        with self._intake:
            if self._closed:
                raise RuntimeError("service is closed")
            self._buffer.append((arguments, future, epoch))
            self._intake.notify()
        return future

    def query(self, *arguments, timeout: Optional[float] = None) -> Any:
        """``f(a)``, blocking until its micro-batch is served."""
        return self.submit(*arguments).result(timeout)

    def query_batch(self, argument_tuples: Sequence[Sequence[Hashable]],
                    timeout: Optional[float] = None) -> List[Any]:
        """A caller-assembled batch: submit all, wait for all, in order."""
        futures = [self.submit(*arguments) for arguments in argument_tuples]
        return [future.result(timeout) for future in futures]

    def group_by(self, keys: Optional[Sequence[Any]] = None, *,
                 having: Optional[Callable[[Any], bool]] = None,
                 rollup: bool = False,
                 max_groups: Optional[int] = None,
                 timeout: Optional[float] = None) -> Any:
        """All group aggregates of the served query, through the
        micro-batching pipeline, as a :class:`~repro.api.ResultTable`.

        The free variables are the grouping keys; ``keys=None``
        enumerates the domain's cartesian product over them (refused
        beyond ``max_groups``), otherwise ``keys`` lists explicit key
        valuations.  Every group is one submit — so they coalesce into
        the service's batched sweeps, and each group lands as its own
        entry in the epoch-tagged result cache (warm groups skip the
        queue entirely; an update invalidates only the touched groups,
        see :meth:`update_weight`).  ``having``/``rollup`` behave as in
        :meth:`repro.api.PreparedQuery.group_by`.
        """
        # Lazy import: repro.api pulls in repro.serve at import time —
        # the table module itself is dependency-free, but its package
        # is not.
        from ..api.table import ResultTable, apply_having, attach_rollup
        self._check_open()
        if not self.free:
            raise ValueError("group_by() needs a parameterized query "
                             "(the free variables are the grouping keys)")
        bound = DEFAULT_MAX_GROUPS if max_groups is None else max_groups
        if keys is None:
            count = len(self._domain_order) ** len(self.free)
            if count > bound:
                raise ValueError(
                    f"group_by() would enumerate {count} groups "
                    f"(|domain|^{len(self.free)}) > max_groups={bound}; "
                    f"pass explicit keys or raise max_groups")
            group_keys = [tuple(combo) for combo in itertools.product(
                self._domain_order, repeat=len(self.free))]
        else:
            normalized: List[Tuple] = []
            for item in keys:
                if isinstance(item, list):
                    item = tuple(item)
                # A tuple of the key arity is a full key; anything else
                # is a bare element of a 1-ary key (tuple-valued domain
                # elements work unwrapped).  submit() validates domain
                # membership per element.
                if isinstance(item, tuple) and len(item) == len(self.free):
                    tup = item
                elif len(self.free) == 1:
                    tup = (item,)
                else:
                    raise TypeError(
                        f"group keys must be {len(self.free)}-tuples "
                        f"aligned with free variables {self.free}; "
                        f"got {item!r}")
                normalized.append(tup)
            group_keys = list(dict.fromkeys(normalized))
        futures = [self.submit(*key) for key in group_keys]
        values = [future.result(timeout) for future in futures]
        with self._stats_lock:
            self._group_tables += 1
            self._group_rows += len(group_keys)
        out_keys, out_values = apply_having(group_keys, values, having)
        if rollup:
            all_keys, all_values = attach_rollup(group_keys, values, self.sr)
            out_keys = out_keys + all_keys[len(group_keys):]
            out_values = out_values + all_values[len(group_keys):]
        return ResultTable(self.free + ("value",), out_keys, out_values,
                           {"groups": len(group_keys)})

    # -- micro-batch dispatch ----------------------------------------------------

    def _dispatch_loop(self, engine: WeightedQueryEngine) -> None:
        while True:
            with self._intake:
                while not self._buffer and not self._closed:
                    self._intake.wait()
                if not self._buffer:
                    return  # closed and drained
                underfull = len(self._buffer) < self.max_batch_size
            if underfull and self.max_batch_delay > 0 and not self._closed:
                # Coalesce: give concurrent clients one batching window
                # to pile on.  A single sleep per batch, not per request.
                time.sleep(self.max_batch_delay)
            with self._intake:
                batch = self._buffer[:self.max_batch_size]
                del self._buffer[:self.max_batch_size]
            if batch:
                self._serve_batch(engine, batch)

    def _serve_batch(self, engine: WeightedQueryEngine, batch: List) -> None:
        # Concurrent clients often ask for the same hot keys: evaluate
        # each distinct argument tuple once per batch.
        groups: Dict[Tuple, List] = {}
        for arguments, future, epoch in batch:
            groups.setdefault(arguments, []).append((future, epoch))
        unique = list(groups)
        try:
            results = engine.query_batch(unique, backend=self.backend,
                                         workers=self._workers,
                                         executor=self._executor,
                                         exact_mode=self.exact_mode)
        except BaseException as error:  # noqa: BLE001 - delivered to callers
            for waiters in groups.values():
                for future, _ in waiters:
                    future.set_exception(error)
            return
        with self._stats_lock:
            self._batches += 1
            self._batched_queries += len(batch)
            self._deduped_queries += len(batch) - len(unique)
            self._largest_batch = max(self._largest_batch, len(batch))
        current_epoch = self._epoch
        for arguments, value in zip(unique, results):
            for future, epoch in groups[arguments]:
                if self.result_cache is not None and epoch == current_epoch:
                    # Tagged with the *submit* epoch: if an update landed
                    # since, the tag is already stale and the entry is
                    # invisible — results can only be cached too
                    # conservatively, never served across an update.
                    self.result_cache.put(arguments, value, epoch)
                future.set_result(value)

    # -- updates ----------------------------------------------------------------

    def can_absorb_weight(self, name: str, tup: Tuple) -> bool:
        """Whether :meth:`update_weight` can maintain ``name(tup)`` —
        i.e. the tuple was declared at compile time (the paper's update
        model).  Used by ``Database.update`` to pre-validate a
        transaction before mutating anything."""
        return tuple(tup) in \
            self.engines[0].compiled.structure.weights.get(name, {})

    def can_absorb_relation(self, name: str, tup: Tuple = ()) -> bool:
        """Whether :meth:`set_relation` can maintain a toggle of
        ``name(tup)``: the relation was declared dynamic at compile time
        and the tuple is a clique of the compile-time Gaifman graph
        (the Theorem 24 update model, via
        :meth:`~repro.core.CompiledQuery.can_mark`)."""
        return self.engines[0].compiled.can_mark(name, tup)

    def update_weight(self, name: str, tup: Tuple, value: Any) -> int:
        """Set ``name(tup) = value`` on every pool engine; returns gates
        touched.  An effective update (touched > 0) advances the epoch,
        lazily invalidating all cached results; a no-op write keeps the
        result cache warm."""
        self._check_open()
        tup = tuple(tup)
        with self._update_lock:
            prev_epoch = self._epoch
            touched = 0
            for engine in self.engines:
                touched = max(touched,
                              engine.update_weight(name, tup, value))
            if touched:
                self._epoch += 1
                self._retag_unaffected((("w", name, tup),), prev_epoch)
            return touched

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        """Gaifman-preserving relation toggle on every pool engine (the
        Theorem 24 update model); epoch semantics as in
        :meth:`update_weight`."""
        self._check_open()
        tup = tuple(tup)
        with self._update_lock:
            prev_epoch = self._epoch
            touched = 0
            for engine in self.engines:
                touched = max(touched,
                              engine.set_relation(name, tup, present))
            if touched:
                self._epoch += 1
                self._retag_unaffected(
                    (("dynrel", name, tup, True),
                     ("dynrel", name, tup, False)), prev_epoch)
            return touched

    def _retag_unaffected(self, update_keys: Tuple, from_epoch: int) -> None:
        """Fine-grained invalidation (``_update_lock`` held): the epoch
        bump staled every cached result; carry forward the argument
        tuples the write provably cannot reach (the circuit-level
        co-occurrence analysis of :meth:`~repro.engine.
        WeightedQueryEngine.affected_arguments`).  Any analysis failure
        leaves entries stale — always safe, never wrong."""
        if self.result_cache is None:
            return
        try:
            affected = self.engines[0].affected_arguments(update_keys)
            if affected is None:
                return
            to_epoch = self._epoch
            survivors = [
                args for args in self.result_cache.keys()
                if isinstance(args, tuple) and len(args) == len(affected)
                and not all(args[i] in affected[i]
                            for i in range(len(args)))]
            carried = self.result_cache.retag_many(
                survivors, from_epoch, to_epoch)
            with self._stats_lock:
                self._retagged += carried
        except Exception:  # noqa: BLE001 - stale-but-correct beats wrong
            return

    # -- lifecycle --------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def epoch(self) -> int:
        """The invalidation epoch (bumped by every effective update)."""
        return self._epoch

    def close(self) -> None:
        """Drain in-flight requests, stop the dispatchers, close engines.

        Requests already accepted are served before the dispatchers exit;
        new submissions raise.  Closing the engines strips all selector
        weights from the host structure (and the pool snapshots), so a
        long-lived structure served by many successive services never
        accumulates weight functions.  Idempotent."""
        with self._intake:
            already = self._closed
            self._closed = True
            self._intake.notify_all()
        if already:
            return
        for thread in self._dispatchers:
            thread.join()
        for engine in self.engines:
            engine.close()
        if self.result_cache is not None:
            # A closed service can never serve these again; a scoped
            # view of a shared cache must not keep occupying its LRU.
            self.result_cache.clear()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Serving counters plus the attached caches' statistics."""
        with self._stats_lock:
            batches = self._batches
            info: Dict[str, Any] = {
                "batches": batches,
                "batched_queries": self._batched_queries,
                "deduped_queries": self._deduped_queries,
                "largest_batch": self._largest_batch,
                "mean_batch": (round(self._batched_queries / batches, 2)
                               if batches else 0.0),
                "group_tables": self._group_tables,
                "group_rows": self._group_rows,
                "retagged": self._retagged,
            }
        # Served queries: every batched request plus every submit-time
        # result-cache hit (the cache counts those under its own lock).
        info["queries"] = info["batched_queries"] + (
            self.result_cache.stats()["hits"]
            if self.result_cache is not None else 0)
        info["epoch"] = self._epoch
        info["pool_size"] = len(self.engines)
        info["backend"] = self.backend
        info["exact_mode"] = self.exact_mode
        # Which vectorized kernel actually served the batches (and how
        # many guard trips fell back to the exact object kernel).
        kernel = self.engines[0].stats().get("exact_kernel")
        if kernel is not None:
            info["exact_kernel"] = kernel
        info["plan_cache"] = self.plan_cache.stats()
        if self.plan_store is not None:
            info["plan_store"] = self.plan_store.stats()
        if self.result_cache is not None:
            info["result_cache"] = self.result_cache.stats()
        return info

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<QueryService free={self.free} pool={len(self.engines)} "
                f"batch<={self.max_batch_size} epoch={self._epoch}>")
