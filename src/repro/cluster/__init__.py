"""repro.cluster: multi-process sharded serving of weighted queries.

The scale-out tier above :mod:`repro.serve`: one structure's domain is
partitioned by **Gaifman components** into shared-nothing shards
(:func:`shard_structure`), each served by its own worker *process* with
its own Database, plan cache and plan store
(:mod:`repro.cluster.worker`), behind an asyncio-native gateway
(:class:`ClusterService`) that routes point queries to owning shards,
fans closed and grouped queries out, and folds the partial aggregates
with the semiring ``⊕`` — exact by the disjoint-union identity, never
approximate.  Admission control (:class:`Overloaded`), request
deadlines with cancellation, and worker respawn with plan-store warm
restart are part of the serving contract.

Reach it through :meth:`repro.api.Database.serve_sharded`; the pieces
are exported here for tests and direct embedding.
"""

from .gateway import ClusterService
from .protocol import (ClusterCodecError, ClusterError, Overloaded,
                       ShardingError, WorkerCrashed, check_wire_roundtrip,
                       decode_value, encode_value)
from .sharding import (ShardPlan, check_shardable, connected_components,
                       shard_structure)

__all__ = [
    "ClusterService",
    "ClusterCodecError",
    "ClusterError",
    "Overloaded",
    "ShardingError",
    "WorkerCrashed",
    "check_wire_roundtrip",
    "decode_value",
    "encode_value",
    "ShardPlan",
    "check_shardable",
    "connected_components",
    "shard_structure",
]
