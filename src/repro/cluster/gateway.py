"""ClusterService: the asyncio-native gateway over shard workers.

The serving contract of :class:`~repro.serve.QueryService`, scaled out:
one gateway owns k shared-nothing worker *processes* (one shard
structure + one Database each, see :mod:`repro.cluster.worker`) and
serves

* ``await query(a)`` — routed to the shard owning ``a``'s component;
  arguments spanning shards resolve to ``sr.zero`` without touching a
  worker (no Gaifman-connected witness can exist, which
  :func:`~repro.cluster.sharding.check_shardable` guaranteed at
  construction);
* closed queries — fanned out to every shard and folded with the
  semiring ``⊕`` (the disjoint-union identity that makes sharding
  exact);
* ``await group_by(...)`` — each worker sweeps its own slice of the
  group domain in one batched evaluation; the gateway ``⊕``-merges the
  partial tables, zero-fills the cross-shard key combinations, and
  applies HAVING/ROLLUP exactly like the single-process table;
* ``update_weight``/``set_relation`` — routed to the owning shard *and*
  applied to the gateway's authoritative shard copies, so a respawned
  worker reloads post-update state.

Every public query has an ``await``-able form and a ``*_sync`` facade
(plain blocking on the same futures) — the gateway itself owns no event
loop; its async methods await loop-agnostic futures resolved by
per-worker dispatcher threads, so it embeds in any host loop without a
thread hop.

**Admission control**: a gateway-wide pending cap and a per-client
in-flight cap, both enforced at submit; exceeding either sheds the
request with a typed :class:`~repro.cluster.Overloaded` instead of
queueing without bound.  **Robustness**: per-request deadlines with
cancellation (a timed-out request still in a queue is skipped, never
evaluated), worker-death detection on every pipe round trip with
automatic respawn (plan-store warm restart: the replacement loads its
shard's compiled plan from disk) and retry of the interrupted batch,
and drain-on-close (accepted requests are served; the workers then shut
down cleanly).

Micro-batching needs no timer here: while a dispatcher waits out one
round trip, new requests pile into its buffer and ship as the next
batch — the IPC latency *is* the coalescing window (group commit).
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import threading
import time
from concurrent.futures import Future
# Distinct from the builtin before Python 3.11 (an alias from 3.11 on);
# bound here so _wait re-raises the uniform builtin TimeoutError.
from concurrent.futures import TimeoutError as FuturesTimeout
from typing import Any, Callable, Dict, Hashable, List, Optional, \
    Sequence, Tuple

from ..circuits import (DEFAULT_MAX_GROUPS, validate_backend,
                        validate_cluster_options, validate_exact_mode)
from ..logic import Bracket
from ..logic.fo import Formula
from ..logic.weighted import WExpr
from ..semirings import Semiring, ensure_mergeable
from ..structures import Structure
from .protocol import (Overloaded, ShardingError, WorkerCrashed,
                       check_wire_roundtrip, encode_structure,
                       raise_reply_error, read_frame, write_frame)
from .sharding import ShardPlan, check_shardable, shard_structure
from .worker import worker_main

__all__ = ["ClusterService"]

#: Sentinel distinguishing "no timeout argument" from "timeout=None".
_UNSET = object()


def _try_set_result(future: "Future", value: Any) -> None:
    """Resolve a future that may have been cancelled by a timeout."""
    if not future.cancelled():
        try:
            future.set_result(value)
        except Exception:  # pragma: no cover - cancel/set race
            pass


def _try_set_exception(future: "Future", error: BaseException) -> None:
    if not future.cancelled():
        try:
            future.set_exception(error)
        except Exception:  # pragma: no cover - cancel/set race
            pass


class _Request:
    """One queued unit of worker work."""

    __slots__ = ("kind", "payload", "future")

    def __init__(self, kind: str, payload: Any, future: "Future"):
        self.kind = kind  # "point" | "bulk" | "group" | "update" | "stats"
        self.payload = payload
        self.future = future


class _WorkerHandle:
    """The gateway-side state of one shard worker."""

    def __init__(self, index: int):
        self.index = index
        self.process: Optional[Any] = None
        self.conn: Optional[Any] = None
        self.cond = threading.Condition()
        self.buffer: List[_Request] = []
        self.inflight = 0
        self.ids = itertools.count(1)
        self.requests = 0
        self.batches = 0
        self.respawns = 0
        self.dead = False
        self.thread: Optional[threading.Thread] = None

    def depth(self) -> int:
        with self.cond:
            return len(self.buffer) + self.inflight


class ClusterService:
    """Sharded serving of one weighted query across worker processes.

    Construct through :meth:`repro.api.Database.serve_sharded`; the
    direct constructor is for tests and embedding.  ``shards`` asks for
    k shards (the plan may hold fewer when the structure has fewer
    Gaifman components); ``policy``/``assign`` pick the placement (see
    :func:`~repro.cluster.shard_structure`).  ``max_pending`` /
    ``max_inflight_per_client`` / ``request_timeout`` are the admission
    knobs; ``plan_store_path`` gives every worker its persistent plan
    tier (and makes respawns warm).  The semiring must declare its
    ``⊕`` mergeable and its carrier must survive the data-only wire
    codec — both refused eagerly here.
    """

    def __init__(self, structure: Structure, expr: Any, sr: Semiring, *,
                 shards: int = 2,
                 params: Optional[Sequence[str]] = None,
                 dynamic: Sequence[str] = (),
                 policy: str = "hash",
                 assign: Optional[Dict[Any, int]] = None,
                 backend: str = "auto",
                 exact_mode: str = "auto",
                 optimize: bool = True,
                 max_batch_size: int = 64,
                 max_pending: int = 1024,
                 max_inflight_per_client: int = 256,
                 request_timeout: Optional[float] = None,
                 max_groups: int = DEFAULT_MAX_GROUPS,
                 plan_store_path: Optional[Any] = None,
                 verify: Optional[bool] = None,
                 max_respawns: int = 5,
                 start_method: str = "spawn"):
        validate_backend(backend)
        validate_exact_mode(exact_mode)
        validate_cluster_options(policy if assign is None else "hash",
                                 max_pending, max_inflight_per_client,
                                 request_timeout)
        ensure_mergeable(sr, "cross-shard ⊕-merge")
        # The carrier must cross the pipe: refuse un-servable semirings
        # (e.g. provenance polynomials) at construction, not mid-query.
        check_wire_roundtrip((sr.zero, sr.one))
        if isinstance(expr, Formula):
            expr = Bracket(expr)
        if not isinstance(expr, WExpr):
            raise TypeError(f"expected a weighted expression or formula, "
                            f"got {type(expr).__name__}")
        check_shardable(expr)
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.sr = sr
        self.expr = expr
        self.free: Tuple[str, ...] = (tuple(params) if params is not None
                                      else tuple(sorted(expr.free_vars())))
        unknown = set(self.free) ^ set(expr.free_vars())
        if unknown:
            raise ValueError(f"params {self.free} do not match the free "
                             f"variables {sorted(expr.free_vars())}")
        self.max_batch_size = int(max_batch_size)
        self.max_pending = int(max_pending)
        self.max_inflight_per_client = int(max_inflight_per_client)
        self.request_timeout = request_timeout
        self.max_groups = int(max_groups)
        self.max_respawns = int(max_respawns)
        self._domain = frozenset(structure.domain)
        self._domain_order = tuple(structure.domain)
        # The authoritative shard copies: updates land here first, so a
        # respawned worker reloads post-update state.
        self._plan: ShardPlan = shard_structure(structure, shards,
                                                policy=policy, assign=assign)
        self._state_lock = threading.Lock()
        self._worker_config = {
            "expr": expr, "sr": sr, "params": tuple(self.free),
            "dynamic": tuple(dynamic), "backend": backend,
            "exact_mode": exact_mode, "optimize": optimize,
            "verify": verify, "max_groups": int(max_groups),
            "plan_store_path": (str(plan_store_path)
                                if plan_store_path is not None else None),
        }
        self._mp = multiprocessing.get_context(start_method)
        self._admission_lock = threading.Lock()
        self._pending = 0
        self._client_inflight: Dict[Hashable, int] = {}
        self._stats_lock = threading.Lock()
        self._sheds = 0
        self._zero_routed = 0
        self._requests = 0
        self._merge_seconds = 0.0
        self._closed = False
        self._closing = False
        self._lifecycle = threading.Lock()
        self._facade_weight_names: Optional[Any] = None
        self._facade_relation_names: Optional[Any] = None
        self.handles: List[_WorkerHandle] = [
            _WorkerHandle(index) for index in range(len(self._plan.shards))]
        try:
            for handle in self.handles:
                self._spawn(handle)
                self._load(handle)
        except BaseException:
            self._closing = True
            for handle in self.handles:
                self._kill(handle)
            raise
        for handle in self.handles:
            handle.thread = threading.Thread(
                target=self._dispatch_loop, args=(handle,),
                name=f"ClusterService-dispatch-{handle.index}", daemon=True)
            handle.thread.start()

    # -- worker lifecycle --------------------------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent, child = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=worker_main, args=(child, self._worker_config),
            name=f"repro-cluster-shard-{handle.index}", daemon=True)
        process.start()
        # Close the parent's copy of the child end: worker death must
        # surface as EOF/broken pipe, not a silently-buffered write.
        child.close()
        handle.process = process
        handle.conn = parent

    def _load(self, handle: _WorkerHandle) -> Dict[str, Any]:
        with self._state_lock:
            payload = encode_structure(self._plan.shards[handle.index])
        message = {"op": "load", "id": next(handle.ids),
                   "structure": payload, "warm": True}
        write_frame(handle.conn, message)
        while True:
            reply = read_frame(handle.conn)
            if reply.get("id") == message["id"]:
                break
        if not reply.get("ok"):
            raise_reply_error(reply)
        return reply

    def _kill(self, handle: _WorkerHandle) -> None:
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
            handle.conn = None
        process = handle.process
        if process is not None:
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2)
            handle.process = None

    def _respawn(self, handle: _WorkerHandle,
                 cause: BaseException) -> None:
        """Replace a dead worker and reload its (current) shard state."""
        handle.respawns += 1
        if handle.respawns > self.max_respawns:
            handle.dead = True
            raise WorkerCrashed(
                f"shard {handle.index} worker died {handle.respawns} "
                f"times (last: {type(cause).__name__}: {cause}); giving "
                f"up after max_respawns={self.max_respawns}")
        self._kill(handle)
        self._spawn(handle)
        self._load(handle)  # plan-store warm restart happens in here

    def _shutdown_worker(self, handle: _WorkerHandle) -> None:
        if handle.conn is not None and not handle.dead:
            try:
                write_frame(handle.conn,
                            {"op": "shutdown", "id": next(handle.ids)})
                read_frame(handle.conn)
            except (EOFError, OSError):
                pass
        self._kill(handle)

    # -- dispatch ----------------------------------------------------------------

    def _dispatch_loop(self, handle: _WorkerHandle) -> None:
        while True:
            with handle.cond:
                while not handle.buffer and not self._closing:
                    handle.cond.wait()
                if not handle.buffer:
                    break  # closing and drained
                batch = self._take_locked(handle)
                handle.inflight = len(batch)
            if batch:
                try:
                    self._serve(handle, batch)
                finally:
                    with handle.cond:
                        handle.inflight = 0
        self._shutdown_worker(handle)

    def _take_locked(self, handle: _WorkerHandle) -> List[_Request]:
        """Pop the next batch (``handle.cond`` held): a run of point
        requests coalesces up to ``max_batch_size``; every other kind
        ships alone, in FIFO order.  Requests whose futures were
        cancelled by a timeout are dropped here — that is the
        cancellation: they never reach a worker."""
        batch: List[_Request] = []
        while handle.buffer:
            request = handle.buffer[0]
            if request.future.cancelled():
                handle.buffer.pop(0)
                continue
            if not batch:
                handle.buffer.pop(0)
                batch.append(request)
                if request.kind != "point":
                    break
                continue
            if request.kind != "point" or len(batch) >= self.max_batch_size:
                break
            handle.buffer.pop(0)
            batch.append(request)
        return batch

    def _serve(self, handle: _WorkerHandle, batch: List[_Request]) -> None:
        if handle.dead:
            error = WorkerCrashed(f"shard {handle.index} worker is gone "
                                  f"(exceeded max_respawns)")
            for request in batch:
                _try_set_exception(request.future, error)
            return
        kind = batch[0].kind
        try:
            if kind == "point":
                self._serve_points(handle, batch)
            else:
                self._serve_single(handle, batch[0])
            with handle.cond:
                handle.batches += 1
                handle.requests += len(batch)
        except BaseException as error:  # noqa: BLE001 - delivered to callers
            for request in batch:
                _try_set_exception(request.future, error)

    def _serve_points(self, handle: _WorkerHandle,
                      batch: List[_Request]) -> None:
        # Concurrent clients ask for the same hot keys: evaluate each
        # distinct argument tuple once per batch (as in QueryService).
        groups: Dict[Tuple, List["Future"]] = {}
        for request in batch:
            groups.setdefault(request.payload, []).append(request.future)
        unique = list(groups)
        reply = self._roundtrip(handle, {"op": "batch", "args": unique})
        values = reply["values"]
        for arguments, value in zip(unique, values):
            for future in groups[arguments]:
                _try_set_result(future, value)

    def _serve_single(self, handle: _WorkerHandle,
                      request: _Request) -> None:
        if request.kind == "bulk":
            reply = self._roundtrip(
                handle, {"op": "batch", "args": list(request.payload)})
            _try_set_result(request.future, reply["values"])
        elif request.kind == "group":
            reply = self._roundtrip(
                handle, {"op": "group_by", "max_groups": request.payload})
            _try_set_result(request.future,
                            (reply["keys"], reply["values"]))
        elif request.kind == "update":
            kind, name, tup, value = request.payload
            reply = self._roundtrip(
                handle, {"op": "update",
                         "writes": [[kind, name, tup, value]]})
            _try_set_result(request.future, reply["touched"])
        elif request.kind == "stats":
            reply = self._roundtrip(handle, {"op": "stats"})
            _try_set_result(request.future, reply)
        else:  # pragma: no cover - internal invariant
            _try_set_exception(request.future,
                               RuntimeError(f"unknown request kind "
                                            f"{request.kind!r}"))

    def _roundtrip(self, handle: _WorkerHandle,
                   message: Dict[str, Any]) -> Dict[str, Any]:
        """One framed request/response, respawning through worker death.

        Reads are idempotent and updates land on the authoritative copy
        before they are enqueued, so retrying the message against the
        freshly-reloaded worker is always safe.
        """
        message = dict(message)
        while True:
            message["id"] = next(handle.ids)
            try:
                write_frame(handle.conn, message)
                while True:
                    reply = read_frame(handle.conn)
                    if reply.get("id") == message["id"]:
                        break
                    # A stale reply to a request interrupted by a prior
                    # respawn; skip it and keep reading.
            except (EOFError, OSError, BrokenPipeError) as error:
                self._respawn(handle, error)
                continue
            if not reply.get("ok"):
                raise_reply_error(reply)
            return reply

    # -- admission ---------------------------------------------------------------

    def _admit(self, client: Hashable) -> None:
        with self._admission_lock:
            if self._pending >= self.max_pending:
                with self._stats_lock:
                    self._sheds += 1
                raise Overloaded(
                    f"gateway queue is full ({self._pending} pending >= "
                    f"max_pending={self.max_pending}); back off and retry",
                    scope="gateway", limit=self.max_pending)
            inflight = self._client_inflight.get(client, 0)
            if inflight >= self.max_inflight_per_client:
                with self._stats_lock:
                    self._sheds += 1
                raise Overloaded(
                    f"client {client!r} already has {inflight} requests "
                    f"in flight (max_inflight_per_client="
                    f"{self.max_inflight_per_client})",
                    scope="client", limit=self.max_inflight_per_client)
            self._pending += 1
            self._client_inflight[client] = inflight + 1

    def _release(self, client: Hashable) -> Callable[["Future"], None]:
        def release(_future: "Future") -> None:
            with self._admission_lock:
                self._pending -= 1
                remaining = self._client_inflight.get(client, 1) - 1
                if remaining > 0:
                    self._client_inflight[client] = remaining
                else:
                    self._client_inflight.pop(client, None)
        return release

    # -- submission --------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("cluster service is closed")

    def _normalize(self, arguments: Tuple) -> Tuple:
        if len(arguments) == 1 and isinstance(arguments[0], dict):
            assignment = arguments[0]
            arguments = tuple(assignment[var] for var in self.free)
        arguments = tuple(arguments)
        if len(arguments) != len(self.free):
            raise ValueError(f"expected {len(self.free)} arguments, "
                             f"got {arguments!r}")
        for element in arguments:
            if element not in self._domain:
                raise KeyError(f"{element!r} is not in the structure's "
                               f"domain")
        return arguments

    def _enqueue(self, shard: int, kind: str, payload: Any,
                 future: Optional["Future"] = None) -> "Future":
        if future is None:
            future = Future()
        handle = self.handles[shard]
        with handle.cond:
            handle.buffer.append(_Request(kind, payload, future))
            handle.cond.notify()
        return future

    def submit(self, *arguments,
               client: Hashable = "default") -> "Future":
        """Enqueue one point query; returns a future for its value.

        Admission control runs here: beyond ``max_pending`` gateway-wide
        or ``max_inflight_per_client`` for this ``client``, the request
        is shed with :class:`~repro.cluster.Overloaded` instead of
        queued.  Arguments spanning shards resolve to ``sr.zero``
        immediately (no connected witness exists); closed queries fan
        out to every shard and fold with ``⊕``.
        """
        self._check_open()
        arguments = self._normalize(arguments)
        self._admit(client)
        future: "Future" = Future()
        future.add_done_callback(self._release(client))
        with self._stats_lock:
            self._requests += 1
        if not self.free:
            self._fan_out_closed(future)
            return future
        owners = {self._plan.owner_of(element) for element in arguments}
        if len(owners) == 1:
            self._enqueue(owners.pop(), "point", arguments, future)
        else:
            # The bound elements live in different Gaifman components:
            # no connected witness can exist, so the value is the
            # semiring zero — answered at the gateway, no worker I/O.
            with self._stats_lock:
                self._zero_routed += 1
            _try_set_result(future, self.sr.zero)
        return future

    def _fan_out_closed(self, parent: "Future") -> None:
        shard_futures = [self._enqueue(index, "point", ())
                         for index in range(len(self.handles))]
        add = self.sr.add

        def combine(values: List[Any]) -> Any:
            total = self.sr.zero
            for value in values:
                total = add(total, value)
            return total

        self._merge_into(parent, shard_futures, combine)

    def _merge_into(self, parent: "Future", futures: List["Future"],
                    combine: Callable[[List[Any]], Any]) -> None:
        """Resolve ``parent`` with ``combine`` of all shard results.

        Callback-driven countdown (no waiting thread): the last shard's
        dispatcher performs the ``⊕``-merge.  The first error wins and
        fails the parent.
        """
        remaining = [len(futures)]
        results: List[Any] = [None] * len(futures)
        lock = threading.Lock()

        def arm(index: int) -> Callable[["Future"], None]:
            def on_done(fut: "Future") -> None:
                try:
                    results[index] = fut.result(0)
                except BaseException as error:  # noqa: BLE001
                    _try_set_exception(parent, error)
                    return
                with lock:
                    remaining[0] -= 1
                    last = remaining[0] == 0
                if last:
                    started = time.perf_counter()
                    try:
                        merged = combine(results)
                    except BaseException as error:  # noqa: BLE001
                        _try_set_exception(parent, error)
                        return
                    with self._stats_lock:
                        self._merge_seconds += time.perf_counter() - started
                    _try_set_result(parent, merged)
            return on_done

        for index, future in enumerate(futures):
            future.add_done_callback(arm(index))

    # -- queries (async + sync facade) -------------------------------------------

    async def query(self, *arguments, client: Hashable = "default",
                    timeout: Any = _UNSET) -> Any:
        """``f(a)``, awaitable; sheds/fails with the typed errors."""
        return await self._awaited(
            self.submit(*arguments, client=client), timeout)

    async def query_batch(self, argument_tuples: Sequence[Sequence],
                          client: Hashable = "default",
                          timeout: Any = _UNSET) -> List[Any]:
        """Submit all, await all, in order (one admission unit each)."""
        futures = [self.submit(*arguments, client=client)
                   for arguments in argument_tuples]
        return [await self._awaited(future, timeout) for future in futures]

    async def group_by(self, keys: Optional[Sequence[Any]] = None, *,
                       having: Optional[Callable[[Any], bool]] = None,
                       rollup: bool = False,
                       max_groups: Optional[int] = None,
                       client: Hashable = "default",
                       timeout: Any = _UNSET) -> Any:
        """All group aggregates, merged across shards, awaitable."""
        return await self._awaited(
            self.submit_group_by(keys, having=having, rollup=rollup,
                                 max_groups=max_groups, client=client),
            timeout)

    def query_sync(self, *arguments, client: Hashable = "default",
                   timeout: Any = _UNSET) -> Any:
        """The blocking facade of :meth:`query`."""
        return self._wait(self.submit(*arguments, client=client), timeout)

    def query_batch_sync(self, argument_tuples: Sequence[Sequence],
                         client: Hashable = "default",
                         timeout: Any = _UNSET) -> List[Any]:
        futures = [self.submit(*arguments, client=client)
                   for arguments in argument_tuples]
        return [self._wait(future, timeout) for future in futures]

    def group_by_sync(self, keys: Optional[Sequence[Any]] = None, *,
                      having: Optional[Callable[[Any], bool]] = None,
                      rollup: bool = False,
                      max_groups: Optional[int] = None,
                      client: Hashable = "default",
                      timeout: Any = _UNSET) -> Any:
        return self._wait(
            self.submit_group_by(keys, having=having, rollup=rollup,
                                 max_groups=max_groups, client=client),
            timeout)

    async def _awaited(self, future: "Future", timeout: Any) -> Any:
        deadline = self.request_timeout if timeout is _UNSET else timeout
        try:
            return await asyncio.wait_for(asyncio.wrap_future(future),
                                          deadline)
        except asyncio.TimeoutError:
            future.cancel()  # still-queued work is skipped at dispatch
            raise TimeoutError(f"cluster request timed out after "
                               f"{deadline}s") from None

    def _wait(self, future: "Future", timeout: Any) -> Any:
        deadline = self.request_timeout if timeout is _UNSET else timeout
        try:
            return future.result(deadline)
        except FuturesTimeout:
            future.cancel()
            raise TimeoutError(f"cluster request timed out after "
                               f"{deadline}s") from None

    # -- grouped aggregation -----------------------------------------------------

    def submit_group_by(self, keys: Optional[Sequence[Any]] = None, *,
                        having: Optional[Callable[[Any], bool]] = None,
                        rollup: bool = False,
                        max_groups: Optional[int] = None,
                        client: Hashable = "default") -> "Future":
        """Enqueue a grouped sweep; returns a future for its table.

        One admission unit regardless of group count: the group domain
        is bounded by ``max_groups``, not by the request caps.  With
        ``keys=None`` each worker enumerates its own domain slice (one
        batched sweep per shard); explicit keys are routed to their
        owning shards in bulk.  The merge ``⊕``-folds duplicate keys,
        zero-fills cross-shard combinations, preserves the canonical
        enumeration order, and applies HAVING/ROLLUP at the gateway.
        """
        self._check_open()
        if not self.free:
            raise ValueError("group_by() needs a parameterized query "
                             "(the free variables are the grouping keys)")
        bound = self.max_groups if max_groups is None else max_groups
        self._admit(client)
        parent: "Future" = Future()
        parent.add_done_callback(self._release(client))
        with self._stats_lock:
            self._requests += 1
        try:
            if keys is None:
                group_keys = self._enumerated_group_keys(bound)
                shard_futures = [self._enqueue(index, "group", bound)
                                 for index in range(len(self.handles))]
                combine = self._combine_enumerated(group_keys, having,
                                                   rollup)
            else:
                group_keys = self._explicit_group_keys(keys)
                shard_futures, routed, fills = \
                    self._route_explicit_keys(group_keys)
                combine = self._combine_explicit(group_keys, routed,
                                                 fills, having, rollup)
            if not shard_futures:
                # Every key was cross-shard: the table is all zeros.
                started = time.perf_counter()
                table = combine([])
                with self._stats_lock:
                    self._merge_seconds += time.perf_counter() - started
                _try_set_result(parent, table)
                return parent
            self._merge_into(parent, shard_futures, combine)
        except BaseException as error:  # noqa: BLE001 - typed to caller
            _try_set_exception(parent, error)
            raise
        return parent

    def _enumerated_group_keys(self, bound: int) -> List[Tuple]:
        count = len(self._domain_order) ** len(self.free)
        if count > bound:
            raise ValueError(
                f"group_by() would enumerate {count} groups "
                f"(|domain|^{len(self.free)}) > max_groups={bound}; "
                f"pass explicit keys or raise max_groups")
        return [tuple(combo) for combo in itertools.product(
            self._domain_order, repeat=len(self.free))]

    def _explicit_group_keys(self, keys: Sequence[Any]) -> List[Tuple]:
        normalized: List[Tuple] = []
        for item in keys:
            if isinstance(item, list):
                item = tuple(item)
            if isinstance(item, tuple) and len(item) == len(self.free):
                tup = item
            elif len(self.free) == 1:
                tup = (item,)
            else:
                raise TypeError(
                    f"group keys must be {len(self.free)}-tuples aligned "
                    f"with free variables {self.free}; got {item!r}")
            for element in tup:
                if element not in self._domain:
                    raise KeyError(f"{element!r} is not in the "
                                   f"structure's domain")
            normalized.append(tup)
        return list(dict.fromkeys(normalized))

    def _route_explicit_keys(
            self, group_keys: List[Tuple]
    ) -> Tuple[List["Future"], List[List[Tuple]], Dict[Tuple, int]]:
        by_shard: Dict[int, List[Tuple]] = {}
        fills: Dict[Tuple, int] = {}
        for key in group_keys:
            owners = {self._plan.owner_of(element) for element in key}
            if len(owners) == 1:
                by_shard.setdefault(owners.pop(), []).append(key)
            else:
                fills[key] = 1  # cross-shard: provably sr.zero
        futures: List["Future"] = []
        routed: List[List[Tuple]] = []  # aligned with futures
        for shard, shard_keys in sorted(by_shard.items()):
            futures.append(self._enqueue(shard, "bulk", shard_keys))
            routed.append(shard_keys)
        return futures, routed, fills

    def _combine_enumerated(self, group_keys: List[Tuple],
                            having: Optional[Callable[[Any], bool]],
                            rollup: bool) -> Callable[[List[Any]], Any]:
        def combine(shard_results: List[Tuple[List, List]]) -> Any:
            merged: Dict[Tuple, Any] = {}
            add = self.sr.add
            for keys_part, values_part in shard_results:
                for key, value in zip(keys_part, values_part):
                    key = tuple(key)
                    if key in merged:
                        merged[key] = add(merged[key], value)
                    else:
                        merged[key] = value
            zero = self.sr.zero
            values = [merged.get(key, zero) for key in group_keys]
            return self._build_table(group_keys, values, having, rollup)
        return combine

    def _combine_explicit(self, group_keys: List[Tuple],
                          routed: List[List[Tuple]],
                          fills: Dict[Tuple, int],
                          having: Optional[Callable[[Any], bool]],
                          rollup: bool) -> Callable[[List[Any]], Any]:
        def combine(shard_results: List[List[Any]]) -> Any:
            merged: Dict[Tuple, Any] = {}
            for shard_keys, shard_values in zip(routed, shard_results):
                for key, value in zip(shard_keys, shard_values):
                    merged[key] = value
            zero = self.sr.zero
            values = [zero if key in fills else merged[key]
                      for key in group_keys]
            return self._build_table(group_keys, values, having, rollup)
        return combine

    def _build_table(self, group_keys: List[Tuple], values: List[Any],
                     having: Optional[Callable[[Any], bool]],
                     rollup: bool) -> Any:
        # Lazy import: repro.api pulls in repro.serve at import time —
        # same cycle-dodge as QueryService.group_by.
        from ..api.table import ResultTable, apply_having, attach_rollup
        out_keys, out_values = apply_having(group_keys, values, having)
        if rollup:
            all_keys, all_values = attach_rollup(group_keys, values, self.sr)
            out_keys = out_keys + all_keys[len(group_keys):]
            out_values = out_values + all_values[len(group_keys):]
        return ResultTable(self.free + ("value",), out_keys, out_values,
                           {"groups": len(group_keys),
                            "shards": len(self.handles)})

    # -- updates -----------------------------------------------------------------

    def can_absorb_weight(self, name: str, tup: Tuple) -> bool:
        """Whether the routed write stays inside one shard.  A worker's
        prepared query absorbs any local write (recompiling lazily when
        it must); only a tuple *spanning shards* is refused — it would
        create a cross-shard Gaifman edge and break the ⊕-merge."""
        try:
            self._plan.shard_of_tuple(tuple(tup))
        except (KeyError, ShardingError):
            return False
        return True

    def can_absorb_relation(self, name: str, tup: Tuple = ()) -> bool:
        return self.can_absorb_weight(name, tup)

    def update_weight(self, name: str, tup: Tuple, value: Any) -> int:
        """Route ``name(tup) = value`` to the owning shard; returns the
        worker's touched-gate count.  The authoritative shard copy is
        updated first, so a crash-then-respawn never loses the write."""
        self._check_open()
        tup = tuple(tup)
        shard = self._plan.shard_of_tuple(tup)
        check_wire_roundtrip(value)
        with self._state_lock:
            self._plan.shards[shard].set_weight(name, tup, value)
        future = self._enqueue(shard, "update", ("w", name, tup, value))
        return future.result()

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        """Route a relation toggle to the owning shard (refused for
        cross-shard tuples, which would merge two shards' components)."""
        self._check_open()
        tup = tuple(tup)
        shard = self._plan.shard_of_tuple(tup)
        with self._state_lock:
            if present:
                self._plan.shards[shard].add_tuple(name, tup)
            else:
                structure = self._plan.shards[shard]
                if name in structure.relations:
                    structure.remove_tuple(name, tup)
        future = self._enqueue(shard, "update", ("r", name, tup, present))
        return future.result()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Drain accepted requests, stop dispatchers, shut workers down.

        New submissions raise once closing begins; requests already in
        the buffers are served first (the dispatchers exit only on
        empty), then every worker gets a clean ``shutdown`` and the
        processes are joined.  Idempotent.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
        self._closing = True
        for handle in self.handles:
            with handle.cond:
                handle.cond.notify_all()
        for handle in self.handles:
            if handle.thread is not None:
                handle.thread.join()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    async def __aenter__(self) -> "ClusterService":
        return self

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        # close() joins threads and processes; never block the host loop.
        await asyncio.to_thread(self.close)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Gateway counters: per-shard depths, sheds, respawns, merge
        time.  Local bookkeeping only — no worker round trips; see
        :meth:`worker_stats` for the workers' own view."""
        with self._stats_lock:
            info: Dict[str, Any] = {
                "shards": len(self.handles),
                "requested_shards": self._plan.requested,
                "policy": self._plan.policy,
                "components": self._plan.components,
                "requests": self._requests,
                "sheds": self._sheds,
                "zero_routed": self._zero_routed,
                "merge_seconds": round(self._merge_seconds, 6),
            }
        with self._admission_lock:
            info["pending"] = self._pending
            info["clients"] = len(self._client_inflight)
        workers = []
        respawns = 0
        for handle in self.handles:
            process = handle.process
            with handle.cond:
                depth = len(handle.buffer) + handle.inflight
                workers.append({
                    "shard": handle.index,
                    "pid": process.pid if process is not None else None,
                    "alive": (process.is_alive()
                              if process is not None else False),
                    "depth": depth,
                    "requests": handle.requests,
                    "batches": handle.batches,
                    "respawns": handle.respawns,
                    "dead": handle.dead,
                    "domain": len(self._plan.shards[handle.index].domain),
                })
            respawns += handle.respawns
        info["respawns"] = respawns
        info["workers"] = workers
        return info

    def worker_stats(self, timeout: Optional[float] = 30.0
                     ) -> List[Dict[str, Any]]:
        """Each worker's own Database statistics (one round trip per
        shard) — how tests observe plan-store warm restarts."""
        self._check_open()
        futures = [self._enqueue(index, "stats", None)
                   for index in range(len(self.handles))]
        return [future.result(timeout) for future in futures]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ClusterService free={self.free} "
                f"shards={len(self.handles)} policy={self._plan.policy} "
                f"pending={self._pending}>")
