"""The shard worker: one process, one Database, one prepared query.

Workers are **shared-nothing**: each owns its shard structure, its own
:class:`~repro.api.Database` (plan cache, result cache, epoch machinery)
and — when the gateway passes a ``plan_store_path`` — its own handle on
the persistent plan store, which is what makes a *respawned* worker
warm-start: the replacement process loads its shard's compiled plan
from disk instead of re-running the Theorem 6 pipeline.

The process entry point is :func:`worker_main`, a module-level function
so it survives the ``spawn`` start method's pickling of the target (the
gateway uses ``spawn``, not ``fork``: forking a process that already
runs gateway dispatcher threads is a deadlock lottery, and respawn
must work long after the parent became multi-threaded).

The loop is deliberately single-threaded request/response: the gateway
pipelines at the *batch* level (one micro-batch per round trip), so a
worker never needs internal concurrency — the paper's economics live in
the batched sweep, not in worker threads.  Shard state arrives through
the ``load`` message (not the spawn arguments): the gateway keeps the
authoritative copy of every shard, so a respawned worker reloads the
*current* state, routed updates included.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from .protocol import (decode_structure, error_reply, read_frame,
                       write_frame)

__all__ = ["worker_main"]


class _WorkerState:
    """The live objects of one worker process."""

    def __init__(self, config: Dict[str, Any]):
        self.config = config
        self.db: Optional[Any] = None
        self.prepared: Optional[Any] = None
        self.loads = 0

    # -- operations ------------------------------------------------------------

    def load(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """(Re)load the shard structure and prepare the served query."""
        from ..api import Database, ExecOptions
        structure = decode_structure(message["structure"])
        if self.db is not None:
            self.db.close()
        config = self.config
        options = ExecOptions(
            backend=config["backend"], exact_mode=config["exact_mode"],
            optimize=config["optimize"], verify=config["verify"],
            max_groups=config["max_groups"])
        self.db = Database(structure, options,
                           plan_store_path=config["plan_store_path"])
        self.prepared = self.db.prepare(
            config["expr"], params=config["params"] or None,
            dynamic=tuple(config["dynamic"]))
        self.loads += 1
        if message.get("warm") and structure.domain:
            # Compile now (plan-store load when warm), not on the first
            # query: a respawned worker rejoins the pool ready to serve.
            if self.prepared.params:
                probe = (structure.domain[0],) * len(self.prepared.params)
                self.prepared.batch([probe], config["sr"])
            else:
                self.prepared.value(config["sr"])
        return {"loads": self.loads, "stats": self._safe_stats()}

    def batch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Point values for a list of argument tuples, one sweep."""
        sr = self.config["sr"]
        args = [tuple(item) for item in message["args"]]
        if self.prepared.params:
            values = self.prepared.batch(args, sr)
        else:
            # A closed query has one value per epoch; every "argument"
            # (an empty tuple) maps to it.
            value = self.prepared.value(sr)
            values = [value for _ in args]
        return {"values": values}

    def group_by(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """This shard's slice of the full group domain, one sweep.

        Enumerates the cartesian product of the *shard's* domain over
        the parameters; cross-shard key combinations are the gateway's
        to fill (they are provably ``sr.zero`` for shardable queries).
        """
        params = self.prepared.params
        domain = self.db.structure.domain
        count = len(domain) ** len(params)
        bound = message["max_groups"]
        if count > bound:
            raise ValueError(f"shard group domain of {count} groups "
                             f"exceeds max_groups={bound}")
        keys = [tuple(combo) for combo in
                itertools.product(domain, repeat=len(params))]
        values = self.prepared.batch(keys, self.config["sr"])
        return {"keys": keys, "values": values}

    def update(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Apply routed writes through the worker's own update router.

        The whole batch is one ``db.update()`` transaction, so it costs
        one O(1) fingerprint reconcile at exit (none at all when every
        write was a no-op — the structure's mutation counter did not
        move).  ``effective`` reports how many writes actually changed
        shard content; the gateway and benches use it to distinguish
        no-op traffic from real deltas."""
        touched = 0
        before = self.db.structure._mutations
        with self.db.update() as tx:
            for write in message["writes"]:
                kind, name, tup = write[0], write[1], tuple(write[2])
                if kind == "w":
                    touched = max(touched,
                                  tx.set_weight(name, tup, write[3]))
                elif kind == "r":
                    touched = max(touched,
                                  tx.set_relation(name, tup, write[3]))
                else:
                    raise ValueError(f"unknown write kind {kind!r}")
        return {"touched": touched,
                "effective": self.db.structure._mutations - before}

    def stats(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"stats": self._safe_stats(), "loads": self.loads}

    def _safe_stats(self) -> Dict[str, Any]:
        """Database stats restricted to wire-codec-safe entries."""
        from .protocol import ClusterCodecError, encode_value
        if self.db is None:
            return {}
        out: Dict[str, Any] = {}
        for key, value in self.db.stats().items():
            try:
                encode_value(value)
            except ClusterCodecError:
                continue
            out[key] = value
        return out

    def close(self) -> None:
        if self.db is not None:
            self.db.close()
            self.db = None


#: op name -> handler method name (the closed protocol surface).
_OPS = {"load": "load", "batch": "batch", "group_by": "group_by",
        "update": "update", "stats": "stats"}


def worker_main(conn: Any, config: Dict[str, Any]) -> None:
    """The worker process body: framed request/response until shutdown.

    ``config`` rides the spawn arguments (multiprocessing's own
    transport) and holds the query expression, semiring, parameter
    order, dynamic relations, execution knobs and the optional plan
    store path; shard *state* arrives via ``load`` messages so respawns
    see routed updates.  Every request gets exactly one reply — results
    on success, a typed :func:`~repro.cluster.protocol.error_reply`
    otherwise — and a closed pipe (gateway death) ends the process.
    """
    state = _WorkerState(config)
    try:
        while True:
            try:
                message = read_frame(conn)
            except (EOFError, OSError):
                break  # gateway gone; nothing to reply to
            request_id = message.get("id")
            op = message.get("op")
            if op == "shutdown":
                write_frame(conn, {"id": request_id, "ok": True})
                break
            try:
                handler = _OPS[op]
            except KeyError:
                write_frame(conn, error_reply(
                    request_id, ValueError(f"unknown op {op!r}")))
                continue
            try:
                if op != "load" and state.prepared is None:
                    raise RuntimeError("worker has no structure loaded")
                reply = getattr(state, handler)(message)
            except BaseException as error:  # noqa: BLE001 - wire it back
                try:
                    write_frame(conn, error_reply(request_id, error))
                except (OSError, ValueError, TypeError):
                    break  # cannot even report; let the gateway respawn
            else:
                reply["id"] = request_id
                reply["ok"] = True
                write_frame(conn, reply)
    finally:
        state.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
