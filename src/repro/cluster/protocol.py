"""The cluster wire protocol: length-prefixed frames of tagged JSON.

Gateway and workers speak a small request/response protocol over
:func:`multiprocessing.Pipe` connections.  Every message is one
**frame**: a big-endian ``u32`` byte length followed by exactly that
many bytes of UTF-8 JSON.  The prefix makes the layout self-describing
over any byte stream (a raw socket would carry it unchanged); over
multiprocessing pipes — which already preserve message boundaries — it
doubles as a truncation/corruption check on every read.

Message payloads are **data-only**: the same discipline as the plan
store (no pickle on the wire — a compromised worker must not gain code
execution in the gateway, nor vice versa).  Values travel through
:func:`encode_value`/:func:`decode_value`, which extend the plan
serializer's tagged-atom vocabulary (scalars, tuples, sets, fractions,
bytes — every shipped semiring carrier) with one extra tag, ``"m"``,
for string-or-atom-keyed mappings, so whole request dicts and structure
snapshots ride the same closed codec.  A value outside the vocabulary
raises :class:`ClusterCodecError` at the sender — eagerly, in the
process that owns the value — never a decode surprise at the receiver.

Typed errors for the serving contract live here too:
:class:`Overloaded` (admission control shed the request),
:class:`WorkerCrashed` (a shard worker died and took the request's
answer with it), :class:`ShardingError` (the domain partition cannot
honor the request).
"""

from __future__ import annotations

import base64
import json
import struct
from fractions import Fraction
from typing import Any, Dict, List

from ..circuits.serialize import PlanStateError

__all__ = ["ClusterError", "ClusterCodecError", "Overloaded",
           "WorkerCrashed", "ShardingError", "encode_value", "decode_value",
           "write_frame", "read_frame", "encode_message", "decode_message"]


class ClusterError(RuntimeError):
    """Base class of every cluster-serving error."""


class ShardingError(ClusterError):
    """The domain partition cannot honor the request (a cross-shard
    tuple, an unshardable query shape, or a bad custom assignment)."""


class Overloaded(ClusterError):
    """Admission control shed the request instead of queueing it.

    Raised by the gateway when the global pending cap or the caller's
    per-client in-flight cap is exhausted — the typed signal for
    clients to back off (retry with jitter) rather than pile on.
    ``scope`` is ``"gateway"`` or ``"client"``; ``limit`` the cap that
    tripped.
    """

    def __init__(self, message: str, scope: str = "gateway",
                 limit: int = 0):
        super().__init__(message)
        self.scope = scope
        self.limit = limit


class WorkerCrashed(ClusterError):
    """A shard worker died while holding the request.

    The gateway respawns the worker and retries reads; a request that
    exhausts its retries surfaces this instead of a silent wrong/zero
    answer.
    """


class ClusterCodecError(ClusterError):
    """A value is outside the data-only wire vocabulary."""


# -- the wire value codec --------------------------------------------------------
# Same closed tagged-JSON shape as repro.circuits.serialize (scalars
# pass through; composites are tagged arrays) plus the "m" mapping tag.
# Kept as one self-contained recursion: the plan codec's atoms cannot
# contain mappings, so delegating per-branch would re-implement the
# recursion anyway.

_TUPLE, _FROZENSET, _SET, _LIST, _FRACTION, _BYTES, _MAP = \
    "t", "f", "s", "l", "q", "b", "m"


def encode_value(value: Any) -> Any:
    """Encode one wire value into the tagged-JSON vocabulary."""
    if value is None or isinstance(value, (bool, int, str, float)):
        # json emits/parses Infinity and NaN (allow_nan default), so the
        # tropical zeros survive the pipe.
        return value
    if isinstance(value, tuple):
        return [_TUPLE] + [encode_value(item) for item in value]
    if isinstance(value, list):
        return [_LIST] + [encode_value(item) for item in value]
    if isinstance(value, (frozenset, set)):
        tag = _FROZENSET if isinstance(value, frozenset) else _SET
        return [tag] + sorted((encode_value(item) for item in value),
                              key=repr)
    if isinstance(value, Fraction):
        return [_FRACTION, value.numerator, value.denominator]
    if isinstance(value, bytes):
        return [_BYTES, base64.b64encode(value).decode("ascii")]
    if isinstance(value, dict):
        out: List[Any] = [_MAP]
        for key, item in value.items():
            out.append([encode_value(key), encode_value(item)])
        return out
    raise ClusterCodecError(
        f"cannot send {type(value).__name__} value {value!r} over the "
        f"cluster wire; messages are restricted to the data-only "
        f"vocabulary (scalars, tuples, sets, fractions, mappings) — "
        f"custom carriers like the provenance Poly cannot be served "
        f"across shards")


def decode_value(value: Any) -> Any:
    """Decode one tagged-JSON wire value; unknown shapes are errors."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if not isinstance(value, list) or not value:
        raise ClusterCodecError(f"malformed wire value {value!r}")
    tag, rest = value[0], value[1:]
    if tag == _TUPLE:
        return tuple(decode_value(item) for item in rest)
    if tag == _LIST:
        return [decode_value(item) for item in rest]
    if tag == _FROZENSET:
        return frozenset(decode_value(item) for item in rest)
    if tag == _SET:
        return {decode_value(item) for item in rest}
    if tag == _FRACTION:
        if len(rest) != 2:
            raise ClusterCodecError(f"malformed wire fraction {value!r}")
        return Fraction(rest[0], rest[1])
    if tag == _BYTES:
        return base64.b64decode(rest[0])
    if tag == _MAP:
        out: Dict[Any, Any] = {}
        for pair in rest:
            if not isinstance(pair, list) or len(pair) != 2:
                raise ClusterCodecError(f"malformed wire mapping entry "
                                        f"{pair!r}")
            out[decode_value(pair[0])] = decode_value(pair[1])
        return out
    raise ClusterCodecError(f"unknown wire tag {tag!r}")


# -- framing ---------------------------------------------------------------------

#: Frame header: big-endian u32 payload byte length.
_HEADER = struct.Struct(">I")

#: Ceiling on one frame's payload (64 MiB): a corrupt header must not
#: allocate unbounded memory at the receiver.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message dict -> one framed byte string."""
    body = json.dumps(encode_value(message),
                      separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ClusterCodecError(f"message of {len(body)} bytes exceeds the "
                                f"{MAX_FRAME_BYTES}-byte frame ceiling")
    return _HEADER.pack(len(body)) + body


def decode_message(frame: bytes) -> Dict[str, Any]:
    """One framed byte string -> the message dict (length-checked)."""
    if len(frame) < _HEADER.size:
        raise ClusterCodecError(f"truncated frame of {len(frame)} bytes")
    (length,) = _HEADER.unpack_from(frame)
    body = frame[_HEADER.size:]
    if length != len(body):
        raise ClusterCodecError(f"frame declares {length} payload bytes "
                                f"but carries {len(body)}")
    if length > MAX_FRAME_BYTES:
        raise ClusterCodecError(f"frame of {length} bytes exceeds the "
                                f"{MAX_FRAME_BYTES}-byte ceiling")
    message = decode_value(json.loads(body.decode("utf-8")))
    if not isinstance(message, dict):
        raise ClusterCodecError(f"frame payload is not a message dict: "
                                f"{type(message).__name__}")
    return message


def write_frame(conn: Any, message: Dict[str, Any]) -> None:
    """Send one message as a frame on a multiprocessing connection."""
    conn.send_bytes(encode_message(message))


def read_frame(conn: Any) -> Dict[str, Any]:
    """Receive one framed message from a multiprocessing connection.

    Raises :class:`EOFError` when the peer closed (worker death — the
    caller's respawn trigger) and :class:`ClusterCodecError` on any
    malformed frame.
    """
    return decode_message(conn.recv_bytes())


# -- structure snapshots ---------------------------------------------------------
# A shard structure rides the "load" message (not the spawn args): the
# gateway keeps the authoritative copy, so a respawned worker reloads
# the *current* state — updates included — through the same codec.

def encode_structure(structure: Any) -> Dict[str, Any]:
    """A Structure's full content as a wire-codec payload."""
    return {
        "domain": list(structure.domain),
        "relations": {name: sorted(tuples, key=repr)
                      for name, tuples in structure.relations.items()},
        "weights": {name: [[tup, value] for tup, value
                           in sorted(mapping.items(), key=repr)]
                    for name, mapping in structure.weights.items()},
        "arity": dict(structure._arity),
    }


def decode_structure(payload: Dict[str, Any]) -> Any:
    """Rebuild a Structure from :func:`encode_structure`'s payload."""
    from ..structures import Structure
    structure = Structure(payload["domain"])
    for name, tuples in payload["relations"].items():
        for tup in tuples:
            structure.add_tuple(name, tuple(tup))
        structure.relations.setdefault(name, set())
    for name, entries in payload["weights"].items():
        for tup, value in entries:
            structure.set_weight(name, tuple(tup), value)
        structure.weights.setdefault(name, {})
    # Names that are empty on this shard still need their declared
    # arities (a worker must accept updates/queries mentioning them).
    for name, arity in payload["arity"].items():
        structure._arity.setdefault(name, arity)
    return structure


def error_reply(request_id: Any, error: BaseException) -> Dict[str, Any]:
    """The standard error reply for one request."""
    return {"id": request_id, "ok": False,
            "error": type(error).__name__, "detail": str(error)}


def raise_reply_error(reply: Dict[str, Any]) -> None:
    """Re-raise a worker-side error reply in the gateway.

    Errors cross the wire as ``(type name, message)`` — data, not
    pickled exception objects.  Well-known types re-raise as
    themselves so caller contracts hold across the process boundary
    (``KeyError`` for bad arguments, ``ValueError`` for bad knobs);
    everything else surfaces as :class:`ClusterError`.
    """
    name = reply.get("error", "ClusterError")
    detail = reply.get("detail", "")
    known: Dict[str, Any] = {
        "KeyError": KeyError, "ValueError": ValueError,
        "TypeError": TypeError, "RuntimeError": RuntimeError,
        "Overloaded": Overloaded, "ShardingError": ShardingError,
        "ClusterCodecError": ClusterCodecError,
        "PlanStateError": PlanStateError,
    }
    exc_type = known.get(name)
    if exc_type is None:
        raise ClusterError(f"worker error {name}: {detail}")
    raise exc_type(detail)


def check_wire_roundtrip(value: Any) -> Any:
    """Assert ``value`` survives the wire codec; returns it unchanged.

    Used by the gateway at construction to refuse un-servable carriers
    (e.g. the provenance ``Poly``) eagerly — the same fail-at-the-seam
    discipline as the backend validators.
    """
    decode_value(encode_value(value))
    return value
