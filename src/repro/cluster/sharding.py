"""Domain sharding: Gaifman components routed to shared-nothing shards.

The paper's locality is what makes sharding *exact* rather than
approximate: a query value over a disjoint union of structures is the
semiring ``⊕`` of the per-structure values, provided no witness ever
spans two parts.  The sharder guarantees that by construction — the
unit of placement is a **connected component of the Gaifman graph**
(elements adjacent when they co-occur in a relation tuple or weight),
so *no relation tuple or weight tuple can ever cross a shard*.  That is
the cross-shard-tuple policy: there are none, ever, for the built-in
policies; a custom ``assign`` that would split a tuple is refused with
:class:`~repro.cluster.ShardingError` (splitting it would silently
break the ``⊕``-merge identity, the one invariant the cluster rests
on).  The same applies to writes: a relation toggle that would create a
cross-shard Gaifman edge is refused by the gateway.

Two placement policies:

* ``"hash"`` — a stable content digest of each component's
  representative element (``hashlib``, never the process-salted builtin
  ``hash``) picks the shard: balanced in expectation, and a component
  keeps its shard across domain reorderings.
* ``"contiguous"`` — components are packed into domain-order runs of
  near-equal element count: locality-preserving for range-shaped
  workloads, deterministic given the domain order.

:func:`check_shardable` is the companion query-side guarantee: it
accepts exactly the expressions whose nonzero-contributing witnesses
are provably Gaifman-connected (per additive term: positive-conjunctive
brackets, every variable linked through shared atoms/weights, every
term mentioning every free variable), and refuses the rest — negation,
disjunction-dependent connectivity, universal quantifiers, constant
terms — whose shard-local evaluation could diverge from the global one.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..logic import (And, Atom, Bracket, Eq, Exists, Forall, Formula,
                     LabelAtom, Not, Or, Truth, WAdd, WConst, WExpr, WMul,
                     WSum, Weight)
from ..structures import Structure
from .protocol import ShardingError

__all__ = ["ShardPlan", "shard_structure", "connected_components",
           "check_shardable"]

Element = Any
Tup = Tuple[Element, ...]


def connected_components(structure: Structure) -> List[List[Element]]:
    """The Gaifman graph's connected components, each in domain order,
    listed by their first element's domain position."""
    graph = structure.gaifman()
    position = {element: index
                for index, element in enumerate(structure.domain)}
    seen: Set[Element] = set()
    components: List[List[Element]] = []
    for root in structure.domain:
        if root in seen:
            continue
        stack = [root]
        seen.add(root)
        members = [root]
        while stack:
            node = stack.pop()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    members.append(neighbor)
                    stack.append(neighbor)
        members.sort(key=position.__getitem__)
        components.append(members)
    return components


class ShardPlan:
    """One domain partition: k shard structures plus the owner map.

    ``shards[i]`` is a full-schema :class:`Structure` over the i-th
    slice of the domain (every relation/weight *name* is declared on
    every shard — empty where the shard holds no tuples — so workers
    accept any routed update or query); ``owner`` maps every domain
    element to its shard index.  ``len(shards)`` may be smaller than
    ``requested`` when the structure has fewer Gaifman components than
    requested shards — a shard cannot be emptier than empty.
    """

    def __init__(self, shards: List[Structure],
                 owner: Dict[Element, int], policy: str,
                 requested: int, components: int):
        self.shards = shards
        self.owner = owner
        self.policy = policy
        self.requested = requested
        self.components = components

    def owner_of(self, element: Element) -> int:
        """The shard index owning ``element`` (KeyError when unknown)."""
        try:
            return self.owner[element]
        except KeyError:
            raise KeyError(f"{element!r} is not in the structure's "
                           f"domain") from None

    def shard_of_tuple(self, tup: Iterable[Element]) -> int:
        """The single shard owning every element of ``tup``.

        Raises :class:`ShardingError` for a tuple spanning shards —
        admitting it (as a relation tuple or weight) would create a
        cross-shard Gaifman edge and silently break the ``⊕``-merge
        identity, so the policy is refusal.
        """
        owners = {self.owner_of(element) for element in tup}
        if len(owners) > 1:
            raise ShardingError(
                f"tuple {tuple(tup)!r} spans shards {sorted(owners)}; "
                f"cross-shard tuples are refused — they would break the "
                f"per-shard ⊕-merge identity (re-shard with the tuple "
                f"present to co-locate its component)")
        if not owners:
            raise ShardingError("cannot route the empty tuple to a shard")
        return owners.pop()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = [len(shard.domain) for shard in self.shards]
        return (f"<ShardPlan {self.policy} shards={len(self.shards)} "
                f"sizes={sizes}>")


def _hash_assignment(components: List[List[Element]],
                     shards: int) -> List[int]:
    """Stable component placement: content digest of the representative."""
    placement = []
    for members in components:
        digest = hashlib.sha256(repr(members[0]).encode("utf-8")).digest()
        placement.append(int.from_bytes(digest[:8], "big") % shards)
    return placement


def _contiguous_assignment(components: List[List[Element]],
                           shards: int) -> List[int]:
    """Domain-order runs of near-equal element count."""
    total = sum(len(members) for members in components)
    placement = []
    shard, filled = 0, 0
    for members in components:
        placement.append(shard)
        filled += len(members)
        # Advance once this shard reached its proportional share;
        # the last shard absorbs any remainder.
        while shard < shards - 1 and filled >= (shard + 1) * total / shards:
            shard += 1
    return placement


def shard_structure(structure: Structure, shards: int,
                    policy: str = "hash",
                    assign: Optional[Dict[Element, int]] = None
                    ) -> ShardPlan:
    """Partition ``structure`` into at most ``shards`` shard structures.

    Placement is per Gaifman component (see the module docstring), by
    ``policy`` — or by the explicit ``assign`` mapping (element → shard
    index), which is validated: every element placed, indices in range,
    and **no relation or weight tuple split across shards** (refused
    with :class:`ShardingError`; that is the cross-shard-tuple policy).
    Empty shards are dropped, so the plan may hold fewer shards than
    requested.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    components = connected_components(structure)
    if assign is not None:
        missing = [element for element in structure.domain
                   if element not in assign]
        if missing:
            raise ShardingError(f"assign does not place {missing[0]!r} "
                                f"(and {len(missing) - 1} more)")
        out_of_range = {index for index in assign.values()
                        if not 0 <= index < shards}
        if out_of_range:
            raise ShardingError(f"assign uses shard indices "
                                f"{sorted(out_of_range)} outside "
                                f"0..{shards - 1}")
        owner = {element: assign[element] for element in structure.domain}
        policy = "custom"
    else:
        if policy == "hash":
            placement = _hash_assignment(components, shards)
        elif policy == "contiguous":
            placement = _contiguous_assignment(components, shards)
        else:
            raise ValueError(f"unknown shard_policy {policy!r}; expected "
                             f"'hash' or 'contiguous'")
        owner = {}
        for members, shard in zip(components, placement):
            for element in members:
                owner[element] = shard

    # Build the shard structures, validating tuple locality as we route.
    used = sorted({owner[element] for element in structure.domain})
    renumber = {old: new for new, old in enumerate(used)}
    owner = {element: renumber[shard] for element, shard in owner.items()}
    domains: List[List[Element]] = [[] for _ in used]
    for element in structure.domain:
        domains[owner[element]].append(element)
    parts = [Structure(domain) for domain in domains]
    for name, tuples in structure.relations.items():
        for tup in tuples:
            shard = _route(owner, name, tup)
            parts[shard].add_tuple(name, tup)
    for name, mapping in structure.weights.items():
        for tup, value in mapping.items():
            shard = _route(owner, name, tup)
            parts[shard].set_weight(name, tup, value)
    for part in parts:
        # Full schema everywhere: a shard that happens to hold no
        # tuples of a relation must still declare its name and arity.
        for name in structure.relations:
            part.relations.setdefault(name, set())
        for name in structure.weights:
            part.weights.setdefault(name, {})
        part._arity.update(structure._arity)
    return ShardPlan(parts, owner, policy, shards, len(components))


def _route(owner: Dict[Element, int], name: str, tup: Tup) -> int:
    owners = {owner[element] for element in tup}
    if len(owners) != 1:
        raise ShardingError(
            f"{name}{tuple(tup)!r} spans shards {sorted(owners)}; the "
            f"assignment splits a Gaifman component — cross-shard tuples "
            f"are refused (they would break the ⊕-merge identity)")
    return owners.pop()


# -- query-side shardability ------------------------------------------------------

def check_shardable(expr: WExpr) -> None:
    """Refuse expressions whose shard-local evaluation could diverge.

    Sound sufficient condition, per top-level additive term: (a) only
    positive-conjunctive connective structure contributes guaranteed
    Gaifman edges (``And``/``Exists``/products union edges;
    ``Or``/``WAdd`` keep only edges common to every branch; ``Not`` of
    a quantifier-free subformula contributes none; ``Forall`` and
    negated/disjoined quantifiers are refused — a shard-local
    quantifier ranges over the shard's domain, not the global one);
    (b) the term's variables form **one** connected component under
    those edges; (c) the term mentions every free variable of the
    query.  Together these guarantee every nonzero-contributing witness
    is Gaifman-connected through its bound elements, hence wholly
    inside one shard — which is exactly what the gateway's
    route-to-owner / fan-out-⊕ evaluation assumes.
    """
    free = expr.free_vars()
    terms = list(expr.parts) if isinstance(expr, WAdd) else [expr]
    for term in terms:
        variables: Set[str] = set()
        edges: Set[FrozenSet[str]] = set()
        _gather_expr(term, variables, edges)
        if not variables:
            raise ShardingError(
                f"term {term!r} mentions no variables; a constant term "
                f"is added once globally but once *per shard* by the "
                f"⊕-merge — fold it into a weight or serve unsharded")
        if not free <= variables:
            missing = sorted(free - variables)
            raise ShardingError(
                f"term {term!r} never mentions parameter(s) "
                f"{', '.join(missing)}; a shard evaluates the whole "
                f"expression locally, so every additive term must "
                f"constrain every free variable")
        if not _connected(variables, edges):
            raise ShardingError(
                f"term {term!r} has variables not linked by any shared "
                f"atom or weight; its witnesses may span shards, which "
                f"the per-shard ⊕-merge cannot see — only "
                f"Gaifman-connected queries are shardable")


def _connected(variables: Set[str], edges: Set[FrozenSet[str]]) -> bool:
    if len(variables) <= 1:
        return True
    reached = {next(iter(variables))}
    frontier = list(reached)
    adjacency: Dict[str, Set[str]] = {var: set() for var in variables}
    for edge in edges:
        pair = tuple(edge)
        if len(pair) == 2:
            adjacency[pair[0]].add(pair[1])
            adjacency[pair[1]].add(pair[0])
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency.get(node, ()):
            if neighbor not in reached:
                reached.add(neighbor)
                frontier.append(neighbor)
    return reached == variables


def _clique(vars_: Iterable[str], variables: Set[str],
            edges: Set[FrozenSet[str]]) -> None:
    names = [var for var in vars_ if isinstance(var, str)]
    variables.update(names)
    for i, left in enumerate(names):
        for right in names[i + 1:]:
            if left != right:
                edges.add(frozenset((left, right)))


def _gather_expr(expr: WExpr, variables: Set[str],
                 edges: Set[FrozenSet[str]]) -> None:
    if isinstance(expr, WConst):
        return
    if isinstance(expr, Weight):
        _clique(expr.terms, variables, edges)
        return
    if isinstance(expr, Bracket):
        _gather_formula(expr.formula, variables, edges)
        return
    if isinstance(expr, WMul):
        for part in expr.parts:
            _gather_expr(part, variables, edges)
        return
    if isinstance(expr, WAdd):
        _gather_branches([_collected_expr(part) for part in expr.parts],
                         variables, edges)
        return
    if isinstance(expr, WSum):
        variables.update(expr.vars)
        _gather_expr(expr.inner, variables, edges)
        return
    raise ShardingError(f"cannot prove {type(expr).__name__} shardable; "
                        f"serve it unsharded")


def _gather_formula(formula: Formula, variables: Set[str],
                    edges: Set[FrozenSet[str]]) -> None:
    if isinstance(formula, (Truth, LabelAtom)):
        variables.update(formula.free_vars())
        return
    if isinstance(formula, Atom):
        _clique(formula.terms, variables, edges)
        return
    if isinstance(formula, Eq):
        # x = y forces the witness elements to coincide — trivially
        # co-located, so equality *is* a connectivity edge.
        _clique((formula.left, formula.right), variables, edges)
        return
    if isinstance(formula, And):
        for part in formula.parts:
            _gather_formula(part, variables, edges)
        return
    if isinstance(formula, Or):
        _gather_branches([_collected_formula(part)
                          for part in formula.parts], variables, edges)
        return
    if isinstance(formula, Not):
        if not _quantifier_free(formula.inner):
            raise ShardingError(
                "negated quantifiers are not shardable: a shard-local "
                "∃/∀ ranges over the shard's domain, not the global one")
        # A satisfied negation guarantees no tuple *presence*, hence no
        # Gaifman edges — but its variables still count.
        variables.update(formula.free_vars())
        return
    if isinstance(formula, Exists):
        variables.update(formula.vars)
        _gather_formula(formula.inner, variables, edges)
        return
    if isinstance(formula, Forall):
        raise ShardingError(
            "∀ is not shardable: a shard-local universal ranges over "
            "the shard's domain, so its truth diverges from the global "
            "structure's")
    raise ShardingError(f"cannot prove {type(formula).__name__} "
                        f"shardable; serve it unsharded")


def _collected_expr(expr: WExpr
                    ) -> Tuple[Set[str], Set[FrozenSet[str]]]:
    variables: Set[str] = set()
    edges: Set[FrozenSet[str]] = set()
    _gather_expr(expr, variables, edges)
    return variables, edges


def _collected_formula(formula: Formula
                       ) -> Tuple[Set[str], Set[FrozenSet[str]]]:
    variables: Set[str] = set()
    edges: Set[FrozenSet[str]] = set()
    _gather_formula(formula, variables, edges)
    return variables, edges


def _gather_branches(collected: List[Tuple[Set[str], Set[FrozenSet[str]]]],
                     variables: Set[str],
                     edges: Set[FrozenSet[str]]) -> None:
    """Alternatives guarantee only what *every* branch guarantees."""
    for branch_vars, _ in collected:
        variables.update(branch_vars)
    if collected:
        common = set(collected[0][1])
        for _, branch_edges in collected[1:]:
            common &= branch_edges
        edges.update(common)


def _quantifier_free(formula: Formula) -> bool:
    if isinstance(formula, (Exists, Forall)):
        return False
    parts: Tuple[Formula, ...] = ()
    if isinstance(formula, (And, Or)):
        parts = formula.parts
    elif isinstance(formula, Not):
        parts = (formula.inner,)
    return all(_quantifier_free(part) for part in parts)
