"""Permanent algebra (system S2): static evaluation + dynamic maintenance."""

from .maintainers import (STRATEGIES, FiniteMaintainer, PermanentMaintainer,
                          RecomputeMaintainer, RingMaintainer,
                          SegmentTreeMaintainer, falling_factorial,
                          make_maintainer, partitions_of)
from .permanent import (matrix_dimensions, perm_prime, permanent,
                        permanent_naive, permanent_via_perm_prime)

__all__ = [
    "permanent", "permanent_naive", "perm_prime", "permanent_via_perm_prime",
    "matrix_dimensions", "PermanentMaintainer", "RecomputeMaintainer",
    "SegmentTreeMaintainer", "RingMaintainer", "FiniteMaintainer",
    "make_maintainer", "falling_factorial", "partitions_of", "STRATEGIES",
]
