"""Dynamic permanent maintenance: the algebraic heart of Theorem 8.

Four interchangeable strategies maintain ``perm(M)`` of a ``k x n`` matrix
under single-entry updates:

* :class:`RecomputeMaintainer` — O(n) per update; the baseline.
* :class:`SegmentTreeMaintainer` — any semiring, O(3^k log n) per update.
  This is the constructive content of Lemmas 10–11: a balanced tree over the
  columns where each node stores the permanent of every row subset against
  its column segment; updates touch one root-to-leaf path, so the induced
  circuit has logarithmic reach-out (Corollary 13).
* :class:`RingMaintainer` — rings, O(2^k) = O_k(1) per update via the
  partition-lattice inclusion–exclusion of Lemma 15.
* :class:`FiniteMaintainer` — finite semirings, O_k,S(1) per update via
  column-type counting and lasso arithmetic (Lemma 18 + Lemma 38).

:func:`make_maintainer` picks the fastest strategy a semiring supports,
mirroring the case split in Theorem 8.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..semirings import LassoArithmetic, Semiring
from .permanent import Matrix, matrix_dimensions, permanent


class PermanentMaintainer:
    """Interface: maintain ``perm`` of a fixed-shape matrix under updates."""

    #: Strategy label used in benchmark tables.
    strategy = "abstract"

    def value(self) -> Any:
        raise NotImplementedError

    def update(self, row: int, col: int, entry: Any) -> None:
        raise NotImplementedError

    def get(self, row: int, col: int) -> Any:
        raise NotImplementedError

    def update_column(self, col: int, entries: Sequence[Any]) -> None:
        for row, entry in enumerate(entries):
            self.update(row, col, entry)


class RecomputeMaintainer(PermanentMaintainer):
    """Baseline: store the matrix, recompute the permanent on demand."""

    strategy = "recompute"

    def __init__(self, matrix: Matrix, sr: Semiring):
        self.sr = sr
        self.matrix = [list(row) for row in matrix]
        matrix_dimensions(self.matrix)
        self._cached: Optional[Any] = None

    def value(self) -> Any:
        if self._cached is None:
            self._cached = permanent(self.matrix, self.sr)
        return self._cached

    def update(self, row: int, col: int, entry: Any) -> None:
        self.matrix[row][col] = entry
        self._cached = None

    def get(self, row: int, col: int) -> Any:
        return self.matrix[row][col]


class SegmentTreeMaintainer(PermanentMaintainer):
    """General-semiring maintainer with logarithmic updates (Lemma 11).

    A perfect binary tree over column positions; every node stores, for each
    subset ``S`` of rows, ``perm`` of the submatrix ``S x (node's columns)``.
    Merging two children is a subset convolution:
    ``out[S] = sum over A subset of S of left[A] * right[S \\ A]``.
    """

    strategy = "segment-tree"

    def __init__(self, matrix: Matrix, sr: Semiring):
        self.sr = sr
        self.k, self.n = matrix_dimensions(matrix)
        self.full = (1 << self.k) - 1
        self.matrix = [list(row) for row in matrix]
        size = 1
        while size < max(self.n, 1):
            size *= 2
        self.size = size
        # tree[i] is the subset-permanent vector of node i (1-based heap).
        identity = [sr.one] + [sr.zero] * self.full
        self.tree: List[List[Any]] = [list(identity) for _ in range(2 * size)]
        for col in range(self.n):
            self.tree[size + col] = self._leaf_vector(col)
        for node in range(size - 1, 0, -1):
            self.tree[node] = self._merge(self.tree[2 * node],
                                          self.tree[2 * node + 1])

    def _leaf_vector(self, col: int) -> List[Any]:
        sr = self.sr
        vec = [sr.zero] * (self.full + 1)
        vec[0] = sr.one
        for row in range(self.k):
            vec[1 << row] = self.matrix[row][col]
        return vec

    def _merge(self, left: List[Any], right: List[Any]) -> List[Any]:
        sr = self.sr
        add, mul = sr.add, sr.mul
        out = [sr.zero] * (self.full + 1)
        out[0] = mul(left[0], right[0])
        for mask in range(1, self.full + 1):
            acc = mul(left[mask], right[0])
            sub = (mask - 1) & mask
            while True:
                acc = add(acc, mul(left[sub], right[mask ^ sub]))
                if sub == 0:
                    break
                sub = (sub - 1) & mask
            out[mask] = acc
        return out

    def value(self) -> Any:
        return self.tree[1][self.full]

    def update(self, row: int, col: int, entry: Any) -> None:
        self.matrix[row][col] = entry
        node = self.size + col
        self.tree[node] = self._leaf_vector(col)
        node //= 2
        while node >= 1:
            self.tree[node] = self._merge(self.tree[2 * node],
                                          self.tree[2 * node + 1])
            node //= 2

    def get(self, row: int, col: int) -> Any:
        return self.matrix[row][col]


def partitions_of(items: Tuple[int, ...]):
    """Yield all set partitions of ``items`` (tuples of tuples)."""
    if not items:
        yield ()
        return
    head, rest = items[0], items[1:]
    for partition in partitions_of(rest):
        yield ((head,),) + partition
        for index, block in enumerate(partition):
            yield partition[:index] + ((head,) + block,) + partition[index + 1:]


class RingMaintainer(PermanentMaintainer):
    """Ring maintainer with constant-time updates (Lemma 15).

    Maintains ``S_B = sum over columns c of prod_{i in B} M[i, c]`` for every
    nonempty row subset ``B``; the permanent is the inclusion–exclusion sum
    over set partitions ``P`` of the rows:
    ``perm = sum_P (prod_B (-1)^(|B|-1) (|B|-1)!) * prod_B S_B``.
    """

    strategy = "ring"

    def __init__(self, matrix: Matrix, sr: Semiring):
        if not sr.is_ring:
            raise TypeError(f"{sr.name} is not a ring")
        self.sr = sr
        self.k, self.n = matrix_dimensions(matrix)
        self.matrix = [list(row) for row in matrix]
        self.full = (1 << self.k) - 1
        # Precompute the partition lattice with Moebius coefficients.
        self.partitions: List[Tuple[int, List[int]]] = []
        for partition in partitions_of(tuple(range(self.k))):
            coeff = 1
            masks = []
            for block in partition:
                coeff *= (-1) ** (len(block) - 1) * math.factorial(len(block) - 1)
                masks.append(sum(1 << i for i in block))
            self.partitions.append((coeff, masks))
        self.block_sums: Dict[int, Any] = {}
        for mask in range(1, self.full + 1):
            self.block_sums[mask] = sr.sum(
                self._column_block(mask, col) for col in range(self.n))

    def _column_block(self, mask: int, col: int) -> Any:
        return self.sr.prod(self.matrix[row][col]
                            for row in range(self.k) if mask & (1 << row))

    def value(self) -> Any:
        sr = self.sr
        total = sr.zero
        for coeff, masks in self.partitions:
            term = sr.prod(self.block_sums[mask] for mask in masks)
            if coeff >= 0:
                total = sr.add(total, sr.scale(coeff, term))
            else:
                total = sr.add(total, sr.neg(sr.scale(-coeff, term)))
        return total

    def update(self, row: int, col: int, entry: Any) -> None:
        sr = self.sr
        bit = 1 << row
        for mask in range(1, self.full + 1):
            if mask & bit:
                old = self._column_block(mask, col)
                self.block_sums[mask] = sr.sub(self.block_sums[mask], old)
        self.matrix[row][col] = entry
        for mask in range(1, self.full + 1):
            if mask & bit:
                new = self._column_block(mask, col)
                self.block_sums[mask] = sr.add(self.block_sums[mask], new)

    def get(self, row: int, col: int) -> Any:
        return self.matrix[row][col]


def falling_factorial(m: int, c: int) -> int:
    """``m * (m-1) * ... * (m-c+1)`` (1 when ``c == 0``)."""
    result = 1
    for offset in range(c):
        result *= m - offset
        if result == 0:
            return 0
    return result


class FiniteMaintainer(PermanentMaintainer):
    """Finite-semiring maintainer with constant-time updates (Lemma 18).

    The permanent only depends on how many times each vector ``c in S^k``
    occurs as a column.  Counts are maintained in O(1); the value is
    recomputed from counts by a DP over the (constantly many) present column
    types, scaling with falling factorials via lasso arithmetic.
    """

    strategy = "finite"

    def __init__(self, matrix: Matrix, sr: Semiring):
        if not sr.is_finite:
            raise TypeError(f"{sr.name} is not finite")
        self.sr = sr
        self.k, self.n = matrix_dimensions(matrix)
        self.matrix = [list(row) for row in matrix]
        self.full = (1 << self.k) - 1
        self.lasso = LassoArithmetic(sr)
        self.counts: Dict[Tuple[Any, ...], int] = {}
        for col in range(self.n):
            kind = self._column_type(col)
            self.counts[kind] = self.counts.get(kind, 0) + 1
        self._cached: Optional[Any] = None

    def _column_type(self, col: int) -> Tuple[Any, ...]:
        return tuple(self.matrix[row][col] for row in range(self.k))

    def value(self) -> Any:
        if self._cached is not None:
            return self._cached
        sr = self.sr
        # dp[rows_mask] = sum over assignments of `rows_mask` into the types
        # processed so far, weighted by falling-factorial choice counts.
        dp: List[Any] = [sr.zero] * (self.full + 1)
        dp[0] = sr.one
        for kind, count in self.counts.items():
            if count <= 0:
                continue
            new_dp = list(dp)
            for mask in range(1, self.full + 1):
                # Assign the nonempty row set `sub` to this column type.
                sub = mask
                while sub:
                    size = bin(sub).count("1")
                    if size <= count:
                        base = dp[mask ^ sub]
                        if not sr.is_zero(base):
                            prod = sr.prod(kind[row] for row in range(self.k)
                                           if sub & (1 << row))
                            weight = self.lasso.scale(
                                falling_factorial(count, size),
                                sr.mul(base, prod))
                            new_dp[mask] = sr.add(new_dp[mask], weight)
                    sub = (sub - 1) & mask
            dp = new_dp
        self._cached = dp[self.full]
        return self._cached

    def update(self, row: int, col: int, entry: Any) -> None:
        old_kind = self._column_type(col)
        self.counts[old_kind] -= 1
        if self.counts[old_kind] == 0:
            del self.counts[old_kind]
        self.matrix[row][col] = entry
        new_kind = self._column_type(col)
        self.counts[new_kind] = self.counts.get(new_kind, 0) + 1
        self._cached = None

    def get(self, row: int, col: int) -> Any:
        return self.matrix[row][col]


#: Registry used by benchmarks to iterate over strategies.
STRATEGIES = {
    cls.strategy: cls
    for cls in (RecomputeMaintainer, SegmentTreeMaintainer,
                RingMaintainer, FiniteMaintainer)
}


def make_maintainer(matrix: Matrix, sr: Semiring,
                    strategy: Optional[str] = None) -> PermanentMaintainer:
    """Pick the fastest applicable maintainer (the Theorem 8 case split).

    Rings get constant-time updates via Lemma 15; finite semirings via
    Lemma 18; everything else falls back to the logarithmic segment tree
    of Lemma 11 (optimal by Proposition 14).
    """
    if strategy is not None:
        return STRATEGIES[strategy](matrix, sr)
    if sr.is_ring:
        return RingMaintainer(matrix, sr)
    if sr.is_finite:
        return FiniteMaintainer(matrix, sr)
    return SegmentTreeMaintainer(matrix, sr)
