"""Static permanents of rectangular matrices over commutative semirings.

``perm(M) = sum over injective f: rows -> columns of prod_r M[r, f(r)]``
(paper §3, equation (1)).  The number of rows ``k`` is a query constant;
the number of columns ``n`` is data.  :func:`permanent` runs in
``O(2^k * k * n)`` semiring operations — linear in ``n`` as required by
Theorem 8's analysis — while :func:`permanent_naive` enumerates injections
directly and is used only as a test oracle.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Sequence

from ..semirings import Semiring

Matrix = Sequence[Sequence[Any]]


def matrix_dimensions(matrix: Matrix) -> tuple[int, int]:
    """Validate rectangularity and return ``(k, n)``."""
    k = len(matrix)
    n = len(matrix[0]) if k else 0
    for row in matrix:
        if len(row) != n:
            raise ValueError("permanent requires a rectangular matrix")
    return k, n


def permanent(matrix: Matrix, sr: Semiring) -> Any:
    """Permanent via subset dynamic programming over columns.

    State: ``dp[mask]`` = sum over injective assignments of the row set
    ``mask`` into the columns processed so far.  Each column either serves
    one currently-unmatched row or is skipped.
    """
    k, _ = matrix_dimensions(matrix)
    if k == 0:
        return sr.one
    full = (1 << k) - 1
    dp: List[Any] = [sr.zero] * (full + 1)
    dp[0] = sr.one
    add, mul = sr.add, sr.mul
    for col in range(len(matrix[0])):
        # Iterate masks descending so each column is used at most once.
        for mask in range(full, 0, -1):
            acc = dp[mask]
            for row in range(k):
                bit = 1 << row
                if mask & bit:
                    prev = dp[mask ^ bit]
                    if not sr.is_zero(prev):
                        acc = add(acc, mul(prev, matrix[row][col]))
            dp[mask] = acc
    return dp[full]


def permanent_naive(matrix: Matrix, sr: Semiring) -> Any:
    """Test oracle: direct sum over injective functions rows -> columns."""
    k, n = matrix_dimensions(matrix)
    if k == 0:
        return sr.one
    total = sr.zero
    for assignment in itertools.permutations(range(n), k):
        total = sr.add(total, sr.prod(
            matrix[row][assignment[row]] for row in range(k)))
    return total


def perm_prime(matrix: Matrix, sr: Semiring) -> Any:
    """``perm'(M)``: the order-respecting permanent of Lemma 10.

    Sums over *increasing* injections of the (ordered) rows into the
    (ordered) columns.  ``perm(M) = sum over row orderings of perm'``.
    """
    k, n = matrix_dimensions(matrix)
    if k == 0:
        return sr.one
    # dp[i] = perm' of the first i rows against the columns seen so far.
    dp: List[Any] = [sr.one] + [sr.zero] * k
    for col in range(n):
        for i in range(k, 0, -1):
            dp[i] = sr.add(dp[i], sr.mul(dp[i - 1], matrix[i - 1][col]))
    return dp[k]


def permanent_via_perm_prime(matrix: Matrix, sr: Semiring) -> Any:
    """Cross-check for the Lemma 10 decomposition: sum perm' over orderings."""
    k, _ = matrix_dimensions(matrix)
    total = sr.zero
    for order in itertools.permutations(range(k)):
        reordered = [matrix[row] for row in order]
        total = sr.add(total, perm_prime(reordered, sr))
    return total
