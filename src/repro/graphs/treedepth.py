"""Treedepth machinery: DFS forests, exact treedepth, elimination forests.

A rooted forest *covers* a graph when every edge joins an ancestor-descendant
pair.  Depth-first search forests have this property automatically (every
non-tree edge of an undirected DFS is a back edge), and on graphs of bounded
treedepth their depth is bounded because long paths are absent (paper,
Example 2: treedepth ``d`` implies no path longer than ``2^d``).

:func:`exact_treedepth` is an exponential-time oracle used by the test suite
to validate colorings and encodings on small graphs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Tuple

from .graph import Graph, Vertex


class RootedForest:
    """A rooted forest: ``parent[root] is None``; depth of roots is 0."""

    def __init__(self, parent: Dict[Vertex, Optional[Vertex]]):
        self.parent = dict(parent)
        self.depth: Dict[Vertex, int] = {}
        self.children: Dict[Vertex, List[Vertex]] = {v: [] for v in parent}
        self.roots: List[Vertex] = []
        for vertex, par in parent.items():
            if par is None:
                self.roots.append(vertex)
            else:
                self.children[par].append(vertex)
        # Depths via BFS from the roots.
        queue = list(self.roots)
        for root in self.roots:
            self.depth[root] = 0
        index = 0
        while index < len(queue):
            node = queue[index]
            index += 1
            for child in self.children[node]:
                self.depth[child] = self.depth[node] + 1
                queue.append(child)
        if len(self.depth) != len(self.parent):
            raise ValueError("parent map contains a cycle")

    def height(self) -> int:
        """Number of levels (max depth + 1); 0 for the empty forest."""
        return max(self.depth.values(), default=-1) + 1

    def ancestor(self, vertex: Vertex, at_depth: int) -> Optional[Vertex]:
        """The ancestor of ``vertex`` at the given depth (None if deeper)."""
        if at_depth > self.depth[vertex]:
            return None
        node = vertex
        while self.depth[node] > at_depth:
            node = self.parent[node]
        return node

    def ancestors(self, vertex: Vertex) -> List[Vertex]:
        """The path root -> ... -> vertex (inclusive), indexed by depth."""
        path = []
        node: Optional[Vertex] = vertex
        while node is not None:
            path.append(node)
            node = self.parent[node]
        path.reverse()
        return path

    def is_ancestor(self, ancestor: Vertex, vertex: Vertex) -> bool:
        return self.ancestor(vertex, self.depth[ancestor]) == ancestor

    def covers(self, graph: Graph) -> bool:
        """Check the treedepth-decomposition property for ``graph``."""
        return all(self.is_ancestor(u, v) or self.is_ancestor(v, u)
                   for u, v in graph.edges())


def dfs_forest(graph: Graph, order: List[Vertex] = None) -> RootedForest:
    """A DFS spanning forest; every graph edge joins comparable vertices."""
    if order is None:
        order = graph.vertices()
    parent: Dict[Vertex, Optional[Vertex]] = {}
    for start in order:
        if start in parent:
            continue
        parent[start] = None
        # Iterative DFS with an explicit neighbor cursor.
        stack: List[Tuple[Vertex, List[Vertex], int]] = [
            (start, sorted(graph.neighbors(start), key=repr), 0)]
        while stack:
            node, nbrs, cursor = stack[-1]
            advanced = False
            while cursor < len(nbrs):
                nxt = nbrs[cursor]
                cursor += 1
                if nxt not in parent:
                    parent[nxt] = node
                    stack[-1] = (node, nbrs, cursor)
                    stack.append((nxt, sorted(graph.neighbors(nxt), key=repr), 0))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
    return RootedForest(parent)


def exact_treedepth(graph: Graph) -> int:
    """Exact treedepth by branching over root choices (test oracle only).

    ``td(G) = 1 + min over v of max over components C of G - v of td(C)``
    for connected G; the max over components otherwise.  Exponential —
    restricted to the small graphs used in tests.
    """
    if len(graph) > 16:
        raise ValueError("exact_treedepth is an oracle for small graphs only")

    index = {v: i for i, v in enumerate(sorted(graph.vertices(), key=repr))}
    adjacency: Dict[int, FrozenSet[int]] = {
        index[v]: frozenset(index[n] for n in graph.neighbors(v))
        for v in graph.vertices()}

    @lru_cache(maxsize=None)
    def solve(vertices: FrozenSet[int]) -> int:
        if not vertices:
            return 0
        components = _components(vertices)
        if len(components) > 1:
            return max(solve(c) for c in components)
        if len(vertices) == 1:
            return 1
        return 1 + min(solve(vertices - {v}) for v in vertices)

    def _components(vertices: FrozenSet[int]) -> List[FrozenSet[int]]:
        remaining = set(vertices)
        out = []
        while remaining:
            start = remaining.pop()
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nbr in adjacency[node] & vertices:
                    if nbr not in seen:
                        seen.add(nbr)
                        remaining.discard(nbr)
                        stack.append(nbr)
            out.append(frozenset(seen))
        return out

    return solve(frozenset(adjacency))


def treedepth_forest(graph: Graph) -> RootedForest:
    """An *optimal-height* treedepth decomposition (small graphs only).

    Mirrors :func:`exact_treedepth` but reconstructs the elimination forest.
    """
    parent: Dict[Vertex, Optional[Vertex]] = {}

    def build(vertices: List[Vertex], above: Optional[Vertex]) -> None:
        sub = graph.subgraph(vertices)
        for component in sub.connected_components():
            if len(component) == 1:
                parent[component[0]] = above
                continue
            comp_graph = graph.subgraph(component)
            best_vertex, best_depth = None, None
            for v in sorted(component, key=repr):
                rest = comp_graph.subgraph([u for u in component if u != v])
                depth = max((exact_treedepth(rest.subgraph(c))
                             for c in rest.connected_components()), default=0)
                if best_depth is None or depth < best_depth:
                    best_vertex, best_depth = v, depth
            parent[best_vertex] = above
            build([u for u in component if u != best_vertex], best_vertex)

    build(graph.vertices(), None)
    return RootedForest(parent)


def elimination_forest(graph: Graph) -> RootedForest:
    """A shallow treedepth decomposition via recursive center removal.

    Per connected component, remove a *center* vertex (the midpoint of a
    double-BFS longest-shortest-path) and recurse on the remaining
    components as its subtrees.  This is a valid treedepth decomposition of
    any graph and achieves height ``O(td * log n)``-ish in practice — e.g.
    ``ceil(log2 n)`` on paths, where a DFS forest would have height ``n``.
    Cost: O(component size) per level.
    """
    parent: Dict[Vertex, Optional[Vertex]] = {}

    def bfs_far(vertices: set, start: Vertex) -> List[Vertex]:
        """BFS path from ``start`` to a farthest vertex inside ``vertices``."""
        prev = {start: None}
        queue, index = [start], 0
        while index < len(queue):
            node = queue[index]
            index += 1
            for nbr in graph.neighbors(node):
                if nbr in vertices and nbr not in prev:
                    prev[nbr] = node
                    queue.append(nbr)
        path = [queue[-1]]
        while prev[path[-1]] is not None:
            path.append(prev[path[-1]])
        return path

    def components_in(vertices: set) -> List[set]:
        remaining = set(vertices)
        out = []
        while remaining:
            start = remaining.pop()
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for nbr in graph.neighbors(node):
                    if nbr in remaining:
                        remaining.discard(nbr)
                        seen.add(nbr)
                        stack.append(nbr)
            out.append(seen)
        return out

    def build(vertices: set, above: Optional[Vertex]) -> None:
        stack = [(vertices, above)]
        while stack:
            verts, up = stack.pop()
            for component in components_in(verts):
                if len(component) == 1:
                    (only,) = component
                    parent[only] = up
                    continue
                some = next(iter(component))
                far = bfs_far(component, some)[0]
                path = bfs_far(component, far)
                center = path[len(path) // 2]
                parent[center] = up
                component.discard(center)
                stack.append((component, center))

    build(set(graph.vertices()), None)
    return RootedForest(parent)


def longest_path_at_most(graph: Graph, bound: int) -> bool:
    """True when no simple path has more than ``bound`` vertices.

    DFS-based check used to validate the Example 2 argument; exponential in
    the worst case, applied to small graphs in tests.
    """
    def extend(path: List[Vertex], used: set) -> bool:
        if len(path) > bound:
            return False
        for nbr in graph.neighbors(path[-1]):
            if nbr not in used:
                used.add(nbr)
                path.append(nbr)
                if not extend(path, used):
                    return False
                path.pop()
                used.discard(nbr)
        return True

    return all(extend([v], {v}) for v in graph.vertices())
