"""Degeneracy orderings and bounded-out-degree acyclic orientations.

A graph is *d-degenerate* when its edges admit an acyclic orientation with
out-degree at most ``d``; classes of bounded expansion have bounded
degeneracy (paper §A.5).  The Matula–Beck bucket algorithm below computes a
degeneracy ordering in linear time.  The orientation is the workhorse of
Lemma 37 (unary-ising relations via the out-neighbor functions ``f_i``) and
of linear-time clique enumeration.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple

from .graph import Graph, Vertex


def degeneracy_ordering(graph: Graph) -> Tuple[List[Vertex], int]:
    """Return ``(ordering, degeneracy)`` via Matula–Beck bucket queues.

    Repeatedly removes a minimum-degree vertex; the ordering lists vertices
    in removal order, and each vertex has at most ``degeneracy`` neighbors
    *later* in the ordering.
    """
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    max_degree = max(degrees.values(), default=0)
    buckets: List[List[Vertex]] = [[] for _ in range(max_degree + 1)]
    for vertex, degree in degrees.items():
        buckets[degree].append(vertex)
    removed: Dict[Vertex, bool] = {v: False for v in degrees}
    ordering: List[Vertex] = []
    degeneracy = 0
    cursor = 0
    for _ in range(len(degrees)):
        # Buckets may contain stale entries (vertices whose degree dropped
        # after insertion); skip them, advancing past emptied buckets.
        while True:
            while cursor <= max_degree and not buckets[cursor]:
                cursor += 1
            vertex = buckets[cursor].pop()
            if not removed[vertex] and degrees[vertex] == cursor:
                break
        removed[vertex] = True
        degeneracy = max(degeneracy, cursor)
        ordering.append(vertex)
        for nbr in graph.neighbors(vertex):
            if not removed[nbr]:
                degrees[nbr] -= 1
                buckets[degrees[nbr]].append(nbr)
                if degrees[nbr] < cursor:
                    cursor = degrees[nbr]
    return ordering, degeneracy


class Orientation:
    """An acyclic orientation with bounded out-degree.

    ``out[v]`` lists the out-neighbors of ``v`` in a fixed order, giving the
    unary functions ``f_1, ..., f_d`` of Lemma 37 (``f_i(v)`` is the i-th
    out-neighbor when it exists and ``v`` otherwise).
    """

    def __init__(self, graph: Graph, ordering: List[Vertex] = None):
        if ordering is None:
            ordering, _ = degeneracy_ordering(graph)
        self.graph = graph
        self.position: Dict[Vertex, int] = {v: i for i, v in enumerate(ordering)}
        self.out: Dict[Vertex, List[Vertex]] = {}
        for vertex in ordering:
            later = [n for n in graph.neighbors(vertex)
                     if self.position[n] > self.position[vertex]]
            later.sort(key=lambda n: self.position[n])
            self.out[vertex] = later
        self.out_degree = max((len(nbrs) for nbrs in self.out.values()),
                              default=0)

    def function(self, index: int, vertex: Vertex) -> Vertex:
        """``f_index(vertex)`` (1-based); saturates to ``vertex`` itself."""
        neighbors = self.out[vertex]
        if 1 <= index <= len(neighbors):
            return neighbors[index - 1]
        return vertex

    def function_index(self, vertex: Vertex, target: Vertex) -> int:
        """Smallest ``i`` with ``f_i(vertex) == target`` (for canonical
        patterns); raises ``KeyError`` when target is not reachable."""
        if target == vertex:
            return len(self.out[vertex]) + 1  # the saturating index
        try:
            return self.out[vertex].index(target) + 1
        except ValueError:
            raise KeyError(f"{target!r} is not an out-neighbor of {vertex!r}") from None

    def source_of_clique(self, vertices: List[Vertex]) -> Vertex:
        """The unique source of an (acyclically oriented) clique."""
        return min(vertices, key=lambda v: self.position[v])


def enumerate_cliques(graph: Graph, size: int,
                      orientation: Orientation = None) -> Iterator[Tuple[Vertex, ...]]:
    """Enumerate all cliques of exactly ``size`` distinct vertices.

    Uses the orientation: every clique has a unique source whose
    out-neighborhood contains the rest, so the work per vertex is
    ``O(out_degree^(size-1))`` — linear total on degenerate graphs.
    Cliques are yielded once, as tuples sorted by orientation position.
    """
    if orientation is None:
        orientation = Orientation(graph)
    if size == 1:
        for vertex in graph.vertices():
            yield (vertex,)
        return
    for vertex in graph.vertices():
        candidates = orientation.out[vertex]
        for combo in itertools.combinations(candidates, size - 1):
            if graph.is_clique(combo):
                yield (vertex,) + combo
