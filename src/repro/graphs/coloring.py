"""Low-treedepth colorings via transitive–fraternal augmentation.

Proposition 1 ([16]): every bounded-expansion class admits, for each ``p``,
a coloring such that any union of at most ``p`` color classes induces a
subgraph of bounded treedepth.  Nešetřil and Ossona de Mendez's algorithm:
iterate *transitive–fraternal augmentations* on a degeneracy orientation,
then properly color the augmented graph greedily.  On a bounded-expansion
class the augmented out-degrees stay bounded, so the number of colors is a
constant and the whole computation is linear.

Correctness of the downstream decomposition (Lemma 35) holds for *any*
coloring — the low-treedepth property only bounds the constants — so this
module is a performance device, independently validated in tests via the
:func:`verify_low_treedepth` oracle.
"""

from __future__ import annotations

from typing import Dict, List

from .graph import Graph, Vertex
from .orientation import Orientation, degeneracy_ordering
from .treedepth import exact_treedepth


def greedy_coloring(graph: Graph, order: List[Vertex] = None) -> Dict[Vertex, int]:
    """Proper coloring, greedy along the *reverse* degeneracy ordering.

    Along the reverse ordering each vertex sees at most ``degeneracy``
    already-colored neighbors, so at most ``degeneracy + 1`` colors result.
    """
    if order is None:
        order, _ = degeneracy_ordering(graph)
        order = list(reversed(order))
    colors: Dict[Vertex, int] = {}
    for vertex in order:
        taken = {colors[n] for n in graph.neighbors(vertex) if n in colors}
        color = 0
        while color in taken:
            color += 1
        colors[vertex] = color
    return colors


def fraternal_transitive_step(graph: Graph) -> Graph:
    """One augmentation round: add fraternal and transitive closure edges.

    Given the degeneracy orientation of ``graph``: for every vertex ``w``
    with out-arcs ``w -> u`` and ``w -> v``, add the *fraternal* edge
    ``u - v``; for arcs ``u -> w -> v``, add the *transitive* edge ``u - v``.
    Out-degrees are bounded on BE classes, so this adds O(n) edges.
    """
    orientation = Orientation(graph)
    augmented = graph.copy()
    for w in graph.vertices():
        out = orientation.out[w]
        for i, u in enumerate(out):
            for v in out[i + 1:]:
                augmented.add_edge(u, v)          # fraternal: u <- w -> v
    for u in graph.vertices():
        for w in orientation.out[u]:
            for v in orientation.out[w]:
                if v != u:
                    augmented.add_edge(u, v)      # transitive: u -> w -> v
    return augmented


def low_treedepth_coloring(graph: Graph, p: int) -> Dict[Vertex, int]:
    """A coloring whose ≤ ``p``-color class unions have small treedepth.

    Applies ``p`` transitive–fraternal augmentation rounds and properly
    colors the result.  For ``p == 1`` this degenerates to a proper coloring
    (single color classes are independent sets: treedepth 1).
    """
    if p < 1:
        raise ValueError("p must be at least 1")
    augmented = graph
    for _ in range(max(0, p - 1)):
        augmented = fraternal_transitive_step(augmented)
    return greedy_coloring(augmented)


def color_classes(coloring: Dict[Vertex, int]) -> Dict[int, List[Vertex]]:
    classes: Dict[int, List[Vertex]] = {}
    for vertex, color in coloring.items():
        classes.setdefault(color, []).append(vertex)
    return classes


def verify_low_treedepth(graph: Graph, coloring: Dict[Vertex, int], p: int,
                         depth_bound: int) -> bool:
    """Oracle check (small graphs): every union of at most ``p`` color
    classes induces a subgraph of treedepth at most ``depth_bound``."""
    import itertools
    classes = color_classes(coloring)
    palette = sorted(classes)
    for size in range(1, p + 1):
        for subset in itertools.combinations(palette, size):
            vertices = [v for c in subset for v in classes[c]]
            sub = graph.subgraph(vertices)
            for component in sub.connected_components():
                if exact_treedepth(sub.subgraph(component)) > depth_bound:
                    return False
    return True
