"""A minimal undirected simple graph, the substrate for sparsity machinery.

Vertices are arbitrary hashable objects.  The class stores adjacency sets;
all sparsity algorithms (degeneracy, treedepth, colorings) consume it.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class Graph:
    """An undirected simple graph with hashable vertices."""

    def __init__(self, vertices: Iterable[Vertex] = (),
                 edges: Iterable[Edge] = ()):
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        for vertex in vertices:
            self.add_vertex(vertex)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction ---------------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        self._adj.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add an undirected edge (self-loops are ignored: Gaifman graphs
        are simple by definition)."""
        if u == v:
            self.add_vertex(u)
            return
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def add_clique(self, vertices: Iterable[Vertex]) -> None:
        items = list(vertices)
        for vertex in items:
            self.add_vertex(vertex)
        for i, u in enumerate(items):
            for v in items[i + 1:]:
                self.add_edge(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def vertices(self) -> List[Vertex]:
        return list(self._adj)

    def neighbors(self, v: Vertex) -> Set[Vertex]:
        return self._adj[v]

    def degree(self, v: Vertex) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj.values()), default=0)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return v in self._adj.get(u, ())

    def edge_count(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[Edge]:
        seen: Set[Vertex] = set()
        for u in self._adj:
            for v in self._adj[u]:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        items = list(dict.fromkeys(vertices))
        return all(self.has_edge(u, v)
                   for i, u in enumerate(items) for v in items[i + 1:])

    # -- derived graphs ----------------------------------------------------------

    def subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        keep = set(vertices)
        sub = Graph(vertices=keep)
        for u in keep:
            for v in self._adj.get(u, ()):
                if v in keep:
                    sub.add_edge(u, v)
        return sub

    def copy(self) -> "Graph":
        return self.subgraph(self._adj)

    def connected_components(self) -> List[List[Vertex]]:
        seen: Set[Vertex] = set()
        components: List[List[Vertex]] = []
        for start in self._adj:
            if start in seen:
                continue
            stack, component = [start], []
            seen.add(start)
            while stack:
                node = stack.pop()
                component.append(node)
                for nbr in self._adj[node]:
                    if nbr not in seen:
                        seen.add(nbr)
                        stack.append(nbr)
            components.append(component)
        return components

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Graph n={len(self)} m={self.edge_count()}>"
