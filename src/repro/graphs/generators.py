"""Graph generators for tests, examples and benchmark workloads.

All generators produce members of well-known bounded-expansion classes:
paths/cycles/trees/grids (planar, bounded degree), triangulated grids
(planar, triangle-rich — the workload for the paper's triangle queries),
bounded-degree random graphs, and sparse binomial graphs ``G(n, c/n)``
(bounded expansion asymptotically almost surely).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .graph import Graph


def path_graph(n: int) -> Graph:
    """The path ``P_n`` (treedepth ~ log n)."""
    return Graph(range(n), [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``."""
    graph = path_graph(n)
    if n > 2:
        graph.add_edge(n - 1, 0)
    return graph


def star_graph(n: int) -> Graph:
    """``K_{1,n-1}``: one hub, ``n - 1`` leaves (treedepth 2)."""
    return Graph(range(n), [(0, i) for i in range(1, n)])


def complete_graph(n: int) -> Graph:
    """``K_n`` — dense; used as a *negative* example in sparsity tests."""
    return Graph(range(n), [(i, j) for i in range(n) for j in range(i + 1, n)])


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid: planar, max degree 4, no triangles."""
    graph = Graph((r, c) for r in range(rows) for c in range(cols))
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    return graph


def triangulated_grid(rows: int, cols: int) -> Graph:
    """Grid plus one diagonal per face: planar, degree <= 8, triangle-rich."""
    graph = grid_graph(rows, cols)
    for r in range(rows - 1):
        for c in range(cols - 1):
            graph.add_edge((r, c), (r + 1, c + 1))
    return graph


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform random recursive tree: each vertex attaches to a prior one."""
    rng = random.Random(seed)
    graph = Graph(range(n))
    for v in range(1, n):
        graph.add_edge(v, rng.randrange(v))
    return graph


def bounded_depth_forest(n: int, depth: int, seed: int = 0,
                         roots: Optional[int] = None) -> Tuple[Graph, dict]:
    """A random rooted forest of height at most ``depth`` levels.

    Returns ``(graph, parent_map)`` where roots map to ``None``.  Used to
    exercise the forest compiler (Case 1 of Theorem 6) directly.
    """
    rng = random.Random(seed)
    if roots is None:
        roots = max(1, n // max(1, 2 * depth))
    parent: dict = {}
    depths: List[int] = []
    for v in range(n):
        if v < roots:
            parent[v] = None
            depths.append(0)
        else:
            candidates = [u for u in range(v) if depths[u] < depth - 1]
            if not candidates:
                parent[v] = None
                depths.append(0)
                continue
            chosen = rng.choice(candidates)
            parent[v] = chosen
            depths.append(depths[chosen] + 1)
    graph = Graph(range(n),
                  [(v, p) for v, p in parent.items() if p is not None])
    return graph, parent


def random_bounded_degree(n: int, degree: int, seed: int = 0) -> Graph:
    """Random graph with maximum degree at most ``degree`` (greedy matching
    of random stubs; simple and loop-free)."""
    rng = random.Random(seed)
    graph = Graph(range(n))
    remaining = {v: degree for v in range(n)}
    attempts = 4 * n * degree
    while attempts > 0:
        attempts -= 1
        candidates = [v for v, slots in remaining.items() if slots > 0]
        if len(candidates) < 2:
            break
        u, v = rng.sample(candidates, 2)
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
            remaining[u] -= 1
            remaining[v] -= 1
    return graph


def sparse_binomial(n: int, average_degree: float = 2.0, seed: int = 0) -> Graph:
    """``G(n, c/n)`` via the linear-time skip-sampling construction."""
    rng = random.Random(seed)
    graph = Graph(range(n))
    probability = min(1.0, average_degree / max(1, n - 1))
    if probability <= 0:
        return graph
    import math
    log_q = math.log(1.0 - probability) if probability < 1.0 else None
    v, w = 1, -1
    while v < n:
        if log_q is None:
            w += 1
        else:
            w += 1 + int(math.log(1.0 - rng.random()) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge(v, w)
    return graph


def caterpillar(spine: int, legs: int) -> Graph:
    """A caterpillar tree: path of length ``spine`` with ``legs`` per vertex."""
    graph = path_graph(spine)
    node = spine
    for s in range(spine):
        for _ in range(legs):
            graph.add_edge(s, node)
            node += 1
    return graph


def directed_edges_of(graph: Graph) -> List[Tuple[object, object]]:
    """Both orientations of every edge — convenience for building digraph
    relations (the paper's examples use directed ``E``)."""
    out = []
    for u, v in graph.edges():
        out.append((u, v))
        out.append((v, u))
    return out
