"""Sparse-graph substrate (system S3): degeneracy, treedepth, colorings."""

from .coloring import (color_classes, fraternal_transitive_step,
                       greedy_coloring, low_treedepth_coloring,
                       verify_low_treedepth)
from .generators import (bounded_depth_forest, caterpillar, complete_graph,
                         cycle_graph, directed_edges_of, grid_graph,
                         path_graph, random_bounded_degree, random_tree,
                         sparse_binomial, star_graph, triangulated_grid)
from .graph import Graph, Vertex
from .orientation import Orientation, degeneracy_ordering, enumerate_cliques
from .treedepth import (RootedForest, dfs_forest, elimination_forest,
                        exact_treedepth, longest_path_at_most,
                        treedepth_forest)

__all__ = [
    "Graph", "Vertex", "Orientation", "degeneracy_ordering",
    "enumerate_cliques", "RootedForest", "dfs_forest", "elimination_forest",
    "exact_treedepth",
    "treedepth_forest", "longest_path_at_most", "greedy_coloring",
    "low_treedepth_coloring", "fraternal_transitive_step",
    "verify_low_treedepth", "color_classes",
    "path_graph", "cycle_graph", "star_graph", "complete_graph", "grid_graph",
    "triangulated_grid", "random_tree", "bounded_depth_forest",
    "random_bounded_degree", "sparse_binomial", "caterpillar",
    "directed_edges_of",
]
