"""The Theorem 6 reduction chain (paper appendix, Figure 2).

``stage_degeneracy`` (Lemma 37): orient the Gaifman graph acyclically with
bounded out-degree; every relation/weight of arity ≥ 2 becomes *unary* data
attached to the clique's source vertex, addressed through the out-neighbor
functions ``f_i``.  Atoms and weight atoms are rewritten over patterns
``(i, t)`` that actually occur in the data (omitted patterns are false /
zero everywhere, so the rewriting stays linear).

``stage_forest`` (Lemma 33): encode a unary structure whose Gaifman graph
has small treedepth into a labeled rooted forest: an elimination forest
covers every edge by an ancestor-descendant pair, so each function arc
becomes one of finitely many unary labels (`fself`, `fup j`, `fdown j`).

``color_decomposition`` (Lemma 35): a low-treedepth coloring splits a sum
block into mutually exclusive sub-blocks, one per subset ``D`` of at most
``p`` colors and surjective color assignment of the variables; each
sub-block is evaluated on the induced substructure, whose elimination
forest is shallow.  The decomposition is exact for *any* coloring.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..graphs import Graph, Orientation
from ..logic import Block
from ..logic.fo import (Atom, Formula, FuncAtom, LabelAtom, conj, disj,
                        map_atoms)
from ..logic.weighted import (Bracket, WAdd, WConst, WExpr, Weight, WMul,
                              WSum)
from ..structures import LabeledForest, Structure
from ..structures.unary import UnaryStructure

FUNC_PREFIX = "f"


def _pattern_of(orientation: Orientation, tup: Tuple) -> Tuple[int, Tuple[int, ...]]:
    """Canonical ``(head position, function-index tuple)`` of a tuple.

    The head is the unique source of the (oriented) clique on the tuple's
    elements; ``t[j]`` is the function index with ``f_{t[j]}(head) = tup[j]``
    (the saturating index ``out_degree + 1`` encodes the head itself).
    """
    head = orientation.source_of_clique(list(set(tup)))
    position = tup.index(head)
    indices = tuple(orientation.function_index(head, element)
                    for element in tup)
    return position, indices


@dataclass
class DegeneracyEncoding:
    """Output of the degeneracy stage + the update-routing registry."""

    structure: Structure
    orientation: Orientation
    unary: UnaryStructure
    #: (original weight name, tuple) -> (stage weight name, node)
    weight_registry: Dict[Tuple[str, Tuple], Tuple[Hashable, Hashable]] = \
        field(default_factory=dict)
    #: dynamic unary predicates exposed as labels
    dynamic_labels: Set[Hashable] = field(default_factory=set)

    def weight_key(self, name: str, tup: Tuple) -> Tuple[Hashable, Hashable]:
        """The circuit input key carrying ``name(tup)``."""
        stage_name, node = self.weight_registry[(name, tuple(tup))]
        return (stage_name, node)


def stage_degeneracy(structure: Structure, expr: WExpr,
                     dynamic_relations: Sequence[str] = ()
                     ) -> Tuple[DegeneracyEncoding, WExpr]:
    """Lemma 37: unary-ize a structure and rewrite the expression over it."""
    gaifman = structure.gaifman()
    orientation = Orientation(gaifman)
    out_degree = orientation.out_degree
    dynamic = set(dynamic_relations)
    for name in dynamic:
        if structure.arity(name) != 1:
            raise ValueError(
                f"dynamic relations must be unary (got {name}/"
                f"{structure.arity(name)}); encode binary dynamics as "
                f"weights over a static clique relation")

    functions: Dict[Hashable, Dict] = {}
    for index in range(1, out_degree + 2):
        functions[(FUNC_PREFIX, index)] = {
            v: orientation.function(index, v) for v in structure.domain}

    labels: Dict[Hashable, Set] = {}
    patterns: Dict[str, Set[Tuple[int, Tuple[int, ...]]]] = {}
    for name, tuples in structure.relations.items():
        arity = structure.arity(name)
        if arity == 1:
            labels[("rel", name)] = {tup[0] for tup in tuples}
            continue
        seen: Set[Tuple[int, Tuple[int, ...]]] = set()
        for tup in tuples:
            position, indices = _pattern_of(orientation, tup)
            seen.add((position, indices))
            labels.setdefault(("pat", name, position, indices),
                              set()).add(tup[position])
        patterns[name] = seen

    weights: Dict[Hashable, Dict] = {}
    registry: Dict[Tuple[str, Tuple], Tuple[Hashable, Hashable]] = {}
    weight_patterns: Dict[str, Set[Tuple[int, Tuple[int, ...]]]] = {}
    for name, mapping in structure.weights.items():
        arity = structure.arity(name)
        if arity == 1:
            bucket = weights.setdefault(name, {})
            for tup, value in mapping.items():
                bucket[tup[0]] = value
                registry[(name, tup)] = (name, tup[0])
            continue
        seen = set()
        for tup, value in mapping.items():
            position, indices = _pattern_of(orientation, tup)
            seen.add((position, indices))
            stage_name = ("patw", name, position, indices)
            weights.setdefault(stage_name, {})[tup[position]] = value
            registry[(name, tup)] = (stage_name, tup[position])
        weight_patterns[name] = seen

    unary = UnaryStructure(structure.domain, labels=labels,
                           functions=functions, weights=weights)
    encoding = DegeneracyEncoding(structure, orientation, unary, registry,
                                  {("rel", name) for name in dynamic})

    def rewrite_atom(atom: Formula) -> Formula:
        if isinstance(atom, Atom):
            arity = len(atom.terms)
            if arity == 1:
                return LabelAtom(("rel", atom.relation), atom.terms[0])
            disjuncts = []
            for position, indices in sorted(patterns.get(atom.relation, ())):
                head = atom.terms[position]
                parts: List[Formula] = [
                    LabelAtom(("pat", atom.relation, position, indices), head)]
                parts += [FuncAtom((FUNC_PREFIX, indices[j]), head,
                                   atom.terms[j])
                          for j in range(arity)]
                disjuncts.append(conj(*parts))
            return disj(*disjuncts)
        return atom

    def rewrite_expr(node: WExpr) -> WExpr:
        if isinstance(node, WConst):
            return node
        if isinstance(node, Bracket):
            return Bracket(map_atoms(node.formula, rewrite_atom))
        if isinstance(node, Weight):
            if len(node.terms) == 1:
                return node
            summands = []
            for position, indices in sorted(
                    weight_patterns.get(node.name, ())):
                head = node.terms[position]
                stage_name = ("patw", node.name, position, indices)
                parts: List[Formula] = [
                    FuncAtom((FUNC_PREFIX, indices[j]), head, node.terms[j])
                    for j in range(len(node.terms))]
                summands.append(WMul((Weight(stage_name, (head,)),
                                      Bracket(conj(*parts)))))
            if not summands:
                return WConst(0)
            return summands[0] if len(summands) == 1 else WAdd(tuple(summands))
        if isinstance(node, WAdd):
            return WAdd(tuple(rewrite_expr(p) for p in node.parts))
        if isinstance(node, WMul):
            return WMul(tuple(rewrite_expr(p) for p in node.parts))
        if isinstance(node, WSum):
            return WSum(node.vars, rewrite_expr(node.inner))
        raise TypeError(f"unknown expression {node!r}")

    return encoding, rewrite_expr(expr)


def stage_forest(unary: UnaryStructure,
                 forest_of: Optional[Graph] = None) -> LabeledForest:
    """Lemma 33: encode a unary structure as a labeled rooted forest."""
    from ..graphs import elimination_forest
    gaifman = forest_of if forest_of is not None else unary.gaifman()
    rooted = elimination_forest(gaifman)
    labels: Dict[Hashable, Set] = {key: set(nodes)
                                   for key, nodes in unary.labels.items()}
    forest = LabeledForest(rooted.parent, labels=labels,
                           weights=unary.weights)
    for func, mapping in unary.functions.items():
        for source, target in mapping.items():
            if target == source:
                forest.set_label(("fself", func), source)
            elif forest.depth[target] < forest.depth[source] and \
                    forest.ancestor(source, forest.depth[target]) == target:
                forest.set_label(("fup", func, forest.depth[target]), source)
            elif forest.depth[source] < forest.depth[target] and \
                    forest.ancestor(target, forest.depth[source]) == source:
                forest.set_label(("fdown", func, forest.depth[source]), target)
            else:  # pragma: no cover - elimination forests cover all arcs
                raise AssertionError(
                    f"function arc {source!r}->{target!r} not covered by "
                    f"the elimination forest")
    return forest


def forest_from_structure(structure: Structure,
                          nodes: Optional[Sequence] = None) -> LabeledForest:
    """Direct forest encoding of a (sub)structure — the pipeline's Lemma 33.

    Every tuple of a relation or weight is a clique of the Gaifman graph,
    hence a *chain* in the covering elimination forest; we store it as one
    unary fact at the chain's deepest element:

    * unary relation ``R``: label ``("rel", R)``;
    * arity-r relation: label ``("reltup", R, depths)`` where ``depths``
      lists the absolute depths of the tuple's positions (the tuple is
      recovered as the node's ancestors at those depths);
    * weights likewise, under ``name`` (unary) or ``("wtup", name, depths)``.

    This generalizes the paper's ``R^i`` ancestor labels to any arity and
    makes every atom's residual under a shape a *single* label atom.
    """
    from ..graphs import elimination_forest
    node_set = set(structure.domain if nodes is None else nodes)
    gaifman = structure.gaifman().subgraph(node_set)
    rooted = elimination_forest(gaifman)
    forest = LabeledForest(rooted.parent)

    def chain_key(tup: Tuple) -> Optional[Tuple[Tuple[int, ...], Hashable]]:
        if any(element not in node_set for element in tup):
            return None
        depths = tuple(forest.depth[element] for element in tup)
        deepest = max(tup, key=lambda element: forest.depth[element])
        for element in tup:
            if forest.ancestor(deepest, forest.depth[element]) != element:
                raise AssertionError(
                    f"tuple {tup!r} is not a chain in the elimination "
                    f"forest — Gaifman graph inconsistency")
        return depths, deepest

    for name, tuples in structure.relations.items():
        arity = structure.arity(name)
        for tup in tuples:
            if arity == 1:
                if tup[0] in node_set:
                    forest.set_label(("rel", name), tup[0])
                continue
            located = chain_key(tup)
            if located is not None:
                depths, deepest = located
                forest.set_label(("reltup", name, depths), deepest)
    for name, mapping in structure.weights.items():
        arity = structure.arity(name)
        for tup, value in mapping.items():
            if arity == 1:
                if tup[0] in node_set:
                    forest.set_weight(name, tup[0], value)
                continue
            located = chain_key(tup)
            if located is not None:
                depths, deepest = located
                forest.set_weight(("wtup", name, depths), deepest, value)
    return forest


def color_blocks(block: Block, colors: Sequence[int]) -> List[Block]:
    """Lemma 35: the surjective-coloring refinements of one block.

    For the color subset ``colors`` (``|colors| <= |vars|``), emit one block
    per surjective assignment of the block's variables to the colors, with
    the color tests added as bracket factors.
    """
    refined: List[Block] = []
    variables = block.vars
    for assignment in itertools.product(colors, repeat=len(variables)):
        if set(assignment) != set(colors):
            continue
        tests = [LabelAtom(("color", color), var)
                 for var, color in zip(variables, assignment)]
        refined.append(Block(
            vars=variables,
            weight_factors=list(block.weight_factors),
            const_factors=list(block.const_factors),
            brackets=list(block.brackets) + [conj(*tests)]))
    return refined
