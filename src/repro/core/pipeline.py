"""End-to-end Theorem 6: structure + closed expression -> circuit.

``compile_structure_query`` chains the reduction stages:

1. normalize the expression into sum-of-product blocks (Lemma 28-style);
2. compute a low-treedepth coloring of the Gaifman graph (Prop. 1) and
   split every block over color subsets ``D`` with surjective color
   assignments (Lemma 35 — exact for any coloring);
3. per subset: encode the induced substructure as a labeled elimination
   forest (Lemma 33 generalized to any arity, see ``forest_from_structure``)
   and run the forest compiler (Lemma 29).

The resulting :class:`CompiledQuery` evaluates in any semiring, statically
or dynamically; :class:`DynamicQuery` supports weight updates on declared
tuples and Gaifman-preserving relation updates for declared dynamic
relations — the input models of Theorems 8 and 24.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from .._compat import warn_deprecated
from ..circuits import (HAVE_NUMPY, PLAN_FORMAT_VERSION, ArrayKernel,
                        BatchedEvaluator, Circuit, CircuitBuilder,
                        DynamicEvaluator, LayerSchedule, PlanStateError,
                        StaticEvaluator, VectorizedEvaluator, build_schedule,
                        circuit_from_state, circuit_to_state, decode_atom,
                        encode_atom, kernel_for, optimize_circuit,
                        schedule_from_state, schedule_to_state,
                        validate_backend, validate_exact_mode)
from ..graphs import low_treedepth_coloring
from ..logic import Block, normalize
from ..logic.weighted import WExpr
from ..semirings import Semiring
from ..structures import LabeledForest, Structure
from .forest_compiler import ForestCompiler
from .stages import color_blocks, forest_from_structure


def _forest_to_state(forest: LabeledForest) -> Dict[str, Any]:
    """Serialize one labeled forest: nodes by index, parents as indices,
    labels/weights over node indices (sorted for determinism)."""
    nodes = list(forest.parent)
    index_of = {node: index for index, node in enumerate(nodes)}
    return {
        "nodes": [encode_atom(node) for node in nodes],
        "parent": [-1 if parent is None else index_of[parent]
                   for parent in forest.parent.values()],
        "labels": sorted(
            ([encode_atom(key), sorted(index_of[n] for n in members)]
             for key, members in forest.labels.items()),
            key=repr),
        "weights": sorted(
            ([encode_atom(name), sorted([index_of[n], encode_atom(value)]
                                        for n, value in mapping.items())]
             for name, mapping in forest.weights.items()),
            key=repr),
    }


def _forest_from_state(state: Any) -> LabeledForest:
    if not isinstance(state, dict) or \
            not isinstance(state.get("nodes"), list) or \
            not isinstance(state.get("parent"), list) or \
            len(state["nodes"]) != len(state["parent"]):
        raise PlanStateError("malformed forest state")
    nodes = [decode_atom(item) for item in state["nodes"]]
    parent = {node: (None if index < 0 else nodes[index])
              for node, index in zip(nodes, state["parent"])}
    labels = {decode_atom(key): {nodes[index] for index in members}
              for key, members in state.get("labels", ())}
    weights = {decode_atom(name): {nodes[index]: decode_atom(value)
                                   for index, value in entries}
               for name, entries in state.get("weights", ())}
    # The LabeledForest constructor re-derives depths/paths and rejects
    # parent cycles, so a tampered forest cannot produce silent garbage.
    return LabeledForest(parent, labels=labels, weights=weights)


def _non_clique_pair(gaifman, tup: Tuple) -> Optional[Tuple]:
    """The first pair of distinct elements of ``tup`` *not* adjacent in
    the Gaifman graph, or ``None`` when the tuple is a clique — the
    Theorem 24 update-model condition."""
    distinct = list(dict.fromkeys(tup))
    for i, a in enumerate(distinct):
        for b in distinct[i + 1:]:
            if not gaifman.has_edge(a, b):
                return (a, b)
    return None


@dataclass
class CompiledQuery:
    """A compiled closed weighted query over a fixed structure."""

    circuit: Circuit
    structure: Structure
    blocks: List[Block]
    coloring: Dict[Hashable, int]
    forests: List[Tuple[frozenset, LabeledForest]]
    gaifman: object  # cached Gaifman graph (fixed under the update model)
    recorded: Dict[Hashable, Tuple[str, object]]
    dynamic_relations: frozenset
    #: layered evaluation plan, built once at compile time and memoized
    #: (circuits are immutable after compilation/optimization, so the
    #: schedule never goes stale).
    _schedule: Optional[LayerSchedule] = field(
        default=None, repr=False, compare=False)
    #: bumped by every recorded-input mutation (weight updates, relation
    #: toggles); versions the memoized base valuations below.
    _input_version: int = field(default=0, repr=False, compare=False)
    #: semiring -> [version, base valuation dict,
    #: {kernel name: PreparedBase}] (guarded fast-path kernels and the
    #: object kernel have different dtypes, so each keeps its own column).
    _base_cache: Dict[Any, list] = field(default_factory=dict, repr=False,
                                         compare=False)
    #: accumulated vectorized-kernel telemetry ("requested"/"used" kernel
    #: names, guard-trip "fallbacks", "batches"), surfaced via stats().
    _kernel_stats: Dict[str, Any] = field(default_factory=dict, repr=False,
                                          compare=False)
    _kernel_stats_lock: Any = field(default_factory=threading.Lock,
                                    repr=False, compare=False)
    #: per-stage compile durations in seconds (normalize, coloring,
    #: forests, forest_compiler, optimize, schedule), recorded by
    #: ``_compile_structure_query`` and surfaced via stats(); empty for
    #: plans loaded from a store (the work was not done here) and shared
    #: across rebinds (the compilation *was* this one).
    _stage_seconds: Dict[str, float] = field(default_factory=dict,
                                             repr=False, compare=False)

    def schedule(self) -> LayerSchedule:
        """The circuit's layer schedule, computed once and cached."""
        if self._schedule is None:
            self._schedule = build_schedule(self.circuit)
        return self._schedule

    def _invalidate_inputs(self) -> None:
        """Called by every mutation of ``recorded``: stales the memoized
        base valuations (serving-path cache hook)."""
        self._input_version += 1

    def _cached_entry(self, sr: Semiring) -> list:
        """The memoized ``[version, base valuation, {kernel: PreparedBase}]``
        entry for ``sr``, rebuilt when an update has staled it.

        The base dict is shared across calls — callers must treat it as
        read-only (the batched evaluators overlay copies).  Entries go
        stale the moment an update lands; a concurrent in-flight batch
        may still read the old base, which is the documented serving
        semantics.  Derived state (the prepared columns) is always built
        from and stored into *one* entry object, so a stale base can
        never be planted in a fresh entry by a racing thread."""
        entry = self._base_cache.get(sr)
        if entry is None or entry[0] != self._input_version:
            entry = [self._input_version, self.input_valuation(sr), {}]
            self._base_cache[sr] = entry
        return entry

    def _cached_input_valuation(self, sr: Semiring) -> Dict[Hashable, Any]:
        """Memoized :meth:`input_valuation` for the batched hot path."""
        return self._cached_entry(sr)[1]

    def _cached_override_base(self, sr: Semiring, kernel: ArrayKernel):
        """Memoized :class:`PreparedBase` for the numpy override path,
        keyed by the kernel (fast-path and object columns differ)."""
        entry = self._cached_entry(sr)
        prepared = entry[2].get(kernel.name)
        if prepared is None:
            prepared = VectorizedEvaluator.prepare_base(
                self.circuit, sr, entry[1], schedule=self.schedule(),
                kernel=kernel)
            entry[2][kernel.name] = prepared
        return prepared

    def _note_kernel(self, evaluator: VectorizedEvaluator) -> None:
        """Fold one vectorized evaluation's kernel telemetry into the
        accumulated stats (which kernel ran, how many guard trips)."""
        with self._kernel_stats_lock:
            stats = self._kernel_stats
            stats["requested"] = evaluator.kernel_requested
            stats["used"] = evaluator.kernel_used
            stats["fallbacks"] = (stats.get("fallbacks", 0)
                                  + evaluator.fallbacks)
            stats["batches"] = stats.get("batches", 0) + 1

    def kernel_used(self) -> Optional[str]:
        """The exact kernel the last vectorized batch ran (``"int64"``,
        ``"object"``, ...), or ``None`` before any batch.  Cheap — reads
        the telemetry dict without the full circuit walk of :meth:`stats`
        (grouped sweeps read this per call)."""
        with self._kernel_stats_lock:
            return self._kernel_stats.get("used")

    def input_valuation(self, sr: Semiring) -> Dict[Hashable, Any]:
        """Carrier values for every recorded input gate."""
        values: Dict[Hashable, Any] = {}
        for key, (kind, raw) in self.recorded.items():
            values[key] = (sr.one if raw else sr.zero) if kind == "b" else raw
        return values

    def evaluate(self, sr: Semiring) -> Any:
        values = self.input_valuation(sr)
        return StaticEvaluator(self.circuit, sr,
                               lambda key: values.get(key, sr.zero)).value()

    def evaluate_batch(self, sr: Semiring, valuations: Sequence[Any],
                       backend: str = "auto",
                       workers: Optional[int] = None,
                       executor: Optional[Any] = None,
                       exact_mode: str = "auto") -> List[Any]:
        """Evaluate the circuit under N valuations in one batched pass.

        Each element of ``valuations`` is either a mapping of input keys
        to carrier values — interpreted as *overrides* of the structure's
        recorded weights, so ``{}`` reproduces :meth:`evaluate` — or a
        callable ``key -> value`` used as-is.  Returns one output value
        per valuation, in order.

        ``backend`` selects the evaluation substrate: ``"python"`` is
        the pure-Python :class:`BatchedEvaluator`; ``"numpy"`` is the
        layered :class:`VectorizedEvaluator` (raises if NumPy is missing
        or the semiring has no array kernel); ``"auto"`` (default) uses
        NumPy when available for the semiring and falls back to Python
        otherwise.  ``workers`` > 1 shards the batch across a thread
        pool — chunks evaluate independently over the shared (cached)
        schedule, so results are identical to the single-threaded path.
        Note threads only buy wall-clock parallelism for kernels whose
        reductions release the GIL (the ``float64`` carriers: floats and
        the tropical family); object-dtype kernels (``N``/``Z``/``Q``)
        and the pure-Python backend serialize on the GIL.

        ``executor`` lends an existing ``concurrent.futures`` executor
        for the ``workers`` sharding instead of constructing (and tearing
        down) a fresh thread pool per call — the hot-path form used by
        :class:`repro.api.Database`, which owns one pool for its whole
        lifetime.  The executor is not shut down here.

        ``exact_mode`` selects the vectorized kernel for the exact
        carriers (``N``/``Z``/``Q``): ``"auto"``/``"int64"`` pick the
        overflow-guarded native fast path (results stay exact — a guard
        trip transparently re-runs on the object kernel), ``"object"``
        forces the exact object-dtype kernel.  Validated eagerly through
        the same seam as ``backend`` (:mod:`repro.circuits.backends`).
        """
        validate_backend(backend)
        validate_exact_mode(exact_mode)
        valuations = list(valuations)
        kernel = None
        if backend != "python":
            kernel = kernel_for(sr, exact_mode)
            if kernel is None and backend == "numpy":
                raise RuntimeError(
                    f"backend='numpy' unavailable: numpy is not installed "
                    f"or semiring {sr.name} has no array kernel")
        if workers is not None and workers > 1 and len(valuations) > 1:
            if kernel is not None:
                self.schedule()  # build once, outside the pool
            size = -(-len(valuations) // workers)  # ceil division
            chunks = [valuations[i:i + size]
                      for i in range(0, len(valuations), size)]
            if executor is not None:
                parts = list(executor.map(
                    lambda chunk: self._evaluate_chunk(sr, chunk, kernel),
                    chunks))
            else:
                with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
                    parts = list(pool.map(
                        lambda chunk: self._evaluate_chunk(sr, chunk,
                                                           kernel),
                        chunks))
            return [value for part in parts for value in part]
        return self._evaluate_chunk(sr, valuations, kernel)

    def _evaluate_chunk(self, sr: Semiring, valuations: List[Any],
                        kernel: Optional[ArrayKernel]) -> List[Any]:
        zero = sr.zero
        if kernel is not None and not any(callable(v) for v in valuations):
            # Sparse-override fast path: the precomputed (memoized) base
            # input column is broadcast once, then only the per-valuation
            # edits are written.
            evaluator = VectorizedEvaluator.from_overrides(
                self.circuit, sr, self._cached_override_base(sr, kernel),
                valuations, schedule=self.schedule(), kernel=kernel)
            self._note_kernel(evaluator)
            return evaluator.results()
        base = self._cached_input_valuation(sr)
        fns = []
        for valuation in valuations:
            if callable(valuation):
                fns.append(valuation)
            else:
                overlay = dict(base)
                overlay.update(valuation)
                fns.append(lambda key, _o=overlay: _o.get(key, zero))
        if kernel is not None:
            evaluator = VectorizedEvaluator(self.circuit, sr, fns,
                                            schedule=self.schedule(),
                                            kernel=kernel)
            self._note_kernel(evaluator)
            return evaluator.results()
        return BatchedEvaluator(self.circuit, sr, fns).results()

    def dynamic(self, sr: Semiring, strategy: Optional[str] = None,
                on_change=None) -> "DynamicQuery":
        """Deprecated: use :meth:`repro.api.PreparedQuery.maintain`."""
        warn_deprecated("CompiledQuery.dynamic(...)",
                        "Database.prepare(expr).maintain(sr)")
        return self._dynamic(sr, strategy=strategy, on_change=on_change)

    def _dynamic(self, sr: Semiring, strategy: Optional[str] = None,
                 on_change=None) -> "DynamicQuery":
        """The Theorem 8/24 maintained handle (internal, warning-free)."""
        return DynamicQuery(self, sr, strategy=strategy, on_change=on_change)

    def rebind(self, structure: Structure) -> "CompiledQuery":
        """A fresh :class:`CompiledQuery` over ``structure``, sharing the
        immutable artifacts (circuit, layer schedule, blocks) and copying
        the mutable per-instance state (``recorded``, forests, coloring).

        ``structure`` must be content-equal to the structure the plan was
        compiled for (same fingerprint) — this is how the compile-plan
        cache hands one compilation to many consumers without aliasing
        their update state.
        """
        return CompiledQuery(
            self.circuit, structure, self.blocks, dict(self.coloring),
            [(colors, forest.copy()) for colors, forest in self.forests],
            structure.gaifman(), dict(self.recorded), self.dynamic_relations,
            _schedule=self._schedule, _stage_seconds=self._stage_seconds)

    # -- serialization -----------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """A versioned, data-only snapshot of the plan: circuit gates,
        layer schedule, coloring, forests, recorded inputs and dynamic
        relations — everything :meth:`from_state` needs except the host
        structure and the source expression (which the caller keys the
        plan by).  Raises :class:`~repro.circuits.PlanNotSerializable`
        when a recorded value falls outside the serializable vocabulary
        (e.g. a user-defined carrier object); see
        :mod:`repro.circuits.serialize` for the format.
        """
        return {
            "format": PLAN_FORMAT_VERSION,
            "circuit": circuit_to_state(self.circuit),
            "schedule": (schedule_to_state(self._schedule)
                         if self._schedule is not None else None),
            "coloring": [[encode_atom(element), color]
                         for element, color in self.coloring.items()],
            "forests": [[sorted(colors), _forest_to_state(forest)]
                        for colors, forest in self.forests],
            "recorded": [[encode_atom(key), kind, encode_atom(raw)]
                         for key, (kind, raw) in self.recorded.items()],
            "dynamic_relations": sorted(self.dynamic_relations),
        }

    @classmethod
    def from_state(cls, state: Any, structure: Structure,
                   expr: Optional[WExpr] = None) -> "CompiledQuery":
        """Rebuild a plan from :meth:`to_state` output over ``structure``
        (which must be content-equal to the compile-time structure — the
        persistent store enforces that through its fingerprint key).

        ``expr`` re-derives the normalized blocks (query-sized, cheap);
        the Gaifman graph comes from ``structure``.  Raises
        :class:`~repro.circuits.PlanStateError` on malformed state.
        """
        if not isinstance(state, dict):
            raise PlanStateError("malformed plan state")
        if state.get("format") != PLAN_FORMAT_VERSION:
            raise PlanStateError(
                f"plan state format {state.get('format')!r} != "
                f"{PLAN_FORMAT_VERSION}")
        try:
            circuit = circuit_from_state(state["circuit"])
            schedule = (schedule_from_state(circuit, state["schedule"])
                        if state.get("schedule") is not None else None)
            coloring = {decode_atom(element): color
                        for element, color in state["coloring"]}
            forests = [(frozenset(colors), _forest_from_state(forest_state))
                       for colors, forest_state in state["forests"]]
            recorded: Dict[Hashable, Tuple[str, object]] = {}
            for key, kind, raw in state["recorded"]:
                if kind not in ("b", "w"):
                    raise PlanStateError(f"unknown recorded kind {kind!r}")
                recorded[decode_atom(key)] = (kind, decode_atom(raw))
            dynamic = frozenset(state["dynamic_relations"])
        except PlanStateError:
            raise
        except (KeyError, IndexError, TypeError, ValueError) as error:
            raise PlanStateError(f"malformed plan state: {error}") from None
        blocks = normalize(expr) if expr is not None else []
        return cls(circuit, structure, blocks, coloring, forests,
                   structure.gaifman(), recorded, dynamic,
                   _schedule=schedule)

    def stats(self) -> Dict[str, Any]:
        info = self.circuit.stats()
        info["color_subsets"] = len(self.forests)
        info["colors"] = len(set(self.coloring.values())) if self.coloring else 0
        info["max_forest_height"] = max(
            (forest.height() for _, forest in self.forests), default=0)
        with self._kernel_stats_lock:
            if self._kernel_stats:
                info["exact_kernel"] = dict(self._kernel_stats)
        if self._stage_seconds:
            info["compile_stages"] = dict(self._stage_seconds)
        return info

    # -- update routing ---------------------------------------------------------
    # Input gates are keyed by the *original* fact: ("w", name, tup) for
    # weights and ("dynrel", name, tup, positive) for dynamic relations, so
    # one update touches exactly one (resp. two) input gates regardless of
    # how many color subsets mention the fact.

    def can_mark(self, name: str, tup: Tuple) -> bool:
        """Whether :meth:`mark_relation` would accept this toggle: the
        relation is declared dynamic and the tuple is a clique of the
        compile-time Gaifman graph (the Theorem 24 update model).  The
        one shared predicate behind every pre-validation (e.g. the
        facade's transaction checks on live services)."""
        return (name in self.dynamic_relations
                and _non_clique_pair(self.gaifman, tuple(tup)) is None)

    def mark_relation(self, name: str, tup: Tuple, present: bool
                      ) -> List[Tuple[Hashable, bool]]:
        """Record a Gaifman-preserving relation toggle; returns the input
        keys whose boolean state changed (for the evaluator/enumerator to
        apply).  Validates the Theorem 24 update model."""
        if name not in self.dynamic_relations:
            raise ValueError(f"{name} was not declared dynamic")
        tup = tuple(tup)
        if _non_clique_pair(self.gaifman, tup) is not None:
            raise ValueError(
                f"tuple {tup!r} is not a clique of the Gaifman "
                f"graph; such updates change the Gaifman graph and "
                f"are outside the Theorem 24 update model")
        if present:
            self.structure.add_tuple(name, tup)
        else:
            self.structure.remove_tuple(name, tup)
        for _, forest in self.forests:
            if all(element in forest.parent for element in tup):
                if len(tup) == 1:
                    forest.set_label(("rel", name), tup[0], present)
                else:
                    depths = tuple(forest.depth[e] for e in tup)
                    deepest = max(tup, key=lambda e: forest.depth[e])
                    forest.set_label(("reltup", name, depths),
                                     deepest, present)
        changed: List[Tuple[Hashable, bool]] = []
        for positive in (True, False):
            key = ("dynrel", name, tup, positive)
            if key in self.recorded:
                state = present == positive
                self.recorded[key] = ("b", state)
                changed.append((key, state))
        if changed:
            self._invalidate_inputs()
        return changed


class DynamicQuery:
    """Theorem 8 / Theorem 24 dynamic data structure."""

    def __init__(self, compiled: CompiledQuery, sr: Semiring,
                 strategy: Optional[str] = None, on_change=None):
        self.compiled = compiled
        self.sr = sr
        values = compiled.input_valuation(sr)
        self.evaluator = DynamicEvaluator(
            compiled.circuit, sr, lambda key: values.get(key, sr.zero),
            strategy=strategy, on_change=on_change)

    def value(self) -> Any:
        return self.evaluator.value()

    def update_weight(self, name: str, tup: Tuple, value: Any) -> int:
        """Set ``name(tup) = value``; returns gates touched.  Only tuples
        declared at compile time are updatable (supports, hence the Gaifman
        graph, stay fixed — the paper's update model)."""
        compiled = self.compiled
        tup = tuple(tup)
        if tup not in compiled.structure.weights.get(name, {}):
            raise KeyError(f"{name}{tup} was not declared at compile time")
        # Through set_weight, not a raw dict write: the structure's
        # content caches (fingerprint, Gaifman) must see the mutation.
        compiled.structure.set_weight(name, tup, value)
        key = ("w", name, tup)
        touched = 0
        if key in compiled.recorded:
            compiled.recorded[key] = ("w", value)
            compiled._invalidate_inputs()
            touched = self.evaluator.update_input(key, value)
        return touched

    def set_relation(self, name: str, tup: Tuple, present: bool) -> int:
        """Gaifman-preserving relation update (Theorem 24's model): toggle
        membership of a tuple whose elements form a clique of the (fixed)
        Gaifman graph.  ``name`` must be declared dynamic at compile time."""
        sr = self.sr
        touched = 0
        for key, state in self.compiled.mark_relation(name, tup, present):
            touched += self.evaluator.update_input(
                key, sr.one if state else sr.zero)
        return touched


def plan_cache_key(structure: Structure, expr: WExpr,
                   dynamic_relations: Sequence[str] = (),
                   optimize: bool = True) -> Tuple:
    """The compile-plan cache key: everything the compiled circuit depends
    on.  The structure enters via its content :meth:`~Structure.fingerprint`
    (domain order, relations, weight values), the expression via its
    canonical ``repr`` (expressions are frozen dataclasses with
    deterministic reprs)."""
    return (structure.fingerprint(), repr(expr),
            frozenset(dynamic_relations), bool(optimize))


def compile_structure_query(structure: Structure, expr: WExpr,
                            dynamic_relations: Sequence[str] = (),
                            coloring: Optional[Dict[Hashable, int]] = None,
                            optimize: bool = True,
                            plan_cache: Optional[Any] = None,
                            plan_store: Optional[Any] = None,
                            verify: Optional[bool] = None
                            ) -> CompiledQuery:
    """Deprecated seam: compile ``expr`` over ``structure`` (Theorem 6).

    Use :meth:`repro.api.Database.prepare` instead — the facade owns the
    plan cache, consolidates the kwargs into :class:`repro.api.ExecOptions`,
    and keeps every derived cache coherent under updates.  This shim
    delegates unchanged (one :class:`DeprecationWarning` per call).
    """
    warn_deprecated("compile_structure_query(...)",
                    "Database(structure).prepare(expr)")
    return _compile_structure_query(structure, expr,
                                    dynamic_relations=dynamic_relations,
                                    coloring=coloring, optimize=optimize,
                                    plan_cache=plan_cache,
                                    plan_store=plan_store, verify=verify)


def _compile_structure_query(structure: Structure, expr: WExpr,
                             dynamic_relations: Sequence[str] = (),
                             coloring: Optional[Dict[Hashable, int]] = None,
                             optimize: bool = True,
                             plan_cache: Optional[Any] = None,
                             plan_store: Optional[Any] = None,
                             verify: Optional[bool] = None
                             ) -> CompiledQuery:
    """Theorem 6 end-to-end (quantifier-free brackets; see repro.qe for
    eliminating quantifiers first).

    ``optimize`` runs the :mod:`repro.circuits.optimize` default pass
    pipeline (constant folding, fan-in flattening, CSE/DCE) over the
    compiled circuit before it is handed to the evaluators; the rewrite
    preserves the circuit's value in every semiring and rebuilds the
    input-gate table, so updates and enumeration are unaffected.  Pass
    ``optimize=False`` to keep the raw Theorem 6 circuit (the shape the
    paper's size bounds are stated for).

    ``plan_cache`` (e.g. :class:`repro.serve.PlanCache`) memoizes whole
    compilations keyed by :func:`plan_cache_key`: on a hit the cached
    plan is :meth:`~CompiledQuery.rebind`-ed to ``structure`` — sharing
    the immutable circuit and layer schedule, copying the mutable update
    state — and the normalize/color/forest/compile stages are skipped
    entirely.  An explicit ``coloring`` bypasses the cache (the coloring
    is an input the key does not capture).

    ``plan_store`` (a :class:`repro.serve.PlanStore`) is the persistent
    tier *under* the in-memory cache, on the same key: memory miss →
    disk load (also seeding the memory cache) → compile, with the
    compiled plan written back to disk.  A corrupt or stale entry is a
    miss (recompile), never an error.

    ``verify`` runs the IR verifier
    (:func:`repro.analysis.verify_plan`) over the freshly compiled
    plan before it is returned or persisted — the opt-in post-compile
    trust seam.  ``None`` (default) defers to the
    ``REPRO_VERIFY_PLANS`` environment variable.  Plans loaded from
    ``plan_store`` are always verified by the store itself (disk bytes
    are untrusted); in-memory cache hits rebind plans this process
    already produced, so they are not re-verified.
    """
    if (plan_cache is not None or plan_store is not None) \
            and coloring is None:
        key = plan_cache_key(structure, expr, dynamic_relations, optimize)
        if plan_cache is not None:
            template = plan_cache.lookup(key)
            if template is not None:
                return template.rebind(structure)
        if plan_store is not None:
            loaded = plan_store.load(key, structure, expr)
            if loaded is not None:
                if plan_cache is not None:
                    # Seed the memory tier: later lookups in this
                    # process must not touch disk again.
                    plan_cache.store(key, loaded.rebind(structure))
                return loaded
        compiled = _compile_structure_query(
            structure, expr, dynamic_relations=dynamic_relations,
            optimize=optimize, verify=verify)
        # Store a pristine snapshot: the caller may mutate its plan's
        # recorded weights/forest labels, which must not drift the cached
        # template away from the content the key fingerprints.
        if plan_cache is not None:
            plan_cache.store(key, compiled.rebind(structure))
        if plan_store is not None:
            # Serialized immediately (before the caller can mutate the
            # plan); unserializable carriers skip quietly.
            plan_store.save(key, compiled)
        return compiled

    stage_seconds: Dict[str, float] = {}
    stamp = time.perf_counter()

    def _stage(name: str) -> None:
        # Accumulating (not assigning) lets the forest/compile stages
        # interleave per color subset and still report clean totals.
        nonlocal stamp
        now = time.perf_counter()
        stage_seconds[name] = stage_seconds.get(name, 0.0) + (now - stamp)
        stamp = now

    blocks = normalize(expr)
    width = max((len(b.vars) for b in blocks), default=0)
    dynamic = frozenset(dynamic_relations)
    _stage("normalize")

    builder = CircuitBuilder()
    recorded: Dict[Hashable, Tuple[str, object]] = {}
    tops: List[Optional[int]] = []

    constant_blocks = [b for b in blocks if not b.vars]
    variable_blocks = [b for b in blocks if b.vars]
    if constant_blocks:
        compiler = ForestCompiler(LabeledForest({}), builder,
                                  recorded=recorded)
        tops.append(compiler.compile_blocks(constant_blocks))
        _stage("forest_compiler")

    color_of: Dict[Hashable, int] = {}
    forests: List[Tuple[frozenset, LabeledForest]] = []
    if variable_blocks and structure.domain:
        if coloring is None:
            coloring = low_treedepth_coloring(structure.gaifman(),
                                              max(width, 1))
        color_of = dict(coloring)
        palette = sorted(set(color_of.values()))
        _stage("coloring")
        for size in range(1, width + 1):
            for subset in itertools.combinations(palette, size):
                refined: List[Block] = []
                for block in variable_blocks:
                    if len(block.vars) >= size:
                        refined.extend(color_blocks(block, subset))
                if not refined:
                    continue
                part = [v for v in structure.domain
                        if color_of[v] in set(subset)]
                if not part:
                    continue
                stamp = time.perf_counter()
                forest = forest_from_structure(structure, part)
                for color in subset:
                    forest.labels[("color", color)] = {
                        v for v in part if color_of[v] == color}
                forests.append((frozenset(subset), forest))
                _stage("forests")
                compiler = ForestCompiler(forest, builder,
                                          dynamic_relations=dynamic,
                                          recorded=recorded)
                tops.append(compiler.compile_blocks(refined))
                _stage("forest_compiler")

    stamp = time.perf_counter()
    circuit = builder.build(builder.add(tops))
    if optimize:
        circuit = optimize_circuit(circuit).circuit
        _stage("optimize")
    compiled = CompiledQuery(circuit, structure, blocks, color_of, forests,
                             structure.gaifman(), recorded, dynamic,
                             _stage_seconds=stage_seconds)
    if HAVE_NUMPY:
        # Precompute the layered evaluation plan now: the circuit is
        # immutable from here on, so the schedule is paid once per compile
        # and every vectorized batched evaluation reuses it.  Numpy-less
        # installs have no consumer (the python backend walks the circuit
        # directly), so they keep the lazy schedule() accessor only.
        stamp = time.perf_counter()
        compiled.schedule()
        _stage("schedule")
    # Post-compile trust seam (opt-in): catch a compiler/optimizer bug
    # at the source instead of deep inside an evaluation.  Imported
    # lazily — repro.core must not pay for repro.analysis on every use.
    from ..analysis.verify import verification_enabled
    if verification_enabled(verify):
        from ..analysis.verify import verify_plan
        verify_plan(compiled)
    return compiled
