"""The paper's core contribution (system S7): the Theorem 6 compiler."""

from .forest_compiler import (ForestCompiler, Fragment, chain_info,
                              compile_forest_query, exclusive_assignments,
                              labeled_shapes_for_block, required_comparable,
                              residual_formula, weight_depth_index)
from .pipeline import (CompiledQuery, DynamicQuery, _compile_structure_query,
                       compile_structure_query, plan_cache_key)
from .shapes import Shape, enumerate_shapes
from .stages import (DegeneracyEncoding, color_blocks, forest_from_structure,
                     stage_degeneracy, stage_forest)

__all__ = [
    "Shape", "enumerate_shapes", "ForestCompiler", "Fragment", "chain_info",
    "compile_forest_query", "residual_formula", "exclusive_assignments",
    "required_comparable", "labeled_shapes_for_block", "weight_depth_index",
    "stage_degeneracy", "stage_forest", "forest_from_structure",
    "color_blocks", "DegeneracyEncoding",
    "CompiledQuery", "DynamicQuery", "compile_structure_query",
    "plan_cache_key",
]
