"""The forest compiler: Case 1 of Theorem 6 (Lemma 29).

Compiles sum-of-product blocks over a labeled bounded-depth forest into a
circuit with permanent gates:

1. enumerate the shapes of the block's variable tuple (Lemma 32's mutually
   exclusive decomposition into basic expressions);
2. partially evaluate every bracket under the shape — equalities and parent
   atoms collapse to constants, function atoms become unary label tests —
   and expand the small residual into an exclusive DNF (Shannon paths);
3. attach the resulting per-class factor lists and run the Claim-1
   recursion bottom-up over the data forest: the gate of a shape fragment
   at node ``v`` is the product of its factors at ``v`` with a permanent
   over (child fragments) x (children of ``v``).

Fragments are hash-consed across shapes and nodes, so the circuit is a DAG
of size linear in the forest with query-dependent constants, bounded depth
(twice the forest height) and bounded fan-out — the Theorem 6 guarantees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from ..circuits import CircuitBuilder, GateId
from ..logic import Block
from ..logic.fo import (FALSE, TRUE, Atom, Eq, Formula, FuncAtom, LabelAtom,
                        Truth, assign_atoms, atoms_of, conj, map_atoms)
from ..structures import LabeledForest
from .shapes import ClassId, Shape, enumerate_shapes

# A factor attached to a shape class, evaluated per data node:
#   ("label", key, positive)  -- 0/1 test of a forest label
#   ("weight", name)          -- the input gate (name, node)
Factor = Tuple


@dataclass(frozen=True)
class Fragment:
    """A rooted sub-shape with per-class factors, canonical & hash-consed."""

    depth: int
    factors: Tuple[Factor, ...]
    children: Tuple["Fragment", ...]

    def sort_key(self) -> str:
        return repr((self.depth, self.factors,
                     tuple(c.sort_key() for c in self.children)))


def chain_info(shape: Shape, terms: Sequence[str]):
    """Depth pattern of a term tuple when its classes lie on one root-path.

    Returns ``(depths, deepest_var)`` or ``None`` when some pair of terms is
    incomparable under the shape (a tuple of a relation or weight is a
    clique of the Gaifman graph, hence a chain in any covering forest, so
    incomparable shapes contribute nothing).
    """
    distinct = list(dict.fromkeys(terms))
    for i, a in enumerate(distinct):
        for b in distinct[i + 1:]:
            if shape.relation(a, b)[0] == "incomparable":
                return None
    depths = tuple(shape.depth_of[t] for t in terms)
    deepest = max(terms, key=lambda t: shape.depth_of[t])
    return depths, deepest


def residual_formula(formula: Formula, shape: Shape) -> Formula:
    """Partial evaluation of a bracket under a shape (step 2 above)."""
    def resolve(atom: Formula) -> Formula:
        if isinstance(atom, Truth):
            return atom
        if isinstance(atom, Eq):
            return Truth(shape.same_node(atom.left, atom.right))
        if isinstance(atom, LabelAtom):
            return atom
        if isinstance(atom, Atom):
            if len(atom.terms) == 1:
                return LabelAtom(("rel", atom.relation), atom.terms[0])
            info = chain_info(shape, atom.terms)
            if info is None:
                return FALSE
            depths, deepest = info
            return LabelAtom(("reltup", atom.relation, depths), deepest)
        if isinstance(atom, FuncAtom):
            func = atom.func
            if isinstance(func, tuple) and func and func[0] == "parent":
                steps = func[1] if len(func) > 1 else 1
                target_depth = shape.depth_of[atom.arg] - steps
                target = shape.ancestor_class(atom.arg, target_depth)
                return Truth(target == shape.var_class[atom.out])
            if func == "parent":
                target = shape.ancestor_class(
                    atom.arg, shape.depth_of[atom.arg] - 1)
                return Truth(target == shape.var_class[atom.out])
            kind = shape.relation(atom.arg, atom.out)
            if kind[0] == "same":
                return LabelAtom(("fself", func), atom.arg)
            if kind[0] == "below":       # out is the ancestor of arg
                return LabelAtom(("fup", func, kind[1]), atom.arg)
            if kind[0] == "above":       # arg is the ancestor of out
                return LabelAtom(("fdown", func, kind[1]), atom.out)
            return FALSE
        raise TypeError(f"forest compiler cannot resolve atom {atom!r}")

    return map_atoms(formula, resolve)


def exclusive_assignments(formula: Formula) -> List[Dict[LabelAtom, bool]]:
    """Shannon expansion: mutually exclusive partial assignments of the
    formula's atoms that make it true (they partition the satisfying set)."""
    formula = assign_atoms(formula, {})
    if formula == TRUE:
        return [{}]
    if formula == FALSE:
        return []
    atom = atoms_of(formula)[0]
    out: List[Dict[LabelAtom, bool]] = []
    for value in (True, False):
        reduced = assign_atoms(formula, {atom: value})
        for assignment in exclusive_assignments(reduced):
            assignment[atom] = value
            out.append(assignment)
    return out


def required_comparable(block: Block) -> Set[FrozenSet[str]]:
    """Pairs of variables that every contributing tuple embeds on one
    root-path.  Two sound sources: (i) variables sharing a weight factor
    (weights are supported on cliques, hence chains); (ii) pairs whose
    crossing atoms, when forced false, make the bracket conjunction
    unsatisfiable as a boolean abstraction."""
    forced: Set[FrozenSet[str]] = set()
    for _, terms in block.weight_factors:
        for x, y in itertools.combinations(set(terms), 2):
            forced.add(frozenset((x, y)))
    combined = conj(*block.brackets)
    for x, y in itertools.combinations(block.vars, 2):
        pair = {x, y}
        if frozenset(pair) in forced:
            continue

        def kill(atom: Formula) -> Formula:
            if isinstance(atom, Eq) and {atom.left, atom.right} == pair:
                return FALSE
            if isinstance(atom, FuncAtom) and {atom.arg, atom.out} == pair:
                return FALSE
            if isinstance(atom, Atom) and len(atom.terms) > 1 and \
                    pair <= set(atom.terms):
                return FALSE
            return atom

        reduced = map_atoms(combined, kill)
        if not exclusive_assignments(reduced):
            forced.add(frozenset(pair))
    return forced


def weight_depth_index(forest: LabeledForest) -> Dict[str, Set[Tuple[int, ...]]]:
    """Realized depth patterns per original weight symbol in this forest.

    The forest encoding stores an arity-r weight tuple under the key
    ``("wtup", name, depths)`` at the chain's deepest node; the index maps
    ``name`` to its realized ``depths`` tuples (update-safe: supports are
    fixed, only values change)."""
    index: Dict[str, Set[Tuple[int, ...]]] = {}
    for key in forest.weights:
        if isinstance(key, tuple) and key and key[0] == "wtup":
            _, name, depths = key
            index.setdefault(name, set()).add(depths)
    return index


def variable_depth_sets(forest: LabeledForest, block: Block,
                        index: Dict[str, Set[Tuple[int, ...]]]
                        ) -> Optional[Dict[str, Set[int]]]:
    """Per-variable allowed depths from declared weight supports.

    A factor ``w(x)`` (unary) restricts ``x`` to depths where ``w`` is
    declared; an arity-r factor restricts each argument position to the
    projection of the realized depth patterns.  Returns ``None`` when some
    variable has no allowed depth (the block contributes nothing here).
    """
    allowed: Dict[str, Set[int]] = {}

    def restrict(var: str, depths: Set[int]) -> None:
        if var in allowed:
            allowed[var] &= depths
        else:
            allowed[var] = set(depths)

    for name, terms in block.weight_factors:
        if len(terms) == 1:
            support = forest.weights.get(name, {})
            restrict(terms[0], {forest.depth[node] for node in support})
        else:
            patterns = index.get(name, set())
            for position, var in enumerate(terms):
                restrict(var, {depths[position] for depths in patterns})
    if any(not depths for depths in allowed.values()):
        return None
    return allowed


def labeled_shapes_for_block(block: Block, forest: LabeledForest
                             ) -> List[Tuple[Shape, Dict[ClassId, List[Factor]]]]:
    """Steps 1-2: shapes with per-class factor lists for one block."""
    max_depth = forest.height() - 1
    if max_depth < 0 and block.vars:
        return []
    comparable = required_comparable(block)
    index = weight_depth_index(forest)
    allowed = variable_depth_sets(forest, block, index)
    if allowed is None:
        return []
    out: List[Tuple[Shape, Dict[ClassId, List[Factor]]]] = []
    for shape in enumerate_shapes(block.vars, max(max_depth, 0),
                                  comparable_pairs=comparable,
                                  allowed_depths=allowed or None):
        weight_attach: List[Tuple[ClassId, Factor]] = []
        feasible = True
        for name, terms in block.weight_factors:
            if len(terms) == 1:
                weight_attach.append((shape.var_class[terms[0]],
                                      ("weight", name)))
                continue
            info = chain_info(shape, terms)
            if info is None:
                feasible = False
                break
            depths, deepest = info
            if depths not in index.get(name, ()):
                feasible = False  # no declared tuple has this pattern
                break
            weight_attach.append((shape.var_class[deepest],
                                  ("weight", ("wtup", name, depths))))
        if not feasible:
            continue
        residuals = [residual_formula(f, shape) for f in block.brackets]
        combined = conj(*residuals)
        if combined == FALSE:
            continue
        for assignment in exclusive_assignments(combined):
            factors: Dict[ClassId, List[Factor]] = {}
            for atom, positive in sorted(assignment.items(), key=repr):
                cid = shape.var_class[atom.var]
                factors.setdefault(cid, []).append(
                    ("label", atom.label, positive))
            for cid, factor in weight_attach:
                factors.setdefault(cid, []).append(factor)
            out.append((shape, factors))
    return out


def build_fragment(shape: Shape, cid: ClassId,
                   factors: Dict[ClassId, List[Factor]]) -> Fragment:
    children = tuple(sorted(
        (build_fragment(shape, child, factors)
         for child in shape.children[cid]),
        key=Fragment.sort_key))
    own = tuple(sorted(factors.get(cid, []), key=repr))
    return Fragment(cid[0], own, children)


class ForestCompiler:
    """Step 3: the bottom-up Claim-1 recursion over the data forest."""

    def __init__(self, forest: LabeledForest, builder: CircuitBuilder,
                 dynamic_relations: FrozenSet[str] = frozenset(),
                 recorded: Optional[Dict[Hashable, Tuple[str, object]]] = None):
        self.forest = forest
        self.builder = builder
        self.dynamic_relations = dynamic_relations
        #: initial values of emitted input gates, shared across color
        #: subsets: key -> ("w", raw weight) | ("b", bool).
        self.recorded: Dict[Hashable, Tuple[str, object]] = \
            recorded if recorded is not None else {}
        # gates[node][fragment] -> GateId | None
        self.gates: Dict[Hashable, Dict[Fragment, Optional[GateId]]] = {}
        self._compiled_fragments: Set[Fragment] = set()

    def _is_dynamic(self, label_key: Hashable) -> bool:
        return (isinstance(label_key, tuple) and len(label_key) >= 2
                and label_key[0] in ("rel", "reltup")
                and label_key[1] in self.dynamic_relations)

    def _decode(self, label_key: Tuple, node) -> Tuple:
        """Original tuple encoded by a ``rel``/``reltup`` label at ``node``."""
        if label_key[0] == "rel":
            return (node,)
        depths = label_key[2]
        return tuple(self.forest.ancestor(node, d) for d in depths)

    def _decode_weight(self, stage_name, node) -> Tuple:
        """``(original name, original tuple)`` for a weight factor."""
        if isinstance(stage_name, tuple) and stage_name \
                and stage_name[0] == "wtup":
            _, name, depths = stage_name
            return (name, tuple(self.forest.ancestor(node, d)
                                for d in depths))
        return (stage_name, (node,))

    def compile_blocks(self, blocks: Sequence[Block]) -> Optional[GateId]:
        """The sum of all blocks' values as a gate (None == constant zero)."""
        builder = self.builder
        tops: List[Optional[GateId]] = []
        for block in blocks:
            const_gates = [builder.const(value) for value in block.const_factors]
            if not block.vars:
                # Variable-free block: brackets fold to constants.
                combined = conj(*block.brackets)
                if combined == TRUE:
                    tops.append(builder.mul(const_gates))
                elif combined == FALSE:
                    tops.append(None)
                else:  # pragma: no cover - atoms always carry variables
                    raise ValueError(
                        f"variable-free block with open bracket {combined!r}")
                continue
            for shape, factors in labeled_shapes_for_block(block, self.forest):
                root_fragments = [build_fragment(shape, root, factors)
                                  for root in shape.roots]
                for fragment in root_fragments:
                    self._ensure_fragment(fragment)
                entries = [[self.gates.get(root, {}).get(fragment)
                            for root in self.forest.roots]
                           for fragment in root_fragments]
                gate = builder.perm(entries)
                tops.append(builder.mul(const_gates + [gate])
                            if gate is not None else None)
        return builder.add(tops)

    # -- fragment DP -------------------------------------------------------------

    def _ensure_fragment(self, fragment: Fragment) -> None:
        """Compute ``gates[node][fragment]`` for every node of matching
        depth (children first, once per fragment)."""
        if fragment in self._compiled_fragments:
            return
        self._compiled_fragments.add(fragment)
        for child in fragment.children:
            self._ensure_fragment(child)
        by_depth = self.forest.nodes_by_depth()
        for node in by_depth.get(fragment.depth, ()):
            gate = self._compile_at(node, fragment)
            self.gates.setdefault(node, {})[fragment] = gate

    def _compile_at(self, node, fragment: Fragment) -> Optional[GateId]:
        builder = self.builder
        parts: List[Optional[GateId]] = []
        for factor in fragment.factors:
            if factor[0] == "label":
                _, key, positive = factor
                present = self.forest.has_label(key, node)
                if self._is_dynamic(key):
                    # Key by the decoded original tuple, so the same fact
                    # shares one input gate across all color subsets.
                    input_key = ("dynrel", key[1],
                                 self._decode(key, node), positive)
                    self.recorded[input_key] = ("b", present == positive)
                    parts.append(builder.input(input_key))
                elif present != positive:
                    return None
            elif factor[0] == "weight":
                _, name = factor
                support = self.forest.weights.get(name, {})
                if node not in support:
                    return None
                input_key = ("w",) + self._decode_weight(name, node)
                self.recorded[input_key] = ("w", support[node])
                parts.append(builder.input(input_key))
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown factor {factor!r}")
        if fragment.children:
            columns = self.forest.children[node]
            entries = [[self.gates.get(child, {}).get(sub)
                        for child in columns]
                       for sub in fragment.children]
            perm = builder.perm(entries)
            if perm is None:
                return None
            parts.append(perm)
        return builder.mul(parts) if parts else builder.one()


def compile_forest_query(forest: LabeledForest, blocks: Sequence[Block],
                         builder: Optional[CircuitBuilder] = None,
                         dynamic_relations: FrozenSet[str] = frozenset()):
    """Convenience wrapper: compile blocks over a forest into a circuit."""
    builder = builder or CircuitBuilder()
    compiler = ForestCompiler(forest, builder,
                              dynamic_relations=dynamic_relations)
    output = compiler.compile_blocks(blocks)
    return builder.build(output)
