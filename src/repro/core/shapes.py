"""Shapes: ancestor-term equivalence patterns over bounded-depth forests.

A *shape* (paper, appendix A.2) fixes, for a tuple of variables embedded in
a rooted forest, (i) the depth of every variable and (ii) which ancestors
coincide.  Shapes partition all variable tuples, so a sum block splits into
a mutually exclusive sum of *basic expressions*, one per shape (Lemma 32) —
the decomposition the circuit construction of Lemma 29 recurses on.

We encode a shape by the variable depths plus the *meet matrix*:
``meet(x, y)`` is the depth of the deepest common ancestor (``-1`` when the
variables sit in different trees).  Valid meet matrices are exactly the
symmetric, ultrametric-like ones; :func:`enumerate_shapes` enumerates them
with two data-driven prunings that keep the constant factors sane:

* pairs the query forces to be comparable have a *forced* meet,
* per-variable depth sets can be restricted (e.g. to the depths where a
  required weight is supported in the data).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

ClassId = Tuple[int, FrozenSet[str]]  # (depth, variables whose path passes here)


class Shape:
    """One ancestor-equivalence pattern for a fixed variable tuple.

    Classes are the equivalence classes of ancestor terms ``(x, j)``
    (the ancestor of ``x`` at absolute depth ``j``); the class of ``(x, j)``
    is identified by ``(j, {y : meet(x, y) >= j})``.
    """

    def __init__(self, variables: Tuple[str, ...], depths: Tuple[int, ...],
                 meets: Dict[FrozenSet[str], int]):
        self.variables = variables
        self.depth_of: Dict[str, int] = dict(zip(variables, depths))
        self.meets = meets
        self._classes: Dict[ClassId, None] = {}
        self.var_class: Dict[str, ClassId] = {}
        for x in variables:
            for level in range(self.depth_of[x] + 1):
                cid = self._class_at(x, level)
                self._classes.setdefault(cid, None)
            self.var_class[x] = self._class_at(x, self.depth_of[x])
        self.classes: List[ClassId] = list(self._classes)
        self.parent: Dict[ClassId, Optional[ClassId]] = {}
        self.children: Dict[ClassId, List[ClassId]] = {c: [] for c in self.classes}
        for cid in self.classes:
            level, members = cid
            if level == 0:
                self.parent[cid] = None
            else:
                x = next(iter(members))
                parent = self._class_at(x, level - 1)
                self.parent[cid] = parent
                self.children[parent].append(cid)
        self.roots: List[ClassId] = [c for c in self.classes if c[0] == 0]

    def meet(self, x: str, y: str) -> int:
        if x == y:
            return self.depth_of[x]
        return self.meets[frozenset((x, y))]

    def _class_at(self, x: str, level: int) -> ClassId:
        members = frozenset(y for y in self.variables
                            if self.depth_of[y] >= level
                            and self.meet(x, y) >= level)
        return (level, members)

    # -- relations used by residual evaluation ---------------------------------

    def same_node(self, x: str, y: str) -> bool:
        return self.var_class[x] == self.var_class[y]

    def relation(self, x: str, y: str):
        """Relative position of ``x`` and ``y``:

        ``("same", d)``, ``("above", j)`` (x is the ancestor of y at depth j),
        ``("below", j)`` (y is the ancestor of x at depth j), or
        ``("incomparable", m)``.
        """
        dx, dy = self.depth_of[x], self.depth_of[y]
        m = self.meet(x, y)
        if m == dx == dy:
            return ("same", dx)
        if m == dx < dy:
            return ("above", dx)
        if m == dy < dx:
            return ("below", dy)
        return ("incomparable", m)

    def ancestor_class(self, x: str, level: int) -> ClassId:
        """Class of ``x``'s ancestor at absolute depth ``level`` (saturating
        at the root as in the paper's parent convention)."""
        return self._class_at(x, max(0, min(level, self.depth_of[x])))

    def key(self) -> Tuple:
        return (self.variables,
                tuple(self.depth_of[x] for x in self.variables),
                tuple(sorted(self.meets.items(), key=repr)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{x}@{self.depth_of[x]}" for x in self.variables]
        return f"<Shape {' '.join(parts)} meets={dict(self.meets)}>"


def enumerate_shapes(variables: Sequence[str], max_depth: int,
                     comparable_pairs: Set[FrozenSet[str]] = frozenset(),
                     allowed_depths: Optional[Dict[str, Set[int]]] = None
                     ) -> Iterator[Shape]:
    """All consistent shapes for ``variables`` with depths ``<= max_depth``.

    ``comparable_pairs`` lists pairs that must embed on a common root-path
    (their meet is then forced to ``min`` of the depths, eliminating the
    meet enumeration for them — the crucial pruning for chain-like queries
    such as the triangle query).  ``allowed_depths`` restricts per-variable
    depths, e.g. to the support depths of a required weight.
    """
    variables = tuple(variables)
    p = len(variables)
    if p == 0:
        yield Shape((), (), {})
        return
    depth_options = []
    for x in variables:
        options = sorted(allowed_depths.get(x, range(max_depth + 1))
                         if allowed_depths else range(max_depth + 1))
        depth_options.append([d for d in options if 0 <= d <= max_depth])
    pairs = [frozenset((variables[i], variables[j]))
             for i in range(p) for j in range(i + 1, p)]

    for depths in itertools.product(*depth_options):
        depth_of = dict(zip(variables, depths))
        # Meet candidates per pair; forced for comparable pairs.
        candidates: List[List[int]] = []
        for pair in pairs:
            x, y = tuple(pair)
            bound = min(depth_of[x], depth_of[y])
            if pair in comparable_pairs:
                candidates.append([bound])
            else:
                candidates.append(list(range(-1, bound + 1)))
        for combo in itertools.product(*candidates):
            meets = dict(zip(pairs, combo))
            if _ultrametric_ok(variables, depth_of, meets):
                yield Shape(variables, depths, meets)


def _ultrametric_ok(variables: Tuple[str, ...], depth_of: Dict[str, int],
                    meets: Dict[FrozenSet[str], int]) -> bool:
    """Validity of a meet matrix: among the three pairwise meets of any
    variable triple, the minimum occurs at least twice (ancestor paths in a
    forest branch at a unique depth)."""
    def meet(x: str, y: str) -> int:
        return depth_of[x] if x == y else meets[frozenset((x, y))]

    for x, y, z in itertools.combinations(variables, 3):
        a, b, c = meet(x, y), meet(y, z), meet(x, z)
        lowest = min(a, b, c)
        if (a == lowest) + (b == lowest) + (c == lowest) < 2:
            return False
    # Equal variables (meet == both depths) must meet every third variable
    # at the same depth — implied by the triple rule, but the pair rule for
    # p == 2 needs no extra check.
    return True
