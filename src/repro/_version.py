"""The single source of the library version.

Kept in a leaf module (no intra-package imports) so low-level modules —
e.g. :mod:`repro.circuits.serialize`, which stamps persisted plans with
the library version — can read it without importing the full package.
"""

__version__ = "1.0.0"
