"""Quickstart: one circuit, many semirings (the paper's core idea).

Compiles the triangle query

    f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y) · w(y,z) · w(z,x)

over a sparse planar graph once through the unified ``repro.api``
facade, then evaluates the same prepared circuit in (N, +, ·) for bag
counting, (N∪{∞}, min, +) for the cheapest triangle, and B for
existence — followed by a dynamic weight update maintained in
constant/logarithmic time (Theorem 8) and a batched what-if sweep.

Run: PYTHONPATH=src python examples/quickstart.py
"""

import random

from repro import (Atom, Bracket, BOOLEAN, Database, INTEGER, MIN_PLUS,
                   NATURAL, Sum, Weight, graph_structure, triangulated_grid)


def main():
    graph = triangulated_grid(6, 6)
    structure = graph_structure(graph)          # directed edge relation E
    rng = random.Random(0)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, rng.randint(1, 9))

    E = lambda x, y: Atom("E", (x, y))
    w = lambda x, y: Weight("w", (x, y))
    triangle = Sum(("x", "y", "z"),
                   Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
                   * w("x", "y") * w("y", "z") * w("z", "x"))

    with Database(structure) as db:
        query = db.prepare(triangle)
        stats = query.stats()
        print(f"compiled circuit: {stats['gates']} gates, depth "
              f"{stats['depth']}, {stats['colors']} colors, forests of "
              f"height <= {stats['max_forest_height']}")

        print("bag-semantics weight sum (N):   ", query.value(NATURAL))
        print("cheapest directed triangle:     ", query.value(MIN_PLUS))

        # Existence: the same query without weights, evaluated in B.
        counter = db.prepare(Sum(("x", "y", "z"),
                             Bracket(E("x", "y") & E("y", "z")
                                     & E("z", "x"))))
        print("a triangle exists (B):          ", counter.value(BOOLEAN))
        print("number of directed triangles (N):", counter.value(NATURAL))

        # A maintained handle plus a routed update: every consumer of the
        # database (including the caches) sees it — nothing can go stale.
        maintained = query.maintain(INTEGER)
        edge = sorted(structure.relations["E"])[0]
        print(f"\nmaintained value: {maintained.value()}; "
              f"updating w{edge} -> 100 ...")
        with db.update() as tx:
            touched = tx.set_weight("w", edge, 100)
        print(f"maintained value: {maintained.value()} "
              f"({touched} gates touched)")

        # The circuit above was already optimized (the compile default).
        # The raw Theorem 6 circuit is bigger; the optimizer pass pipeline
        # (constant folding, flattening, CSE/DCE) shrinks it
        # value-preservingly.
        from repro.circuits import describe_optimization, optimize_circuit
        raw = db.prepare(triangle, optimize=False)
        print("\n" + describe_optimization(optimize_circuit(
            raw.plan().circuit)))

        # Batched evaluation: N what-if scenarios in one bottom-up sweep.
        edges = sorted(structure.relations["E"])[:4]
        scenarios = [{}] + [{("w", "w", e): 0} for e in edges]
        values = query.batch(scenarios, NATURAL)
        print(f"batched what-ifs (drop one edge each): {values}")


if __name__ == "__main__":
    main()
