"""Quickstart: one circuit, many semirings (the paper's core idea).

Compiles the triangle query

    f = Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y) · w(y,z) · w(z,x)

over a sparse planar graph once, then evaluates the same circuit in
(N, +, ·) for bag counting, (N∪{∞}, min, +) for the cheapest triangle, and
B for existence — followed by a dynamic weight update maintained in
constant/logarithmic time (Theorem 8).

Run: python examples/quickstart.py
"""

import random

from repro import (Atom, Bracket, BOOLEAN, INTEGER, MIN_PLUS, NATURAL, Sum,
                   Weight, compile_structure_query, graph_structure,
                   triangulated_grid)


def main():
    graph = triangulated_grid(6, 6)
    structure = graph_structure(graph)          # directed edge relation E
    rng = random.Random(0)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, rng.randint(1, 9))

    E = lambda x, y: Atom("E", (x, y))
    w = lambda x, y: Weight("w", (x, y))
    triangle = Sum(("x", "y", "z"),
                   Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
                   * w("x", "y") * w("y", "z") * w("z", "x"))

    compiled = compile_structure_query(structure, triangle)
    stats = compiled.stats()
    print(f"compiled circuit: {stats['gates']} gates, depth {stats['depth']},"
          f" {stats['colors']} colors, forests of height"
          f" <= {stats['max_forest_height']}")

    print("bag-semantics weight sum (N):   ", compiled.evaluate(NATURAL))
    print("cheapest directed triangle:     ", compiled.evaluate(MIN_PLUS))

    # Existence: the same query without weights, evaluated in B.
    count_query = Sum(("x", "y", "z"),
                      Bracket(E("x", "y") & E("y", "z") & E("z", "x")))
    counter = compile_structure_query(structure, count_query)
    print("a triangle exists (B):          ", counter.evaluate(BOOLEAN))
    print("number of directed triangles (N):", counter.evaluate(NATURAL))

    dynamic = compiled.dynamic(INTEGER)
    edge = sorted(structure.relations["E"])[0]
    print(f"\nupdating w{edge} -> 100 ...")
    touched = dynamic.update_weight("w", edge, 100)
    print(f"maintained value: {dynamic.value()} ({touched} gates touched)")

    # The circuit above was already optimized (the compile default).
    # The raw Theorem 6 circuit is bigger; the optimizer pass pipeline
    # (constant folding, flattening, CSE/DCE) shrinks it value-preservingly.
    from repro.circuits import describe_optimization, optimize_circuit
    raw = compile_structure_query(structure, triangle, optimize=False)
    print("\n" + describe_optimization(optimize_circuit(raw.circuit)))

    # Batched evaluation: N what-if scenarios in one bottom-up sweep.
    edges = sorted(structure.relations["E"])[:4]
    scenarios = [{}] + [{("w", "w", e): 0} for e in edges]
    values = compiled.evaluate_batch(NATURAL, scenarios)
    print(f"batched what-ifs (drop one edge each): {values}")


if __name__ == "__main__":
    main()
