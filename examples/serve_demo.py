"""Serving demo: concurrent point queries, micro-batched and cached.

Compiles the weighted out-degree query f(x) = Σ_y [E(x,y)] * w(x,y)
over a triangulated grid once, then serves it to 16 concurrent client
threads through the unified facade's :meth:`repro.api.Database.serve`:

* concurrent ``service.query(v)`` calls coalesce into micro-batches
  evaluated by one vectorized sweep each;
* repeated probes hit the database's shared epoch-tagged result cache
  until an update with observable effect (touched gates > 0) advances
  the epoch;
* a second service over the same data reuses the compiled plan from
  the database's shared plan cache instead of recompiling;
* updates go through ``db.update()``, which routes them into every
  live service and cache — the stale-cache bug class is structurally
  impossible.

Run with:  PYTHONPATH=src python examples/serve_demo.py
"""

import random
import threading
import time

from repro import Atom, Bracket, Database, FLOAT, Sum, Weight, \
    graph_structure, triangulated_grid

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))


def build_structure(side=12, seed=7):
    structure = graph_structure(triangulated_grid(side, side))
    rng = random.Random(seed)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, float(rng.randint(1, 9)))
    return structure


def drive(service, structure, threads=16, queries=200):
    def client(thread_id):
        rng = random.Random(thread_id)
        for _ in range(queries):
            service.query(rng.choice(structure.domain))

    workers = [threading.Thread(target=client, args=(thread_id,))
               for thread_id in range(threads)]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start
    return threads * queries / elapsed


def main():
    structure = build_structure()

    with Database(structure, max_batch_size=128,
                  max_batch_delay=0.001) as db:
        with db.serve(DEGREE, FLOAT) as service:
            probe = structure.domain[5]
            print(f"f({probe}) = {service.query(probe)}")

            qps = drive(service, structure)
            stats = service.stats()
            print(f"\n16 concurrent clients: {qps:,.0f} queries/sec")
            print(f"micro-batches: {stats['batches']} "
                  f"(mean size {stats['mean_batch']}, "
                  f"largest {stats['largest_batch']}, "
                  f"{stats['deduped_queries']} deduplicated)")
            print(f"result cache: {stats['result_cache']}")

        # The plan survives the service: as long as the data content is
        # unchanged, a new service skips compilation entirely (the
        # database's plan cache is shared across everything it creates).
        start = time.perf_counter()
        with db.serve(DEGREE, FLOAT) as service:
            service.query(probe)
        print(f"\nsecond service start+first query: "
              f"{time.perf_counter() - start:.3f}s "
              f"(plan cache: {db.plan_cache.stats()})")

        with db.serve(DEGREE, FLOAT) as service:
            # A routed weight update invalidates results precisely: the
            # epoch only advances because the update actually recomputed
            # gates inside the service's engines.
            edge = sorted(structure.relations["E"])[0]
            with db.update() as tx:
                touched = tx.set_weight("w", edge, 100.0)
            print(f"\nupdate_weight{edge} touched {touched} gates "
                  f"-> service epoch {service.epoch}")
            print(f"f({edge[0]}) = {service.query(edge[0])}  (recomputed)")

            # A write of the same value touches nothing, keeps the cache.
            with db.update() as tx:
                touched = tx.set_weight("w", edge, 100.0)
            print(f"same-value update touched {touched} gates "
                  f"-> service epoch {service.epoch} (cache kept)")


if __name__ == "__main__":
    main()
