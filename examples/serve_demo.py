"""Serving demo: concurrent point queries, micro-batched and cached.

Compiles the weighted out-degree query f(x) = Σ_y [E(x,y)] * w(x,y)
over a triangulated grid once, then serves it to 16 concurrent client
threads through :class:`repro.serve.QueryService`:

* concurrent ``service.query(v)`` calls coalesce into micro-batches
  evaluated by one vectorized sweep each;
* repeated probes hit the epoch-tagged result cache until an update
  with observable effect (touched gates > 0) advances the epoch;
* a second service over the same data reuses the compiled plan from the
  shared :class:`repro.serve.PlanCache` instead of recompiling.

Run with:  PYTHONPATH=src python examples/serve_demo.py
"""

import random
import threading
import time

from repro import Atom, Bracket, FLOAT, Sum, Weight, graph_structure, \
    triangulated_grid
from repro.serve import PlanCache, QueryService

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))


def build_structure(side=12, seed=7):
    structure = graph_structure(triangulated_grid(side, side))
    rng = random.Random(seed)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, float(rng.randint(1, 9)))
    return structure


def drive(service, structure, threads=16, queries=200):
    def client(thread_id):
        rng = random.Random(thread_id)
        for _ in range(queries):
            service.query(rng.choice(structure.domain))

    workers = [threading.Thread(target=client, args=(thread_id,))
               for thread_id in range(threads)]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start
    return threads * queries / elapsed


def main():
    structure = build_structure()
    plans = PlanCache()

    with QueryService(structure, DEGREE, FLOAT, plan_cache=plans,
                      max_batch_size=128, max_batch_delay=0.001) as service:
        probe = structure.domain[5]
        print(f"f({probe}) = {service.query(probe)}")

        qps = drive(service, structure)
        stats = service.stats()
        print(f"\n16 concurrent clients: {qps:,.0f} queries/sec")
        print(f"micro-batches: {stats['batches']} "
              f"(mean size {stats['mean_batch']}, "
              f"largest {stats['largest_batch']}, "
              f"{stats['deduped_queries']} deduplicated)")
        print(f"result cache: {stats['result_cache']}")

    # The plan survives the service: as long as the data content is
    # unchanged, a new service skips compilation entirely.
    start = time.perf_counter()
    with QueryService(structure, DEGREE, FLOAT, plan_cache=plans) as service:
        service.query(probe)
    print(f"\nsecond service start+first query: "
          f"{time.perf_counter() - start:.3f}s "
          f"(plan cache: {plans.stats()})")

    with QueryService(structure, DEGREE, FLOAT, plan_cache=plans) as service:
        # A weight update invalidates results precisely: the epoch only
        # advances because the update actually recomputed gates.  (It
        # also changes the structure's content fingerprint, so the next
        # service compiles a fresh plan for the new content.)
        edge = sorted(structure.relations["E"])[0]
        touched = service.update_weight("w", edge, 100.0)
        print(f"\nupdate_weight{edge} touched {touched} gates "
              f"-> epoch {service.epoch}")
        print(f"f({edge[0]}) = {service.query(edge[0])}  (recomputed)")

        # A write of the same value touches nothing and keeps the cache.
        touched = service.update_weight("w", edge, 100.0)
        print(f"same-value update touched {touched} gates "
              f"-> epoch {service.epoch} (cache kept)")


if __name__ == "__main__":
    main()
