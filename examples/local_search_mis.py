"""Example 25 from the paper: local search via dynamic enumeration.

The current independent set S is a unary predicate; the improvement rule
"x can join S" is a quantifier-free condition maintained under the unary
updates of Theorem 24.  Each round costs constant time: pull one witness
from the enumerator (obtained from the facade via
``db.prepare(formula, ...).enumerate()``), flip S(x), update the
neighborhood markers.  The whole search is linear — the observation that
(with larger radius) yields the EPTAS of Har-Peled & Quanrud on
polynomial-expansion classes.

Run: PYTHONPATH=src python examples/local_search_mis.py
"""

from repro import Atom, Database, graph_structure, triangulated_grid


def main():
    graph = triangulated_grid(8, 8)
    structure = graph_structure(graph)
    # S: the independent set; T: "has a neighbor in S" (maintained marker).
    for name in ("S", "T"):
        structure.relations.setdefault(name, set())
        structure._arity.setdefault(name, 1)
    addable = ~Atom("S", ("x",)) & ~Atom("T", ("x",))

    with Database(structure) as db:
        # The enumerator owns a content snapshot; its dynamics are the
        # constant-time support flips of Theorem 24.
        enumerator = db.prepare(addable, params=("x",),
                                dynamic=("S", "T")).enumerate()

        independent = []
        while enumerator.has_answers():
            (vertex,) = next(iter(enumerator))
            independent.append(vertex)
            enumerator.set_relation("S", (vertex,), True)
            for neighbor in graph.neighbors(vertex):
                enumerator.set_relation("T", (neighbor,), True)

    chosen = set(independent)
    assert all(not (set(graph.neighbors(v)) & chosen) for v in chosen)
    assert all(v in chosen or (set(graph.neighbors(v)) & chosen)
               for v in graph.vertices())
    print(f"maximal independent set of size {len(chosen)} on "
          f"{len(graph)} vertices ({len(chosen)/len(graph):.1%})")


if __name__ == "__main__":
    main()
