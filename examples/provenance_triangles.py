"""Example 21 from the paper: why does φ(x) hold?  Provenance semiring.

For φ(x) = ∃y,z E(x,y) ∧ E(y,z) ∧ E(z,x) on the 4-vertex graph with edges
ab, bc, ca, bd, da, the provenance of `a` is e_ab·e_bc·e_ca + e_ab·e_bd·e_da
— exactly the two triangles through `a`.  Theorem 22 produces this as a
constant-delay enumerator (via ``db.prepare(...).enumerate()``), never
materializing the polynomial.

Run: PYTHONPATH=src python examples/provenance_triangles.py
"""

from repro import Database, Structure, Sum, Weight


def main():
    structure = Structure(["a", "b", "c", "d"])
    for u, v in [("a", "b"), ("b", "c"), ("c", "a"), ("b", "d"), ("d", "a")]:
        structure.add_tuple("E", (u, v))
        structure.set_weight("w", (u, v), f"e{u}{v}")   # unique identifier

    # Tag the origin x = a with a selector, then aggregate over y, z.
    for v in structure.domain:
        structure.set_weight("sel", (v,), [()] if v == "a" else [])
    w = lambda x, y: Weight("w", (x, y))
    expr = Sum("x", Weight("sel", ("x",)) * Sum(
        ("y", "z"), w("x", "y") * w("y", "z") * w("z", "x")))

    with Database(structure) as db:
        prov = db.prepare(expr).enumerate()
        print("provenance of phi(a):")
        for monomial in prov.monomials():
            print("   ", " * ".join(monomial))

        print("\nafter deleting edge (d, a):")
        prov.update_weight("w", ("d", "a"), [])
        for monomial in prov.monomials():
            print("   ", " * ".join(monomial))


if __name__ == "__main__":
    main()
