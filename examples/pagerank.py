"""Example 9 from the paper: a PageRank round as a weighted query.

    f(x) = (1 - d)/N + d * Σ_y [E(y, x)] · wl(y)

with wl(y) = w(y)/outdeg(y) stored as a weight (the paper's trick to avoid
division).  Theorem 8 gives a data structure with constant-time point
queries and constant-time updates in the ring of rationals — we run full
power iteration through the facade's bound point queries and routed
updates, and cross-check against a direct computation.

Run: PYTHONPATH=src python examples/pagerank.py
"""

from fractions import Fraction

from repro import (Atom, Bracket, Database, RATIONAL, Sum, WConst, Weight,
                   graph_structure)
from repro.graphs import triangulated_grid


def main():
    damping = Fraction(85, 100)
    graph = triangulated_grid(5, 5)
    structure = graph_structure(graph)
    nodes = structure.domain
    n = len(nodes)
    rank = {v: Fraction(1, n) for v in nodes}
    for v in nodes:
        structure.set_weight("wl", (v,), rank[v] / graph.degree(v))

    E = lambda x, y: Atom("E", (x, y))
    one_round = WConst(Fraction(1 - damping, n)) + WConst(damping) * Sum(
        "y", Bracket(E("y", "x")) * Weight("wl", ("y",)))

    with Database(structure) as db:
        query = db.prepare(one_round, params=("x",))
        for iteration in range(8):
            new_rank = {v: query.bind(v).value(RATIONAL) for v in nodes}
            if iteration == 0:
                print(f"engine: {query.stats()['gates']} gates over n={n}")
            with db.update() as tx:  # feed the next round: routed updates
                for v in nodes:
                    tx.set_weight("wl", (v,), new_rank[v] / graph.degree(v))
            rank = new_rank

    # Reference: direct power iteration.
    reference = {v: Fraction(1, n) for v in nodes}
    for _ in range(8):
        reference = {
            v: Fraction(1 - damping, n) + damping * sum(
                (reference[u] / graph.degree(u)
                 for u in graph.neighbors(v)), Fraction(0))
            for v in nodes}
    worst = max(abs(rank[v] - reference[v]) for v in nodes)
    print("max deviation vs direct power iteration:", worst)
    assert worst == 0
    top = sorted(nodes, key=lambda v: rank[v], reverse=True)[:3]
    print("top-3 nodes:", [(v, float(rank[v])) for v in top])


if __name__ == "__main__":
    main()
