"""Grouped aggregation (OLAP) demo: one sweep, HAVING, ROLLUP, updates.

Compiles the weighted out-degree query f(x) = Σ_y [E(x,y)] * w(x,y)
over a triangulated grid once, then answers it *for every group at
once*: ``PreparedQuery.group_by`` binds each group key as one column of
a single vectorized sweep over the shared circuit (Theorem 8's selector
protocol amortized across the whole group domain) and returns a
:class:`repro.ResultTable`:

* ``q.group_by(NATURAL)`` — the full domain in one sweep;
* ``db.select(...).group_by("x").having(...).run(NATURAL)`` — the
  SQL-ish spelling with a HAVING filter on the aggregates;
* a 2-ary grouping with ``rollup=True`` — subtotal rows per prefix and
  a grand total, the rolled-up positions marked ``TOTAL``;
* ``db.update()`` after the sweep — the epoch-tagged result cache
  keeps every group the update provably cannot affect, so the next
  sweep recomputes only the touched groups.

Run with:  PYTHONPATH=src python examples/groupby_olap.py
"""

import random

from repro import Atom, Bracket, Database, NATURAL, Sum, Weight, \
    graph_structure, triangulated_grid

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: f(x) = Σ_y [E(x, y)] * w(x, y) — one aggregate per group key x.
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))

#: g(x, y) = [E(x, y)] * w(x, y) — the 2-ary detail cell for ROLLUP.
CELL = Bracket(E("x", "y")) * w("x", "y")


def build_structure(side=6, seed=11):
    structure = graph_structure(triangulated_grid(side, side))
    rng = random.Random(seed)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, rng.randint(1, 9))
    return structure


def main():
    structure = build_structure()

    with Database(structure) as db:
        # -- the whole domain, one sweep --------------------------------
        query = db.prepare(DEGREE, params=("x",))
        table = query.group_by(NATURAL)
        stats = table.stats
        print(f"group_by over {stats['groups']} groups: "
              f"{stats['sweeps']} sweep(s), shape {stats['sweep_shape']}, "
              f"kernel {stats['kernel']}")
        top = sorted(table, key=lambda row: row[-1], reverse=True)[:3]
        for *key, value in top:
            print(f"  heaviest: f{tuple(key)} = {value}")

        # -- SQL-ish: SELECT ... GROUP BY x HAVING sum > 25 -------------
        heavy = (db.select(DEGREE)
                   .group_by("x")
                   .having(lambda value: value > 25)
                   .run(NATURAL))
        print(f"\nHAVING > 25 keeps {len(heavy)} of {stats['groups']} "
              f"groups: {sorted(heavy.values(), reverse=True)}")

        # -- 2-ary ROLLUP: detail rows, per-x subtotals, grand total ----
        cells = db.prepare(CELL, params=("x", "y"))
        edges = sorted(structure.relations["E"])[:6]
        cube = cells.group_by(edges, NATURAL, rollup=True)
        print(f"\nROLLUP over {len(edges)} edge cells "
              f"({len(cube)} rows incl. subtotals):")
        for *key, value in cube:
            print(f"  {tuple(key)!r:>28} -> {value}")

        # -- fine-grained invalidation ----------------------------------
        # A weight update advances the cache epoch, but every group the
        # update provably cannot affect is carried forward: the next
        # sweep recomputes only the touched groups.
        edge = edges[0]
        with db.update() as tx:
            tx.set_weight("w", edge, 100)
        rerun = query.group_by(NATURAL)
        print(f"\nafter set_weight w{edge}=100: "
              f"{rerun.stats['cache_hits']} groups stayed warm, "
              f"{rerun.stats['cache_misses']} recomputed")
        print(f"f({edge[0]}) = {rerun[edge[0]]}  (was {table[edge[0]]})")


if __name__ == "__main__":
    main()
