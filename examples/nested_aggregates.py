"""The paper's introduction, as FOG[C] queries (Theorem 26).

Query 1:  max_x ( Σ_y [E(x,y)]·w(y) ) / ( Σ_y [E(x,y)] )
          — the maximum average neighbor weight, mixing (N,+,·) inside the
          division connective with (Q∪{-∞}, max, +) outside.

Query 2:  f(x) = ∃y E(x,y) ∧ ( w(y) > Σ_z [E(y,z)]·w(z) )
          — a boolean query whose guard compares values computed in N.

Run: python examples/nested_aggregates.py
"""

import random

from repro import NATURAL, graph_structure, triangulated_grid
from repro.fog import (SAtom, SIverson, divide_into_max_plus, evaluate_fog,
                       greater_than, guarded, s_exists, s_sum)


def main():
    graph = triangulated_grid(5, 5)
    structure = graph_structure(graph)
    rng = random.Random(7)
    for v in structure.domain:
        structure.add_tuple("V", (v,))            # the unary guard
        structure.set_weight("wN", (v,), rng.randint(0, 9))

    E = lambda x, y: SAtom("E", (x, y))
    wN = lambda y: SAtom("wN", (y,), NATURAL)

    max_avg = s_sum("x", guarded(
        "V", ("x",), divide_into_max_plus(NATURAL),
        s_sum("y", SIverson(E("x", "y"), NATURAL) * wN("y")),
        s_sum("y", SIverson(E("x", "y"), NATURAL))))
    print("max average neighbor weight:",
          evaluate_fog(structure, max_avg).value())

    heavy = guarded("V", ("y",), greater_than(NATURAL), wN("y"),
                    s_sum("z", SIverson(E("y", "z"), NATURAL) * wN("z")))
    has_heavy_neighbor = s_exists("y", E("x", "y") & heavy)
    result = evaluate_fog(structure, has_heavy_neighbor)
    holders = [v for v in structure.domain if result.query(v)]
    print(f"vertices with a neighbor outweighing its own neighborhood: "
          f"{len(holders)} of {len(structure.domain)}")


if __name__ == "__main__":
    main()
