"""Sharded serving demo: one query, four worker processes, one answer.

The paper's algebraic framing makes scale-out principled: a query's
value over a disjoint union of structures is the semiring ``⊕`` of the
per-shard values, so :meth:`repro.api.Database.serve_sharded` can
partition a structure along its Gaifman components, give each shard to
its own worker process (shared-nothing: one ``Database``, plan cache,
and plan store per worker), and let the asyncio gateway merge partial
results with ``⊕``:

* point queries route to the single shard that owns the bound element
  (arguments spanning components answer ``sr.zero`` at the gateway —
  no connected witness can exist);
* ``group_by`` fans out to every shard and merges the partial tables;
* writes go through ``db.update()`` as usual and are routed to the
  owning shard's worker;
* admission control sheds load with a typed ``Overloaded`` error
  instead of queueing without bound, and a killed worker is respawned
  from its shard (warm-started through the shared plan store).

Run with:  PYTHONPATH=src python examples/cluster_demo.py
"""

import asyncio
import random

from repro import Atom, Bracket, Database, FLOAT, Sum, Weight, \
    graph_structure
from repro.graphs import Graph

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))


def build_structure(components=32, chain=4, seed=7):
    """A disjoint union of weighted chains — many Gaifman components,
    so the sharder has fine-grained placement units."""
    graph = Graph()
    for c in range(components):
        for i in range(chain):
            graph.add_vertex(f"c{c}n{i}")
        for i in range(chain - 1):
            graph.add_edge(f"c{c}n{i}", f"c{c}n{i + 1}")
    structure = graph_structure(graph)
    rng = random.Random(seed)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, float(rng.randint(1, 9)))
    return structure


async def async_clients(service, probes):
    """The gateway is asyncio-native: awaitable queries, no threads."""
    values = await asyncio.gather(
        *(service.query(probe) for probe in probes))
    batch = await service.query_batch([(probe,) for probe in probes])
    assert batch == list(values)
    return values


def main():
    structure = build_structure()

    with Database(structure) as db:
        with db.serve_sharded(DEGREE, FLOAT, shards=4) as service:
            stats = service.stats()
            print(f"{stats['components']} components over "
                  f"{stats['shards']} shard workers "
                  f"(policy={stats['policy']}), domain elements per "
                  f"shard: {[entry['domain'] for entry in stats['workers']]}")

            probe = structure.domain[1]
            print(f"f({probe}) = {service.query_sync(probe)}  "
                  f"(routed to the owning shard)")

            probes = structure.domain[:8]
            values = asyncio.run(async_clients(service, probes))
            print(f"asyncio clients: f over {len(probes)} probes = "
                  f"{[round(v, 1) for v in values]}")

            # Grouped sweep: every shard aggregates its own groups, the
            # gateway merges the partial tables with ⊕.
            table = service.group_by_sync()
            heavy = max(table, key=lambda row: row[-1])
            print(f"group_by: {len(list(table))} groups, "
                  f"heaviest {heavy[0]} -> {heavy[-1]}")

            # Writes route to the owning worker through the facade.
            edge = sorted(structure.relations["E"])[0]
            with db.update() as tx:
                tx.set_weight("w", edge, 100.0)
            print(f"after update_weight{edge}: "
                  f"f({edge[0]}) = {service.query_sync(edge[0])}")

            stats = service.stats()
            print(f"gateway stats: requests={stats['requests']} "
                  f"sheds={stats['sheds']} respawns={stats['respawns']} "
                  f"merge={stats['merge_seconds']:.4f}s")


if __name__ == "__main__":
    main()
