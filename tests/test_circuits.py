"""Circuit IR: builder collapses, stats, static vs dynamic evaluation."""

from __future__ import annotations

import random

import pytest

from repro.circuits import (AddGate, CircuitBuilder, DynamicEvaluator,
                            PermGate, StaticEvaluator, valuation_from_dict)
from repro.semirings import INTEGER, MIN_PLUS, NATURAL, ModularRing


class TestBuilder:
    def test_hash_consing(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input("b")
        first = builder.mul([a, b])
        second = builder.mul([a, b])
        assert first == second
        assert builder.add([first]) == first  # single-child collapse

    def test_zero_propagation(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        assert builder.mul([a, None]) is None
        assert builder.add([None, None]) is None
        assert builder.add([a, None]) == a

    def test_const_one_dropped_in_products(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        one = builder.const(1)
        assert builder.mul([a, one]) == a
        assert builder.mul([one, one]) == builder.one()

    def test_perm_collapses(self):
        builder = CircuitBuilder()
        row = [builder.input(("r", i)) for i in range(3)]
        assert builder.perm([]) == builder.one()          # zero rows
        assert builder.perm([row, row, row, row]) is None  # rows > cols
        assert builder.perm([[None, None, None], row]) is None
        single = builder.perm([row])
        assert isinstance(builder.gates[single], AddGate)  # 1 row = sum
        double = builder.perm([row, row])
        assert isinstance(builder.gates[double], PermGate)

    def test_scaled(self):
        builder = CircuitBuilder()
        a = builder.input("a")
        assert builder.scaled(0, a) is None
        assert builder.scaled(1, a) == a
        tripled = builder.scaled(3, a)
        circuit = builder.build(tripled)
        value = StaticEvaluator(circuit, INTEGER,
                                valuation_from_dict({"a": 5}, 0)).value()
        assert value == 15


def build_random_circuit(seed, n_inputs=6):
    rng = random.Random(seed)
    builder = CircuitBuilder()
    pool = [builder.input(("x", i)) for i in range(n_inputs)]
    pool.append(builder.const(1))
    for _ in range(8):
        kind = rng.choice(["add", "mul", "perm"])
        if kind == "add":
            pool.append(builder.add(rng.sample(pool, rng.randint(2, 3))))
        elif kind == "mul":
            pool.append(builder.mul(rng.sample(pool, 2)))
        else:
            cols = rng.randint(2, 4)
            entries = [[rng.choice(pool) for _ in range(cols)]
                       for _ in range(2)]
            gate = builder.perm(entries)
            if gate is not None:
                pool.append(gate)
    output = builder.add(pool[-3:])
    return builder.build(output)


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("sr,conv", [
    (INTEGER, lambda v: v), (NATURAL, lambda v: v),
    (MIN_PLUS, lambda v: v), (ModularRing(5), lambda v: v % 5)],
    ids=["Z", "N", "min-plus", "Z5"])
def test_dynamic_matches_static_on_random_circuits(seed, sr, conv):
    circuit = build_random_circuit(seed)
    rng = random.Random(seed + 99)
    values = {("x", i): conv(rng.randint(0, 5)) for i in range(6)}
    dynamic = DynamicEvaluator(circuit, sr,
                               valuation_from_dict(dict(values), sr.zero))
    for _ in range(12):
        key = ("x", rng.randrange(6))
        value = conv(rng.randint(0, 5))
        values[key] = value
        dynamic.update_input(key, value)
        static = StaticEvaluator(circuit, sr,
                                 valuation_from_dict(values, sr.zero)).value()
        assert sr.eq(dynamic.value(), static), seed


def test_update_propagation_is_local():
    """Updating an input that only feeds a small subcircuit must not touch
    the rest (the bounded fan-out/reach-out property in action)."""
    builder = CircuitBuilder()
    left = [builder.input(("l", i)) for i in range(50)]
    right = [builder.input(("r", i)) for i in range(50)]
    output = builder.add([builder.add(left), builder.add(right)])
    circuit = builder.build(output)
    dynamic = DynamicEvaluator(circuit, INTEGER,
                               valuation_from_dict({}, 0))
    touched = dynamic.update_input(("l", 3), 7)
    assert touched <= 4
    assert dynamic.value() == 7


def test_stats_fields():
    circuit = build_random_circuit(1)
    stats = circuit.stats()
    assert set(stats) >= {"gates", "edges", "size", "depth", "max_fan_out",
                          "max_perm_rows", "kinds", "inputs"}
    assert stats["gates"] <= len(circuit.gates)


def test_unknown_input_update_is_noop():
    builder = CircuitBuilder()
    a = builder.input("a")
    circuit = builder.build(a)
    dynamic = DynamicEvaluator(circuit, INTEGER, valuation_from_dict({}, 0))
    assert dynamic.update_input("missing", 5) == 0
    assert dynamic.update_input("a", 5) >= 1
    assert dynamic.value() == 5


def test_no_change_update_short_circuits():
    builder = CircuitBuilder()
    a = builder.input("a")
    total = builder.add([a, builder.const(2)])
    circuit = builder.build(total)
    dynamic = DynamicEvaluator(circuit, INTEGER,
                               valuation_from_dict({"a": 3}, 0))
    assert dynamic.update_input("a", 3) == 0  # identical value
    assert dynamic.value() == 5


class TestRender:
    def test_text_and_dot_and_summary(self):
        from repro.circuits import render_dot, render_text, summarize
        circuit = build_random_circuit(2)
        text = render_text(circuit)
        assert "add" in text or "mul" in text or "perm" in text
        assert "(shared)" in text or len(text.splitlines()) >= 3
        dot = render_dot(circuit)
        assert dot.startswith("digraph circuit {") and dot.endswith("}")
        assert "->" in dot
        summary = summarize(circuit)
        assert "gates" in summary and "depth" in summary

    def test_text_depth_cap(self):
        from repro.circuits import render_text
        circuit = build_random_circuit(3)
        shallow = render_text(circuit, max_depth=1)
        deep = render_text(circuit)
        assert len(shallow.splitlines()) <= len(deep.splitlines())
