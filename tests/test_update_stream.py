"""The O(delta) update path: incremental fingerprint + fine-grained
result-cache invalidation.

Four guarantees, each load-bearing for the streaming-write story:

* the incrementally-maintained digest equals the full content rehash
  after *arbitrary* interleaved mutator sequences (hypothesis), and
  content-equal structures built in different mutation orders agree;
* transactions reconcile in O(1) and a no-op transaction skips
  reconciliation entirely; ``Structure.copy`` carries the digest
  without hashing anything;
* ``REPRO_VERIFY_FINGERPRINT=1`` turns a digest staled by raw dict
  mutation into a loud :class:`FingerprintMismatch` instead of silent
  stale answers, and ``rehash()`` is the sanctioned resync;
* after an effective routed write, cached point results the write
  provably cannot affect stay warm — across all 13 shipped semirings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.api import Database
from repro.logic import Atom, Bracket, Sum, Weight
from repro.semirings import NATURAL
from repro.serve import ResultCache
from repro.structures import FingerprintMismatch, Structure
from repro.structures import structure as structure_module

from tests.test_plan_store import SEMIRING_CASES, weighted_structure

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: f(x) = Σ_y [E(x, y)] * w(x, y) — the canonical maintained point query.
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))


def base_structure() -> Structure:
    return Structure(range(5), {"E": [(0, 1)], "R": [(1, 2)]},
                     {"w": {(0, 1): 1}, "u": {(3,): 2}})


_elems = st.sampled_from(range(5))
_pairs = st.tuples(_elems, _elems)
_values = st.integers(min_value=0, max_value=5)

_ops = st.lists(st.one_of(
    st.tuples(st.just("add"), st.sampled_from(["E", "R"]), _pairs),
    st.tuples(st.just("remove"), st.sampled_from(["E", "R"]), _pairs),
    st.tuples(st.just("setw2"), _pairs, _values),
    st.tuples(st.just("setw1"), _elems, _values),
    st.tuples(st.just("rmw2"), _pairs),
    st.tuples(st.just("rmw1"), _elems),
    st.tuples(st.just("rmwall"), st.sampled_from(["w", "u"])),
), max_size=40)


def _apply(structure: Structure, op) -> None:
    kind = op[0]
    if kind == "add":
        structure.add_tuple(op[1], op[2])
    elif kind == "remove":
        structure.remove_tuple(op[1], op[2])
    elif kind == "setw2":
        structure.set_weight("w", op[1], op[2])
    elif kind == "setw1":
        structure.set_weight("u", (op[1],), op[2])
    elif kind == "rmw2":
        structure.remove_weight("w", op[1])
    elif kind == "rmw1":
        structure.remove_weight("u", (op[1],))
    else:
        structure.remove_weight(op[1])


class TestIncrementalDigest:
    @given(_ops)
    def test_digest_tracks_full_rehash_under_interleaving(self, ops):
        structure = base_structure()
        for op in ops:
            _apply(structure, op)
            assert structure.fingerprint() == structure.full_fingerprint()
        # Order independence: a fresh structure built from the final
        # content in one pass lands on the same digest.
        fresh = Structure(structure.domain,
                          {r: set(t) for r, t in structure.relations.items()},
                          {n: dict(m) for n, m in structure.weights.items()})
        assert fresh.fingerprint() == structure.fingerprint()

    @given(_pairs, _values)
    def test_add_then_remove_round_trips_to_equality(self, tup, value):
        structure = base_structure()
        before = structure.fingerprint()
        had_tuple = structure.has_tuple("E", tup)
        structure.add_tuple("E", tup)
        structure.remove_tuple("E", tup)
        if had_tuple:  # removing a pre-existing tuple is a real change
            structure.add_tuple("E", tup)
        assert structure.fingerprint() == before
        if tup not in structure.weights["w"]:
            structure.set_weight("w", tup, value)
            structure.remove_weight("w", tup)
            assert structure.fingerprint() == before

    def test_noop_writes_leave_digest_and_counter_alone(self):
        structure = base_structure()
        before = (structure.fingerprint(), structure._mutations)
        structure.add_tuple("E", (0, 1))       # already present
        structure.set_weight("w", (0, 1), 1)   # same value
        structure.remove_tuple("R", (4, 4))    # never present
        structure.remove_weight("w", (4, 4))   # never present
        structure.remove_weight("ghost")       # unknown name
        assert (structure.fingerprint(), structure._mutations) == before

    def test_remove_tuple_still_raises_on_unknown_relation(self):
        with pytest.raises(KeyError):
            base_structure().remove_tuple("missing", (0, 1))

    def test_copy_carries_digest_without_hashing(self, monkeypatch):
        structure = base_structure()
        expected = structure.fingerprint()
        calls = []
        original = structure_module._entry_digest
        monkeypatch.setattr(
            structure_module, "_entry_digest",
            lambda tag, payload: calls.append(tag) or original(tag, payload))
        clone = structure.copy()
        assert clone.fingerprint() == expected
        assert calls == [], "copy() rehashed instead of carrying the digest"
        # And the clone maintains independently from there on.
        clone.set_weight("w", (2, 3), 9)
        assert clone.fingerprint() == clone.full_fingerprint()
        assert structure.fingerprint() == expected

    def test_verify_mode_raises_on_bypassed_mutation(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_FINGERPRINT", "1")
        structure = base_structure()
        assert structure.fingerprint() == structure.full_fingerprint()
        structure.relations["E"].add((3, 4))  # bypasses the mutators
        with pytest.raises(FingerprintMismatch):
            structure.fingerprint()
        # rehash() is the sanctioned resync after deliberate raw edits.
        assert structure.rehash() == structure.full_fingerprint()
        assert structure.fingerprint() == structure.full_fingerprint()

    def test_verify_mode_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY_FINGERPRINT", raising=False)
        structure = base_structure()
        structure.relations["E"].add((3, 4))
        structure.fingerprint()  # stale but silent: detection is opt-in


class TestTransactionReconcile:
    def _counting_fingerprint(self, monkeypatch):
        calls = []
        original = Structure.fingerprint

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(Structure, "fingerprint", counting)
        return calls

    def test_noop_transaction_skips_reconcile(self, monkeypatch):
        structure = weighted_structure()
        db = Database(structure)
        query = db.prepare(DEGREE, params=("x",))
        edge = next(iter(structure.weights["w"]))
        current = structure.weights["w"][edge]
        query.bind(structure.domain[0]).value(NATURAL)
        calls = self._counting_fingerprint(monkeypatch)
        ctx = db.update()
        ctx.__enter__()
        ctx.set_weight("w", edge, current)  # value unchanged: no-op
        before_exit = len(calls)
        ctx.__exit__(None, None, None)
        assert len(calls) == before_exit, \
            "a no-op transaction still reconciled the fingerprint"
        db.close()

    def test_effective_transaction_reconciles_once(self, monkeypatch):
        structure = weighted_structure()
        db = Database(structure)
        edges = sorted(structure.weights["w"])[:3]
        calls = self._counting_fingerprint(monkeypatch)
        ctx = db.update()
        ctx.__enter__()
        for step, edge in enumerate(edges):
            ctx.set_weight("w", edge, 50 + step)
        before_exit = len(calls)
        ctx.__exit__(None, None, None)
        assert len(calls) == before_exit + 1, \
            "K effective writes must cost exactly one O(1) reconcile"
        assert db._expected_fp == structure.fingerprint()
        db.close()


class TestRetagMany:
    def test_bulk_retag_is_conditional_and_counted(self):
        cache = ResultCache(maxsize=8)
        cache.put("a", 1, epoch=0)
        cache.put("b", 2, epoch=0)
        cache.put("c", 3, epoch=5)  # wrong epoch: must not be carried
        carried = cache.retag_many(["a", "b", "c", "ghost"], 0, 1)
        assert carried == 2
        assert cache.get("a", 1) == 1
        assert cache.get("b", 1) == 2
        assert cache.get("c", 1) is ResultCache.MISS

    def test_scoped_bulk_retag(self):
        cache = ResultCache(maxsize=8)
        scope = cache.scoped("ns")
        other = cache.scoped("other")
        scope.put("a", 1, epoch=0)
        other.put("a", 9, epoch=0)
        assert scope.retag_many(["a", "missing"], 0, 3) == 1
        assert scope.get("a", 3) == 1
        assert other.get("a", 0) == 9  # untouched by the ns retag


class TestWarmEntrySurvival:
    @pytest.mark.parametrize("name,sr,conv", SEMIRING_CASES,
                             ids=[case[0] for case in SEMIRING_CASES])
    def test_unaffected_points_stay_warm_across_a_write(self, name, sr,
                                                        conv):
        structure = weighted_structure(conv)
        edge = sorted(structure.relations["E"])[0]
        with Database(structure.copy()) as db:
            query = db.prepare(DEGREE, params=("x",))
            for element in structure.domain:  # warm every point
                query.bind(element).value(sr)
            engine = query._engines[sr.name]
            affected = engine.affected_arguments((("w", "w", edge),))
            assert affected is not None and len(affected) == 1
            # The analysis must be nontrivial: some points are provably
            # out of the write's input cone on this workload.
            survivors = [element for element in structure.domain
                         if element not in affected[0]]
            assert survivors
            with db.update() as tx:
                tx.set_weight("w", edge, conv(4))
            scope = query._scope(sr)
            for element in survivors:
                before = scope.hits
                query.bind(element).value(sr)
                assert scope.hits == before + 1, (
                    f"provably-unaffected point {element!r} missed the "
                    f"cache after a write to {edge} in {name}")
        # Every post-write answer (warm or recomputed) matches a fresh
        # database over the mutated content.
        mutated = structure.copy()
        mutated.set_weight("w", edge, conv(4))
        with Database(structure.copy()) as db, Database(mutated) as ref:
            query = db.prepare(DEGREE, params=("x",))
            reference = ref.prepare(DEGREE, params=("x",))
            for element in structure.domain:
                query.bind(element).value(sr)
            with db.update() as tx:
                tx.set_weight("w", edge, conv(4))
            for element in structure.domain:
                assert (query.bind(element).value(sr)
                        == reference.bind(element).value(sr))
