"""Shared fixtures and hypothesis profiles for the test suite."""

import os

import pytest
from hypothesis import settings

from repro.graphs import path_graph, triangulated_grid

from tests.util import weighted_graph_structure

# CI wants reproducible property tests: ``derandomize`` fixes the seed so
# a red run is the same red run on re-execution, at the default example
# budget.  ``nightly`` spends a larger budget with fresh randomness — the
# profile for the slow-marked deep sweeps.  Select with
# ``REPRO_HYPOTHESIS_PROFILE=nightly`` (default: ci).
settings.register_profile("ci", derandomize=True, deadline=None,
                          max_examples=50)
settings.register_profile("nightly", derandomize=False, deadline=None,
                          max_examples=400)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture
def small_grid_structure():
    return weighted_graph_structure(triangulated_grid(3, 3), seed=2)


@pytest.fixture
def path_structure():
    return weighted_graph_structure(path_graph(8), seed=1)
