"""Shared fixtures for the test suite."""

import pytest

from repro.graphs import path_graph, triangulated_grid

from tests.util import weighted_graph_structure


@pytest.fixture
def small_grid_structure():
    return weighted_graph_structure(triangulated_grid(3, 3), seed=2)


@pytest.fixture
def path_structure():
    return weighted_graph_structure(path_graph(8), seed=1)
