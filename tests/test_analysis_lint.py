"""The project-invariant linter: real tree clean, every rule fires.

Two guarantees, both load-bearing:

* the shipped source tree (``src/``, ``tests/`` outside the fixtures,
  ``benchmarks/``, ``examples/``) has zero violations — the invariants
  the linter encodes actually hold today;
* every rule is *demonstrated*: its negative fixture fires exactly that
  rule, its positive fixture is clean — so a refactor of the linter
  cannot silently neuter a rule.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import lint_file, lint_paths, lint_source
from repro.analysis.lint import RULES

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(ROOT, "tests", "lint_fixtures")

#: rule -> (negative fixture, positive fixture) relative to FIXTURES.
FIXTURE_OF = {
    "REP001": ("bad/locks_rep001.py", "good/locks.py"),
    "REP002": ("bad/locks_rep002.py", "good/locks.py"),
    "REP003": ("bad/api/prepared_rep003.py", "good/api/prepared.py"),
    "REP004": ("bad/shim_rep004.py", "good/shim.py"),
    "REP005": ("bad/plan_store.py", "good/serialize.py"),
    "REP006": ("bad/cluster/gateway_rep006.py", "good/cluster/gateway.py"),
    "REP007": ("bad/api/database_rep007.py", "good/api/database.py"),
}


def test_every_rule_has_a_fixture_pair():
    assert set(FIXTURE_OF) == set(RULES)
    for bad, good in FIXTURE_OF.values():
        assert os.path.exists(os.path.join(FIXTURES, bad))
        assert os.path.exists(os.path.join(FIXTURES, good))


@pytest.mark.parametrize("rule", sorted(RULES))
def test_rule_fires_on_its_negative_fixture(rule):
    bad, _ = FIXTURE_OF[rule]
    violations = lint_file(os.path.join(FIXTURES, bad))
    assert violations, f"{rule} did not fire on {bad}"
    assert {v.rule for v in violations} == {rule}, violations
    for violation in violations:
        assert violation.line > 0
        assert str(violation)  # renders path:line:col: RULE message


@pytest.mark.parametrize("rule", sorted(RULES))
def test_rule_is_quiet_on_its_positive_fixture(rule):
    _, good = FIXTURE_OF[rule]
    violations = lint_file(os.path.join(FIXTURES, good))
    assert violations == [], violations


def test_shipped_tree_is_clean():
    paths = [os.path.join(ROOT, "src"),
             os.path.join(ROOT, "benchmarks"),
             os.path.join(ROOT, "examples")]
    paths = [path for path in paths if os.path.isdir(path)]
    violations = lint_paths(paths)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_test_suite_is_clean_outside_the_fixtures():
    tests_dir = os.path.join(ROOT, "tests")
    violations = [v for v in lint_paths([tests_dir])
                  if "lint_fixtures" not in v.path]
    assert violations == [], "\n".join(str(v) for v in violations)


def test_fixture_corpus_fires_every_rule():
    # Linting the whole fixture tree yields exactly the rule set —
    # nothing silent, nothing spurious.
    violations = lint_paths([FIXTURES])
    assert {v.rule for v in violations} == set(RULES)
    good = [v for v in violations
            if os.sep + "good" + os.sep in v.path]
    assert good == [], good


def test_lint_source_path_scoping():
    # REP003 applies only under api/serve layers: the same source is
    # clean elsewhere.
    with open(os.path.join(FIXTURES, "bad", "api",
                           "prepared_rep003.py")) as handle:
        source = handle.read()
    assert lint_source(source, "src/repro/serve/thing.py")
    assert lint_source(source, "src/repro/core/thing.py") == []
    # REP005 applies only to serialize/cache-key module basenames.
    with open(os.path.join(FIXTURES, "bad", "plan_store.py")) as handle:
        source = handle.read()
    assert lint_source(source, "pkg/result_cache.py")
    assert lint_source(source, "pkg/misc_helpers.py") == []
    # REP004's sanctioned seam is exempt from itself.
    with open(os.path.join(FIXTURES, "bad", "shim_rep004.py")) as handle:
        source = handle.read()
    assert lint_source(source, "src/repro/_compat.py") == []
    # REP007 applies only in the update-routing layers: the structures
    # package itself (where full_fingerprint/rehash live) is exempt.
    with open(os.path.join(FIXTURES, "bad", "api",
                           "database_rep007.py")) as handle:
        source = handle.read()
    assert lint_source(source, "src/repro/cluster/worker.py")
    assert lint_source(source, "src/repro/structures/structure.py") == []


def test_cli_lint_exit_codes(capsys):
    from repro.analysis.cli import main
    assert main(["lint", os.path.join(FIXTURES, "good")]) == 0
    assert main(["lint", os.path.join(FIXTURES, "bad")]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out and "violation" in out
    assert main(["rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out
