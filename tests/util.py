"""Shared builders for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graphs import bounded_depth_forest
from repro.semirings import BOOLEAN, INTEGER, MIN_PLUS, NATURAL, ModularRing
from repro.structures import LabeledForest, Structure, graph_structure

#: Semirings used in cross-semiring parametrization, with a converter from
#: small nonnegative ints to carrier values.
SEMIRING_CASES = [
    ("N", NATURAL, lambda v: v),
    ("Z", INTEGER, lambda v: v),
    ("min-plus", MIN_PLUS, lambda v: v),
    ("Z5", ModularRing(5), lambda v: v % 5),
    ("B", BOOLEAN, lambda v: v > 0),
]


def semiring_params():
    return pytest.mark.parametrize(
        "sr,conv", [(sr, conv) for _, sr, conv in SEMIRING_CASES],
        ids=[name for name, _, _ in SEMIRING_CASES])


def random_labeled_forest(n: int, depth: int, seed: int,
                          conv=lambda v: v) -> LabeledForest:
    """A random forest with two labels and two weights (carrier via conv)."""
    _, parent = bounded_depth_forest(n, depth, seed=seed)
    rng = random.Random(seed + 1)
    labels = {"R": {v for v in parent if rng.random() < 0.5},
              "B": {v for v in parent if rng.random() < 0.3}}
    weights = {"w": {v: conv(rng.randint(0, 4)) for v in parent
                     if rng.random() < 0.8},
               "u": {v: conv(rng.randint(1, 3)) for v in parent}}
    return LabeledForest(parent, labels=labels, weights=weights)


def weighted_graph_structure(graph, seed: int = 0, wmax: int = 4,
                             conv=lambda v: v) -> Structure:
    """Directed-edge structure with a binary weight ``w`` on every edge."""
    rng = random.Random(seed)
    structure = graph_structure(graph)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, conv(rng.randint(1, wmax)))
    return structure


def compile_verified(structure, expr, **kwargs):
    """Compile ``expr`` over ``structure`` with the IR verifier on.

    The test suite's compile helper: every plan it produces has passed
    :func:`repro.analysis.verify_plan`, so a structural regression in
    the compiler/optimizer fails at the source instead of as a wrong
    answer three assertions later.
    """
    from repro.core import _compile_structure_query
    return _compile_structure_query(structure, expr, verify=True, **kwargs)


