"""Migration equivalence: old entry points vs the repro.api facade.

For every shipped semiring, the historical call sites
(``compile_structure_query`` + ``WeightedQueryEngine`` +
``QueryService``) and the new ``Database``/``PreparedQuery`` paths must
return identical results; and each deprecated seam must emit exactly
one ``DeprecationWarning`` per use (the shims delegate, the facade's
internal paths stay silent).
"""

from __future__ import annotations

import warnings
from fractions import Fraction

import pytest

from repro import (CompiledQuery, Database, QueryService,
                   WeightedQueryEngine, compile_structure_query)
from repro.graphs import triangulated_grid
from repro.logic import Atom, Bracket, Sum, Weight
from repro.semirings import (BOOLEAN, FLOAT, INTEGER, MAX_PLUS, MIN_PLUS,
                             NATURAL, RATIONAL, ModularRing)

from tests.util import weighted_graph_structure

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))

#: Every shipped semiring, with a converter from small positive ints.
SHIPPED = [
    ("N", NATURAL, lambda v: v),
    ("Z", INTEGER, lambda v: v - 2),
    ("Q", RATIONAL, lambda v: Fraction(v, 3)),
    ("float", FLOAT, lambda v: v / 2.0),
    ("min-plus", MIN_PLUS, lambda v: v),
    ("max-plus", MAX_PLUS, lambda v: v),
    ("B", BOOLEAN, lambda v: v > 1),
    ("Z7", ModularRing(7), lambda v: v % 7),
]


def shipped_params():
    return pytest.mark.parametrize(
        "sr,conv", [(sr, conv) for _, sr, conv in SHIPPED],
        ids=[name for name, _, _ in SHIPPED])


def build(conv, side=3, seed=5):
    return weighted_graph_structure(triangulated_grid(side, side),
                                    seed=seed, conv=conv, wmax=6)


def silently(fn, *args, **kwargs):
    """Run an old-API call site with its deprecation warning muted."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kwargs)


class TestResultEquivalence:
    @shipped_params()
    def test_closed_value_and_batch(self, sr, conv):
        structure = build(conv)
        edges = sorted(structure.relations["E"])[:3]
        scenarios = [{}] + [{("w", "w", edge): sr.zero} for edge in edges]

        old_compiled = silently(compile_structure_query, structure.copy(),
                                EDGE_SUM)
        old_value = old_compiled.evaluate(sr)
        old_batch = old_compiled.evaluate_batch(sr, scenarios)

        with Database(structure.copy()) as db:
            prepared = db.prepare(EDGE_SUM)
            assert sr.eq(prepared.value(sr), old_value)
            for mine, theirs in zip(prepared.batch(scenarios, sr), old_batch):
                assert sr.eq(mine, theirs)

    @shipped_params()
    def test_point_queries_engine_vs_bind(self, sr, conv):
        structure = build(conv)
        probes = structure.domain[::3]

        with silently(WeightedQueryEngine, structure.copy(), DEGREE,
                      sr) as engine:
            old_points = [engine.query(v) for v in probes]
            old_batch = engine.query_batch([(v,) for v in probes])

        with Database(structure.copy()) as db:
            prepared = db.prepare(DEGREE)
            for probe, theirs in zip(probes, old_points):
                assert sr.eq(prepared.bind(probe).value(sr), theirs)
            for mine, theirs in zip(
                    prepared.batch([(v,) for v in probes], sr), old_batch):
                assert sr.eq(mine, theirs)

    @shipped_params()
    def test_maintained_updates_dynamic_vs_maintain(self, sr, conv):
        structure = build(conv)
        edge = sorted(structure.relations["E"])[0]
        new_value = conv(6)

        old_compiled = silently(compile_structure_query, structure.copy(),
                                EDGE_SUM)
        old_dynamic = silently(old_compiled.dynamic, sr)
        old_dynamic.update_weight("w", edge, new_value)
        old_after = old_dynamic.value()

        with Database(structure.copy()) as db:
            maintained = db.prepare(EDGE_SUM).maintain(sr)
            maintained.update_weight("w", edge, new_value)
            assert sr.eq(maintained.value(), old_after)

    @shipped_params()
    def test_service_vs_db_serve(self, sr, conv):
        structure = build(conv)
        probes = structure.domain[:4]

        with silently(QueryService, structure.copy(), DEGREE,
                      sr) as old_service:
            old_results = old_service.query_batch([(v,) for v in probes])

        with Database(structure.copy()) as db:
            with db.serve(DEGREE, sr) as service:
                for probe, theirs in zip(probes, old_results):
                    assert sr.eq(service.query(probe), theirs)


class TestDeprecationShims:
    def assert_exactly_one(self, record):
        deprecations = [item for item in record
                        if issubclass(item.category, DeprecationWarning)]
        assert len(deprecations) == 1, (
            f"expected exactly one DeprecationWarning, got "
            f"{[str(item.message) for item in deprecations]}")
        return str(deprecations[0].message)

    def test_compile_structure_query_warns_once(self, small_grid_structure):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            compile_structure_query(small_grid_structure, EDGE_SUM)
        message = self.assert_exactly_one(record)
        assert "Database" in message and "prepare" in message

    def test_compiled_dynamic_warns_once(self, small_grid_structure):
        compiled = silently(compile_structure_query, small_grid_structure,
                            EDGE_SUM)
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            compiled.dynamic(NATURAL)
        assert "maintain" in self.assert_exactly_one(record)

    def test_engine_warns_once(self, small_grid_structure):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            engine = WeightedQueryEngine(small_grid_structure, DEGREE,
                                         NATURAL)
        engine.close()
        assert "bind" in self.assert_exactly_one(record)

    def test_service_warns_once(self, small_grid_structure):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            service = QueryService(small_grid_structure, DEGREE, NATURAL)
        service.close()
        assert "serve" in self.assert_exactly_one(record)

    def test_shims_still_are_the_real_classes(self, small_grid_structure):
        """The shims delegate without wrapping: isinstance and behavior
        are unchanged for code that keeps using the old seams."""
        compiled = silently(compile_structure_query, small_grid_structure,
                            EDGE_SUM)
        assert isinstance(compiled, CompiledQuery)
        with silently(WeightedQueryEngine, small_grid_structure, DEGREE,
                      NATURAL) as engine:
            assert isinstance(engine, WeightedQueryEngine)
            assert engine.query(small_grid_structure.domain[0]) == \
                engine.query_batch([(small_grid_structure.domain[0],)])[0]
