"""The IR verifier: every seeded corruption rejected, every real plan passed.

Three families:

* pipeline plans are clean — every plan the compile pipeline produces,
  across all 13 shipped semirings, optimized and raw, passes
  ``verify_plan`` and ``verify_plan_state``;
* seeded mutations are rejected — flipped gate ids, dangling outputs,
  unary additions, truncated permanent rows, inconsistent input tables,
  reordered/incomplete/duplicated schedule layers, dropped serialized
  fields, missing recorded entries, undeclared forest colors, and
  unserialized dataclass fields: each a distinct corruption class, each
  rejected with a precise :class:`PlanVerifyError`;
* the trust seams hold — a corrupted ``.plan-store`` entry is a counted
  ``rejected`` miss that falls back to recompile (never a crash), the
  ``REPRO_VERIFY_PLANS``/``ExecOptions(verify=...)`` hook runs at
  compile time, and the ``verify-store`` CLI audits directories.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.analysis import (PlanVerifyError, verification_enabled,
                            verify_circuit, verify_plan, verify_plan_state,
                            verify_schedule)
from repro.circuits import (AddGate, Circuit, InputGate, MulGate, PermGate,
                            build_schedule, dump_plan_bytes, load_plan_bytes)
from repro.circuits.schedule import LayerSchedule
from repro.core import CompiledQuery, _compile_structure_query, plan_cache_key
from repro.semirings import NATURAL
from repro.serve import PlanStore

from repro.logic import Atom, Bracket, Sum, Weight

from tests.test_plan_store import (EDGE_SUM, SEMIRING_CASES, TRIANGLE,
                                   weighted_structure)
from tests.util import compile_verified

#: A star query: two independent branches below ``x`` make the forest
#: compiler emit genuine multi-row permanent gates.
_E = lambda x, y: Atom("E", (x, y))  # noqa: E731
_w = lambda x, y: Weight("w", (x, y))  # noqa: E731
STAR = Sum(("x", "y", "z"),
           Bracket(_E("x", "y") & _E("x", "z")) * _w("x", "y") * _w("x", "z"))


def triangle_plan(optimize=True):
    return _compile_structure_query(weighted_structure(), TRIANGLE,
                                    optimize=optimize)


def clone_circuit(circuit):
    return Circuit(list(circuit.gates), circuit.output,
                   dict(circuit.inputs))


# -- pipeline plans are clean ----------------------------------------------------


@pytest.mark.parametrize("sr,conv",
                         [(sr, conv) for _, sr, conv in SEMIRING_CASES],
                         ids=[name for name, _, _ in SEMIRING_CASES])
@pytest.mark.parametrize("expr", [TRIANGLE, EDGE_SUM],
                         ids=["triangle", "edge-sum"])
@pytest.mark.parametrize("optimize", [True, False],
                         ids=["optimized", "raw"])
def test_pipeline_plans_verify_clean(sr, conv, expr, optimize):
    plan = _compile_structure_query(weighted_structure(conv), expr,
                                    optimize=optimize)
    verify_plan(plan)
    # The serialized form passes the no-structure (store/CLI) entry too.
    verify_plan_state(plan.to_state())


def test_schedule_verifies_against_its_circuit():
    plan = triangle_plan()
    verify_schedule(plan.schedule(), plan.circuit)
    other = triangle_plan()
    with pytest.raises(PlanVerifyError, match="different circuit"):
        verify_schedule(plan.schedule(), other.circuit)


# -- seeded mutations: circuit ---------------------------------------------------


def test_mutation_flipped_gate_id_breaks_topological_order():
    plan = triangle_plan()
    circuit = clone_circuit(plan.circuit)
    victim = next(i for i, g in enumerate(circuit.gates)
                  if isinstance(g, (AddGate, MulGate)))
    gate = circuit.gates[victim]
    # Flip one child to reference the gate itself (a forward edge).
    flipped = type(gate)((victim,) + tuple(gate.children[1:]))
    circuit.gates[victim] = flipped
    with pytest.raises(PlanVerifyError, match="topological"):
        verify_circuit(circuit)


def test_mutation_dangling_output():
    plan = triangle_plan()
    circuit = clone_circuit(plan.circuit)
    circuit.output = len(circuit.gates) + 7
    with pytest.raises(PlanVerifyError, match="output gate"):
        verify_circuit(circuit)


def test_mutation_unary_add_gate():
    plan = triangle_plan()
    circuit = clone_circuit(plan.circuit)
    victim = next(i for i, g in enumerate(circuit.gates)
                  if isinstance(g, AddGate))
    circuit.gates[victim] = AddGate(circuit.gates[victim].children[:1])
    with pytest.raises(PlanVerifyError, match="fan-in"):
        verify_circuit(circuit)


def test_mutation_truncated_perm_row_rejected_at_construction():
    # PermGate.__post_init__ is the first line of defense: a ragged
    # matrix cannot even be constructed.
    with pytest.raises(ValueError, match="not rectangular"):
        PermGate(((1, 2), (3,)))
    with pytest.raises(ValueError, match="not a gate id"):
        PermGate(((1, -2),))


def test_mutation_truncated_perm_row_in_state():
    plan = _compile_structure_query(weighted_structure(), STAR,
                                    optimize=False)
    verify_plan(plan)
    state = plan.to_state()
    mutated = False
    for gate_state in state["circuit"]["gates"]:
        if gate_state[0] == "p" and len(gate_state[1][-1]) >= 2:
            gate_state[1][-1].pop()  # truncate the last row
            mutated = True
            break
    assert mutated, "expected a permanent gate in the raw star plan"
    with pytest.raises(PlanVerifyError):
        verify_plan_state(state)


def test_mutation_input_table_points_at_wrong_gate():
    plan = triangle_plan()
    circuit = clone_circuit(plan.circuit)
    key = next(iter(circuit.inputs))
    wrong = next(i for i, g in enumerate(circuit.gates)
                 if not (isinstance(g, InputGate) and g.key == key))
    circuit.inputs[key] = wrong
    with pytest.raises(PlanVerifyError, match="input table"):
        verify_circuit(circuit)


def test_mutation_duplicate_live_input_keys():
    plan = triangle_plan()
    circuit = clone_circuit(plan.circuit)
    key = next(k for k, gate_id in circuit.inputs.items()
               if gate_id in circuit.live_gates())
    # A second gate with the same key, fed into a new output add gate so
    # both duplicates are live.
    clone = len(circuit.gates)
    circuit.gates.append(InputGate(key))
    circuit.gates.append(AddGate((circuit.output, clone)))
    circuit.output = clone + 1
    with pytest.raises(PlanVerifyError, match="duplicate live input"):
        verify_circuit(circuit)


# -- seeded mutations: schedule --------------------------------------------------


def reindexed(layers):
    return tuple(replace(layer, index=i) for i, layer in enumerate(layers))


def with_layers(schedule, layers):
    layer_of = {gate_id: layer.index for layer in layers
                for group in layer.groups for gate_id in group.gate_ids}
    return LayerSchedule(schedule.circuit, tuple(layers), layer_of,
                         schedule.input_gates, schedule.const_gates)


def test_mutation_reordered_layers():
    plan = triangle_plan()
    schedule = build_schedule(plan.circuit)
    layers = list(schedule.layers)
    assert len(layers) >= 2
    layers[0], layers[-1] = layers[-1], layers[0]
    with pytest.raises(PlanVerifyError, match="strictly earlier"):
        verify_schedule(with_layers(schedule, reindexed(layers)))


def test_mutation_dropped_layer_breaks_coverage():
    plan = triangle_plan()
    schedule = build_schedule(plan.circuit)
    layers = reindexed(list(schedule.layers)[1:])
    with pytest.raises(PlanVerifyError):
        verify_schedule(with_layers(schedule, layers))


def test_mutation_gate_scheduled_twice():
    plan = triangle_plan()
    schedule = build_schedule(plan.circuit)
    layers = list(schedule.layers)
    layers.append(replace(layers[-1], index=len(layers)))
    with pytest.raises(PlanVerifyError, match="scheduled twice"):
        verify_schedule(with_layers(schedule, layers))


def test_mutation_wrong_group_fan_in():
    plan = triangle_plan()
    schedule = build_schedule(plan.circuit)
    layers = []
    mutated = False
    for layer in schedule.layers:
        groups = []
        for group in layer.groups:
            if not mutated and group.fan_in is not None:
                group = replace(group, fan_in=group.fan_in + 1)
                mutated = True
            groups.append(group)
        layers.append(replace(layer, groups=tuple(groups)))
    assert mutated, "expected an add/mul group to mutate"
    with pytest.raises(PlanVerifyError, match="fan-in"):
        verify_schedule(with_layers(schedule, layers))


def test_mutation_reordered_layer_in_state():
    plan = triangle_plan()
    plan.schedule()
    state = plan.to_state()
    assert state["schedule"] and len(state["schedule"]) >= 2
    state["schedule"].reverse()
    with pytest.raises(PlanVerifyError):
        verify_plan_state(state)


# -- seeded mutations: serialized state ------------------------------------------


def test_mutation_dropped_state_field():
    state = triangle_plan().to_state()
    del state["recorded"]
    with pytest.raises(PlanVerifyError, match="missing"):
        verify_plan_state(state)


def test_mutation_unexpected_state_field():
    state = triangle_plan().to_state()
    state["extra"] = 1
    with pytest.raises(PlanVerifyError, match="unexpected"):
        verify_plan_state(state)


def test_mutation_missing_recorded_entry():
    state = triangle_plan().to_state()
    assert state["recorded"], "triangle plan records inputs"
    state["recorded"] = state["recorded"][1:]
    with pytest.raises(PlanVerifyError, match="recorded"):
        verify_plan_state(state)


def test_mutation_undeclared_forest_colors():
    plan = triangle_plan()
    assert plan.forests
    colors, forest = plan.forests[0]
    plan.forests[0] = (colors | {999}, forest)
    with pytest.raises(PlanVerifyError, match="color"):
        verify_plan(plan)


def test_unserialized_dataclass_field_is_flagged():
    # A CompiledQuery variant grows a field without touching the
    # serializer: the completeness check must trip, naming the field.
    @dataclasses.dataclass
    class Extended(CompiledQuery):
        shiny_new_field: int = 0

    plan = triangle_plan()
    extended = Extended(**{f.name: getattr(plan, f.name)
                           for f in dataclasses.fields(CompiledQuery)})
    with pytest.raises(PlanVerifyError, match="shiny_new_field"):
        verify_plan(extended)


# -- the trust seams -------------------------------------------------------------


def corrupt_store_entry(store, key):
    """Rewrite the entry so it decodes cleanly but violates the IR
    contract (one recorded entry dropped) — the container checksum is
    regenerated, so only the verifier can catch it."""
    path = store._entry_path(key)
    with open(path, "rb") as handle:
        container = load_plan_bytes(handle.read())
    container["plan"]["recorded"] = container["plan"]["recorded"][1:]
    with open(path, "wb") as handle:
        handle.write(dump_plan_bytes(container))


def test_corrupted_store_entry_falls_back_to_recompile(tmp_path):
    structure = weighted_structure()
    store = PlanStore(tmp_path)
    compiled = _compile_structure_query(structure, TRIANGLE,
                                        plan_store=store)
    key = plan_cache_key(structure, TRIANGLE, frozenset(), True)
    corrupt_store_entry(store, key)

    # Direct load: a counted rejection, never a crash, entry removed.
    assert store.load(key, weighted_structure(), TRIANGLE) is None
    assert store.stats()["rejected"] == 1
    assert len(store) == 0

    # Through the compile pipeline: transparent recompile + re-save.
    corrupt = PlanStore(tmp_path)
    _compile_structure_query(structure, TRIANGLE, plan_store=corrupt)
    recompiled = _compile_structure_query(weighted_structure(), TRIANGLE,
                                          plan_store=corrupt)
    assert recompiled.evaluate(NATURAL) == compiled.evaluate(NATURAL)
    stats = corrupt.stats()
    assert stats["rejected"] == 0 and stats["hits"] == 1


def test_rejected_store_load_recompiles_and_heals(tmp_path):
    structure = weighted_structure()
    store = PlanStore(tmp_path)
    compiled = _compile_structure_query(structure, TRIANGLE,
                                        plan_store=store)
    key = plan_cache_key(structure, TRIANGLE, frozenset(), True)
    corrupt_store_entry(store, key)
    recompiled = _compile_structure_query(weighted_structure(), TRIANGLE,
                                          plan_store=store)
    assert recompiled.evaluate(NATURAL) == compiled.evaluate(NATURAL)
    stats = store.stats()
    assert stats["rejected"] == 1
    assert stats["saves"] == 2  # the recompile healed the entry
    assert store.load(key, weighted_structure(), TRIANGLE) is not None


def test_compile_verify_hook_opt_in(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
    assert not verification_enabled()
    assert verification_enabled(True)
    assert not verification_enabled(False)
    monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
    assert verification_enabled()
    assert not verification_enabled(False)  # explicit beats the env
    monkeypatch.setenv("REPRO_VERIFY_PLANS", "off")
    assert not verification_enabled()


def test_compile_verified_helper_runs_the_verifier():
    plan = compile_verified(weighted_structure(), TRIANGLE)
    assert plan.evaluate(NATURAL) == triangle_plan().evaluate(NATURAL)


def test_exec_options_carry_verify():
    from repro.api import Database, ExecOptions
    assert ExecOptions().verify is None
    opts = ExecOptions(verify=True)
    db = Database(weighted_structure(), options=opts)
    try:
        assert db.prepare(TRIANGLE).value(NATURAL) \
            == triangle_plan().evaluate(NATURAL)
    finally:
        db.close()


def test_verify_store_cli(tmp_path):
    structure = weighted_structure()
    store = PlanStore(tmp_path)
    _compile_structure_query(structure, TRIANGLE, plan_store=store)
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src") \
        + os.pathsep + env.get("PYTHONPATH", "")
    ok = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "verify-store",
         str(tmp_path)], capture_output=True, text=True, env=env)
    assert ok.returncode == 0, ok.stdout + ok.stderr
    assert "0 failed" in ok.stdout

    key = plan_cache_key(structure, TRIANGLE, frozenset(), True)
    corrupt_store_entry(store, key)
    bad = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "verify-store",
         str(tmp_path)], capture_output=True, text=True, env=env)
    assert bad.returncode == 1, bad.stdout + bad.stderr
    assert "FAIL" in bad.stdout and "recorded" in bad.stdout
