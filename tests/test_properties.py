"""Hypothesis property tests: semiring axioms and backend equivalence.

Two families:

* every shipped semiring satisfies the commutative-semiring axioms on
  random carrier samples (via ``check_semiring_axioms``), and lasso
  arithmetic agrees with naive n-fold addition on finite carriers;
* the pure-Python and vectorized NumPy batched backends agree on random
  circuits (inputs, constants, add/mul/perm gates) under random
  valuation batches, for every semiring with an array kernel.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (HAVE_NUMPY, BatchedEvaluator, CircuitBuilder,
                            StaticEvaluator, VectorizedEvaluator, kernel_for)
from repro.semirings import (BOOLEAN, INF, INTEGER, MAX_PLUS, MIN_MAX,
                            MIN_PLUS, NATURAL, RATIONAL, BoundedMinMax,
                            FloatField, FreeSemiring, ModularRing, Poly,
                            ProductSemiring, ScalarMultiplier, SetAlgebra,
                            check_semiring_axioms,
                            saturating_counter_semiring)

FLOAT = FloatField()
FREE = FreeSemiring()

# -- carrier strategies ---------------------------------------------------------

_GENERATORS = ("x", "y", "z")


def _poly_strategy():
    monomial = st.lists(st.sampled_from(_GENERATORS),
                        max_size=2).map(lambda g: tuple(sorted(g)))
    return st.dictionaries(monomial, st.integers(1, 3),
                           max_size=3).map(Poly)


def _finite(sr):
    return st.sampled_from(list(sr.elements()))


#: (id, semiring, element strategy) for every shipped semiring.  Floats
#: are restricted to integral values so associativity/distributivity are
#: exact; tropical carriers include their infinities.
SEMIRING_STRATEGIES = [
    ("B", BOOLEAN, st.booleans()),
    ("set-algebra", SetAlgebra(frozenset("abc")),
     st.frozensets(st.sampled_from("abc"))),
    ("N", NATURAL, st.integers(0, 50)),
    ("Z", INTEGER, st.integers(-50, 50)),
    ("Q", RATIONAL, st.fractions(min_value=-10, max_value=10,
                                 max_denominator=12)),
    ("float", FLOAT, st.integers(-30, 30).map(float)),
    ("min-plus", MIN_PLUS,
     st.one_of(st.integers(-20, 20).map(float), st.just(INF))),
    ("max-plus", MAX_PLUS,
     st.one_of(st.integers(-20, 20).map(float), st.just(-INF))),
    ("min-max", MIN_MAX,
     st.one_of(st.integers(0, 20), st.just(INF))),
    ("min-max-3", BoundedMinMax(3), _finite(BoundedMinMax(3))),
    ("Z_7", ModularRing(7), _finite(ModularRing(7))),
    ("sat-4", saturating_counter_semiring(4),
     _finite(saturating_counter_semiring(4))),
    ("N x B", ProductSemiring(NATURAL, BOOLEAN),
     st.tuples(st.integers(0, 20), st.booleans())),
    ("free", FREE, _poly_strategy()),
]


@pytest.mark.parametrize("sr,elements",
                         [(sr, strat) for _, sr, strat in SEMIRING_STRATEGIES],
                         ids=[name for name, _, _ in SEMIRING_STRATEGIES])
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_semiring_axioms_hold_on_random_samples(sr, elements, data):
    samples = data.draw(st.lists(elements, min_size=1, max_size=4))
    check_semiring_axioms(sr, samples)


@pytest.mark.parametrize("sr,elements",
                         [(sr, strat) for _, sr, strat in SEMIRING_STRATEGIES],
                         ids=[name for name, _, _ in SEMIRING_STRATEGIES])
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_scale_matches_repeated_addition(sr, elements, data):
    element = data.draw(elements)
    n = data.draw(st.integers(0, 12))
    naive = sr.zero
    for _ in range(n):
        naive = sr.add(naive, element)
    assert sr.eq(sr.scale(n, element), naive)


FINITE_CASES = [(name, sr, strat) for name, sr, strat in SEMIRING_STRATEGIES
                if sr.is_finite]


@pytest.mark.parametrize("sr,elements",
                         [(sr, strat) for _, sr, strat in FINITE_CASES],
                         ids=[name for name, _, _ in FINITE_CASES])
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_lasso_arithmetic_matches_naive_multiples(sr, elements, data):
    element = data.draw(elements)
    n = data.draw(st.integers(1, 200))
    multiplier = ScalarMultiplier(sr, element)
    naive = sr.zero
    for _ in range(min(n, 40)):
        naive = sr.add(naive, element)
    if n <= 40:
        assert sr.eq(multiplier.times(n), naive)
    else:  # deep into the cycle: consistency with the recurrence
        assert sr.eq(multiplier.times(n),
                     sr.add(multiplier.times(n - 1), element))


# -- random circuits: backend equivalence ----------------------------------------


@st.composite
def circuits(draw):
    """A small random circuit plus its input keys.

    Starts from input and constant gates and grows a random DAG of
    add/mul/perm gates through the hash-consing builder (which may
    collapse trivial shapes, exactly as compilation does).
    """
    builder = CircuitBuilder()
    num_inputs = draw(st.integers(1, 5))
    keys = [("in", index) for index in range(num_inputs)]
    gates = [builder.input(key) for key in keys]
    gates.append(builder.const(draw(st.integers(0, 3))))
    num_ops = draw(st.integers(1, 10))
    for _ in range(num_ops):
        kind = draw(st.sampled_from(("add", "mul", "perm")))
        if kind == "perm":
            rows = draw(st.integers(2, 3))
            cols = draw(st.integers(rows, 4))
            entries = [[draw(st.one_of(st.none(), st.sampled_from(gates)))
                        for _ in range(cols)] for _ in range(rows)]
            gate = builder.perm(entries)
        else:
            fan_in = draw(st.integers(2, 4))
            children = [draw(st.sampled_from(gates)) for _ in range(fan_in)]
            gate = (builder.add if kind == "add" else builder.mul)(children)
        if gate is not None:
            gates.append(gate)
    output = builder.add([g for g in gates[-3:]])
    return builder.build(output), keys


def _valuation_batch(draw, keys, convert):
    batch_size = draw(st.integers(1, 4))
    batches = []
    for _ in range(batch_size):
        values = {key: convert(draw(st.integers(0, 6))) for key in keys}
        batches.append(lambda key, _v=values: _v[key])
    return batches


#: Semirings with an array kernel, plus a converter from small ints.
KERNEL_CASES = [
    ("N", NATURAL, lambda v: v),
    ("Z", INTEGER, lambda v: v - 3),
    ("Q", RATIONAL, lambda v: RATIONAL.coerce(v)),
    ("float", FLOAT, float),
    ("min-plus", MIN_PLUS, lambda v: float(v) if v else INF),
    ("max-plus", MAX_PLUS, lambda v: float(v) if v else -INF),
]


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
@pytest.mark.parametrize("sr,convert",
                         [(sr, conv) for _, sr, conv in KERNEL_CASES],
                         ids=[name for name, _, _ in KERNEL_CASES])
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_numpy_backend_matches_python_on_random_circuits(sr, convert, data):
    assert kernel_for(sr) is not None
    circuit, keys = data.draw(circuits())
    valuations = _valuation_batch(data.draw, keys, convert)
    python_results = BatchedEvaluator(circuit, sr, valuations).results()
    numpy_results = VectorizedEvaluator(circuit, sr, valuations).results()
    assert len(python_results) == len(numpy_results)
    for expected, got in zip(python_results, numpy_results):
        assert sr.eq(expected, got), (expected, got)


@pytest.mark.parametrize("sr,convert",
                         [(sr, conv) for _, sr, conv in KERNEL_CASES],
                         ids=[name for name, _, _ in KERNEL_CASES])
@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_batched_backend_matches_static_loop(sr, convert, data):
    """The python batched sweep is the per-valuation StaticEvaluator, in
    every semiring — holds on the no-numpy CI leg too."""
    circuit, keys = data.draw(circuits())
    valuations = _valuation_batch(data.draw, keys, convert)
    batched = BatchedEvaluator(circuit, sr, valuations).results()
    singles = [StaticEvaluator(circuit, sr, fn).value() for fn in valuations]
    for expected, got in zip(singles, batched):
        assert sr.eq(expected, got)
