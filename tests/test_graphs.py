"""Sparse-graph substrate: degeneracy, treedepth, colorings, generators."""

from __future__ import annotations

import itertools

import pytest

from repro.graphs import (Graph, Orientation, bounded_depth_forest,
                          caterpillar, complete_graph, cycle_graph,
                          degeneracy_ordering, dfs_forest,
                          elimination_forest, enumerate_cliques,
                          exact_treedepth, fraternal_transitive_step,
                          greedy_coloring, grid_graph, longest_path_at_most,
                          low_treedepth_coloring, path_graph,
                          random_bounded_degree, random_tree, sparse_binomial,
                          star_graph, treedepth_forest, triangulated_grid,
                          verify_low_treedepth)

GRAPHS = {
    "path10": path_graph(10),
    "cycle8": cycle_graph(8),
    "star9": star_graph(9),
    "grid4": grid_graph(4, 4),
    "tri4": triangulated_grid(4, 4),
    "tree": random_tree(25, seed=3),
    "binomial": sparse_binomial(40, 2.0, seed=7),
    "bdeg": random_bounded_degree(30, 3, seed=5),
}


class TestGraph:
    def test_basic_operations(self):
        g = Graph([1, 2, 3], [(1, 2), (2, 3)])
        assert g.has_edge(1, 2) and g.has_edge(2, 1)
        assert not g.has_edge(1, 3)
        assert g.degree(2) == 2 and g.edge_count() == 2
        g.add_edge(1, 1)  # self-loops ignored
        assert g.edge_count() == 2

    def test_clique_and_subgraph(self):
        g = Graph()
        g.add_clique([1, 2, 3])
        assert g.is_clique([1, 2, 3]) and g.edge_count() == 3
        sub = g.subgraph([1, 2])
        assert sub.edge_count() == 1 and len(sub) == 2

    def test_components(self):
        g = Graph(range(5), [(0, 1), (2, 3)])
        comps = sorted(sorted(c) for c in g.connected_components())
        assert comps == [[0, 1], [2, 3], [4]]


class TestDegeneracy:
    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_ordering_invariant(self, name):
        g = GRAPHS[name]
        ordering, degeneracy = degeneracy_ordering(g)
        assert sorted(ordering, key=repr) == sorted(g.vertices(), key=repr)
        position = {v: i for i, v in enumerate(ordering)}
        worst = max((sum(1 for u in g.neighbors(v) if position[u] > position[v])
                     for v in ordering), default=0)
        assert worst <= degeneracy

    def test_known_degeneracies(self):
        assert degeneracy_ordering(path_graph(10))[1] == 1
        assert degeneracy_ordering(cycle_graph(8))[1] == 2
        assert degeneracy_ordering(complete_graph(5))[1] == 4
        assert degeneracy_ordering(grid_graph(5, 5))[1] == 2

    @pytest.mark.parametrize("name", ["grid4", "tri4", "tree"])
    def test_orientation_acyclic_bounded(self, name):
        g = GRAPHS[name]
        orientation = Orientation(g)
        _, degeneracy = degeneracy_ordering(g)
        assert orientation.out_degree <= degeneracy
        for v in g.vertices():
            for i, u in enumerate(orientation.out[v]):
                assert orientation.position[u] > orientation.position[v]
                assert orientation.function(i + 1, v) == u
            assert orientation.function(len(orientation.out[v]) + 1, v) == v

    def test_clique_enumeration_matches_bruteforce(self):
        g = triangulated_grid(3, 3)
        for size in (1, 2, 3):
            fast = {frozenset(c) for c in enumerate_cliques(g, size)}
            slow = {frozenset(c)
                    for c in itertools.combinations(g.vertices(), size)
                    if g.is_clique(c)}
            assert fast == slow

    def test_clique_source_unique(self):
        g = triangulated_grid(3, 3)
        orientation = Orientation(g)
        for clique in enumerate_cliques(g, 3, orientation):
            source = orientation.source_of_clique(list(clique))
            assert all(u == source or u in orientation.out[source] or
                       orientation.position[u] > orientation.position[source]
                       for u in clique)


class TestTreedepth:
    def test_exact_values(self):
        assert exact_treedepth(path_graph(1)) == 1
        assert exact_treedepth(path_graph(3)) == 2
        assert exact_treedepth(path_graph(7)) == 3
        assert exact_treedepth(star_graph(6)) == 2
        assert exact_treedepth(complete_graph(4)) == 4
        assert exact_treedepth(cycle_graph(5)) == 4  # ceil(log2 5) + 1

    @pytest.mark.parametrize("name", ["path10", "grid4", "tree", "star9"])
    def test_forests_cover(self, name):
        g = GRAPHS[name]
        for forest in (dfs_forest(g), elimination_forest(g)):
            assert forest.covers(g)
            assert sorted(forest.parent, key=repr) == \
                sorted(g.vertices(), key=repr)

    def test_elimination_forest_shallow_on_paths(self):
        ef = elimination_forest(path_graph(128))
        assert ef.height() <= 9          # ~ log2(128) + 1
        assert dfs_forest(path_graph(128)).height() == 128

    def test_treedepth_forest_optimal_height(self):
        g = path_graph(7)
        forest = treedepth_forest(g)
        assert forest.covers(g)
        assert forest.height() == exact_treedepth(g)

    def test_longest_path_bound(self):
        assert longest_path_at_most(star_graph(8), 3)
        assert not longest_path_at_most(path_graph(6), 5)

    def test_ancestor_navigation(self):
        forest = elimination_forest(path_graph(8))
        for v in forest.parent:
            path = forest.ancestors(v)
            assert path[-1] == v
            for depth, node in enumerate(path):
                assert forest.depth[node] == depth
                assert forest.ancestor(v, depth) == node


class TestColoring:
    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_greedy_coloring_proper(self, name):
        g = GRAPHS[name]
        colors = greedy_coloring(g)
        assert all(colors[u] != colors[v] for u, v in g.edges())
        _, degeneracy = degeneracy_ordering(g)
        assert len(set(colors.values())) <= degeneracy + 1

    def test_augmentation_is_supergraph(self):
        g = grid_graph(4, 4)
        augmented = fraternal_transitive_step(g)
        for u, v in g.edges():
            assert augmented.has_edge(u, v)
        assert augmented.edge_count() >= g.edge_count()

    @pytest.mark.parametrize("name,p", [("path10", 2), ("grid4", 2),
                                        ("tree", 2), ("cycle8", 3)])
    def test_low_treedepth_property(self, name, p):
        g = GRAPHS[name]
        coloring = low_treedepth_coloring(g, p)
        assert set(coloring) == set(g.vertices())
        # The union of any <= p classes must induce small treedepth.
        assert verify_low_treedepth(g, coloring, p, depth_bound=2 ** (p + 2))

    def test_coloring_proper_after_augmentation(self):
        g = triangulated_grid(3, 3)
        coloring = low_treedepth_coloring(g, 2)
        assert all(coloring[u] != coloring[v] for u, v in g.edges())


class TestGenerators:
    def test_shapes_and_sizes(self):
        assert len(grid_graph(3, 4)) == 12
        assert grid_graph(3, 4).edge_count() == 2 * 12 - 3 - 4
        assert triangulated_grid(3, 3).edge_count() == \
            grid_graph(3, 3).edge_count() + 4
        assert star_graph(7).max_degree() == 6
        assert caterpillar(4, 2).edge_count() == 3 + 8

    def test_bounded_depth_forest(self):
        g, parent = bounded_depth_forest(40, 3, seed=2)
        depth = {}
        for v in sorted(parent, key=lambda v: (parent[v] is not None, v)):
            depth[v] = 0 if parent[v] is None else depth[parent[v]] + 1
        assert max(depth.values()) <= 2

    def test_random_bounded_degree(self):
        g = random_bounded_degree(50, 3, seed=1)
        assert g.max_degree() <= 3

    def test_sparse_binomial_density(self):
        g = sparse_binomial(300, 2.0, seed=5)
        assert 0 < g.edge_count() < 3 * 300

    def test_random_tree_is_tree(self):
        g = random_tree(30, seed=9)
        assert g.edge_count() == 29
        assert len(g.connected_components()) == 1
