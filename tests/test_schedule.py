"""Layer schedules: the layer invariant, kind grouping, and caching."""

from __future__ import annotations

import random

import pytest

from repro.circuits import (AddGate, CircuitBuilder, ConstGate, InputGate,
                            MulGate, PermGate, build_schedule,
                            optimize_circuit)
from repro.core import compile_structure_query
from repro.graphs import path_graph, triangulated_grid
from repro.logic import Atom, Bracket, Sum, Weight

from tests.util import weighted_graph_structure

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

TRIANGLE = Sum(("x", "y", "z"),
               Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
               * w("x", "y") * w("y", "z") * w("z", "x"))


def random_circuit(seed: int, n_inputs: int = 8, n_ops: int = 40):
    """A random well-formed circuit mixing all gate kinds."""
    rng = random.Random(seed)
    builder = CircuitBuilder()
    pool = [builder.input(("in", i)) for i in range(n_inputs)]
    pool.append(builder.const(rng.randint(0, 3)))
    for _ in range(n_ops):
        kind = rng.choice(("add", "mul", "mul", "perm"))
        if kind == "perm":
            n_rows = rng.randint(2, 3)
            n_cols = rng.randint(n_rows, n_rows + 2)
            gate = builder.perm(
                [[rng.choice(pool) if rng.random() < 0.85 else None
                  for _ in range(n_cols)] for _ in range(n_rows)])
        else:
            children = [rng.choice(pool) for _ in range(rng.randint(2, 4))]
            gate = (builder.add if kind == "add" else builder.mul)(children)
        if gate is not None:
            pool.append(gate)
    return builder.build(builder.add(pool[-5:]))


@pytest.mark.parametrize("seed", range(6))
def test_layer_invariant_random_circuits(seed):
    circuit = random_circuit(seed)
    schedule = build_schedule(circuit)
    schedule.validate()
    # Every live gate is scheduled exactly once, in its lowest legal layer.
    assert schedule.live_count() == len(circuit.live_gates())
    for layer in schedule.layers:
        for group in layer.groups:
            for gate_id in group.gate_ids:
                children = circuit.children_of(circuit.gates[gate_id])
                expected = (1 + max(schedule.layer_of[c] for c in children)
                            if children else 0)
                assert schedule.layer_of[gate_id] == layer.index == expected


def test_groups_are_kind_and_fanin_uniform():
    circuit = random_circuit(99)
    schedule = build_schedule(circuit)
    kind_of = {AddGate: "add", MulGate: "mul", PermGate: "perm",
               InputGate: "input", ConstGate: "const"}
    for layer in schedule.layers:
        for group in layer.groups:
            for position, gate_id in enumerate(group.gate_ids):
                gate = circuit.gates[gate_id]
                assert kind_of[type(gate)] == group.kind
                if group.kind in ("add", "mul"):
                    assert len(gate.children) == group.fan_in
                    assert group.children[position] == gate.children


def test_inputs_and_consts_in_layer_zero():
    circuit = random_circuit(7)
    schedule = build_schedule(circuit)
    assert schedule.input_gates
    for gate_id, key in schedule.input_gates:
        assert schedule.layer_of[gate_id] == 0
        assert circuit.gates[gate_id].key == key
    for gate_id, raw in schedule.const_gates:
        assert schedule.layer_of[gate_id] == 0
        assert circuit.gates[gate_id].value == raw


def test_schedule_covers_only_live_gates():
    builder = CircuitBuilder()
    a, b = builder.input("a"), builder.input("b")
    builder.add([a, b])           # dead: not reachable from the output
    out = builder.mul([a, b])
    schedule = build_schedule(builder.build(out))
    scheduled = {g for layer in schedule.layers
                 for group in layer.groups for g in group.gate_ids}
    assert scheduled == set(builder.build(out).live_gates())


@pytest.mark.parametrize("optimize", [False, True])
def test_compiled_query_schedules(optimize):
    structure = weighted_graph_structure(triangulated_grid(3, 3), seed=5)
    compiled = compile_structure_query(structure, TRIANGLE, optimize=optimize)
    schedule = compiled.schedule()
    schedule.validate()
    # Cached: the same object comes back (circuits are immutable).
    assert compiled.schedule() is schedule
    stats = schedule.stats()
    assert stats["live_gates"] == compiled.circuit.stats()["gates"]
    assert stats["layers"] == len(schedule.layers) > 1
    assert stats["inputs"] == compiled.circuit.stats()["inputs"]


def test_optimized_circuit_schedule_no_staler_than_raw():
    structure = weighted_graph_structure(path_graph(6), seed=1)
    compiled = compile_structure_query(structure, TRIANGLE, optimize=False)
    optimized = optimize_circuit(compiled.circuit).circuit
    raw, opt = build_schedule(compiled.circuit), build_schedule(optimized)
    raw.validate()
    opt.validate()
    assert opt.live_count() <= raw.live_count()
