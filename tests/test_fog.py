"""FOG[C] nested weighted queries (Theorem 26)."""

from __future__ import annotations

import random

import pytest

from repro.fog import (SAtom, SConst, SEq, SIverson, SMul, SNot,
                       divide, divide_into_max_plus, eval_fog_naive,
                       evaluate_fog, greater_than, guarded, less_than,
                       modulo_test, s_exists, s_sum, to_formula, to_wexpr)
from repro.graphs import path_graph, star_graph, triangulated_grid
from repro.semirings import (BOOLEAN, INTEGER, MAX_PLUS, NATURAL, RATIONAL)
from repro.structures import graph_structure

E = lambda x, y: SAtom("E", (x, y))


def weighted_structure(graph, seed=0, hi=9):
    structure = graph_structure(graph)
    rng = random.Random(seed)
    for v in structure.domain:
        structure.add_tuple("V", (v,))
        structure.set_weight("wN", (v,), rng.randint(0, hi))
    return structure


def wN(var):
    return SAtom("wN", (var,), NATURAL)


class TestSyntaxTyping:
    def test_mixed_semirings_rejected(self):
        with pytest.raises(TypeError):
            SMul((E("x", "y"), wN("x")))

    def test_negation_boolean_only(self):
        with pytest.raises(TypeError):
            SNot(wN("x"))

    def test_iverson_requires_boolean(self):
        with pytest.raises(TypeError):
            SIverson(wN("x"), NATURAL)
        bracket = SIverson(E("x", "y"), NATURAL)
        assert bracket.semiring is NATURAL

    def test_guard_must_cover_free_vars(self):
        with pytest.raises(TypeError):
            guarded("V", ("x",), greater_than(NATURAL), wN("x"), wN("y"))

    def test_connective_arity_and_types(self):
        with pytest.raises(TypeError):
            guarded("V", ("x",), greater_than(NATURAL), wN("x"))
        with pytest.raises(TypeError):
            guarded("V", ("x",), greater_than(RATIONAL), wN("x"), wN("x"))

    def test_output_semiring_propagates(self):
        expr = s_sum("x", SIverson(E("x", "y"), NATURAL))
        assert expr.semiring is NATURAL
        assert s_exists("y", E("x", "y")).semiring is BOOLEAN


class TestConversion:
    def test_to_formula_roundtrip(self):
        expr = s_exists("y", E("x", "y") & ~SEq("x", "y"))
        structure = graph_structure(path_graph(3))
        formula = to_formula(expr, structure)
        assert formula.free_vars() == {"x"}

    def test_to_wexpr_counts(self):
        structure = graph_structure(path_graph(4))
        expr = s_sum(("x", "y"), SIverson(E("x", "y"), NATURAL))
        from repro.engine import WeightedQueryEngine
        engine = WeightedQueryEngine(structure,
                                     to_wexpr(expr, structure), NATURAL)
        assert engine.value() == len(structure.relations["E"])

    def test_negation_above_quantifier_rejected(self):
        structure = graph_structure(path_graph(3))
        expr = SNot(s_exists("y", E("x", "y")))
        with pytest.raises(ValueError):
            to_wexpr(expr, structure)


class TestIntroExamples:
    def test_max_average_neighbor_weight(self):
        """max_x (Σ_y [E(x,y)]·w(y)) / (Σ_y [E(x,y)]) — intro, example 1."""
        structure = weighted_structure(triangulated_grid(3, 3), seed=1)
        reference = structure.copy()
        query = s_sum("x", guarded(
            "V", ("x",), divide_into_max_plus(NATURAL),
            s_sum("y", SIverson(E("x", "y"), NATURAL) * wN("y")),
            s_sum("y", SIverson(E("x", "y"), NATURAL))))
        expected = eval_fog_naive(query, reference)
        assert MAX_PLUS.eq(evaluate_fog(structure, query).value(), expected)

    def test_heavy_neighbor_boolean_query(self):
        """∃y E(x,y) ∧ (w(y) > Σ_z [E(y,z)]·w(z)) — intro, example 2."""
        structure = weighted_structure(triangulated_grid(3, 3), seed=5)
        reference = structure.copy()
        heavy = guarded("V", ("y",), greater_than(NATURAL), wN("y"),
                        s_sum("z", SIverson(E("y", "z"), NATURAL) * wN("z")))
        query = s_exists("y", E("x", "y") & heavy)
        result = evaluate_fog(structure, query)
        for v in structure.domain:
            assert result.query(v) == eval_fog_naive(query, reference,
                                                     {"x": v})

    def test_average_weight_rational(self):
        structure = weighted_structure(star_graph(7), seed=2)
        reference = structure.copy()
        query = s_sum("x", guarded(
            "V", ("x",), divide(NATURAL, RATIONAL),
            s_sum("y", SIverson(E("x", "y"), NATURAL) * wN("y")),
            s_sum("y", SIverson(E("x", "y"), NATURAL))))
        assert evaluate_fog(structure, query).value() == \
            eval_fog_naive(query, reference)


class TestFOCStyle:
    def test_threshold_counting(self):
        """FOC1-style: vertices with at least 3 neighbors."""
        from repro.fog import at_least
        structure = weighted_structure(triangulated_grid(3, 3), seed=0)
        reference = structure.copy()
        degree = s_sum("y", SIverson(E("x", "y"), NATURAL))
        popular = guarded("V", ("x",), at_least(3, NATURAL), degree)
        result = evaluate_fog(structure, popular)
        for v in structure.domain:
            assert result.query(v) == eval_fog_naive(popular, reference,
                                                     {"x": v})

    def test_mod_quantifier(self):
        """FO+MOD-style: even degree test (Berkholz et al. [3])."""
        structure = weighted_structure(path_graph(7), seed=0)
        reference = structure.copy()
        degree = s_sum("y", SIverson(E("x", "y"), INTEGER))
        even = guarded("V", ("x",), modulo_test(2, 0, INTEGER), degree)
        result = evaluate_fog(structure, even)
        for v in structure.domain:
            assert result.query(v) == eval_fog_naive(even, reference,
                                                     {"x": v})

    def test_nested_guarded_connectives(self):
        """Connective output feeding another connective (induction depth 2)."""
        structure = weighted_structure(triangulated_grid(3, 3), seed=7)
        reference = structure.copy()
        degree = s_sum("y", SIverson(E("x", "y"), NATURAL))
        heavy = guarded("V", ("x",), greater_than(NATURAL), wN("x"), degree)
        # count of heavy neighbors, compared with 1
        heavy_subst = guarded("V", ("y",), greater_than(NATURAL), wN("y"),
                              s_sum("z", SIverson(E("y", "z"), NATURAL)))
        count_heavy = s_sum("y", SIverson(E("x", "y") & heavy_subst,
                                          NATURAL))
        lonely = guarded("V", ("x",), less_than(NATURAL), count_heavy,
                         SConst(2, NATURAL))
        result = evaluate_fog(structure, lonely)
        for v in structure.domain[:6]:
            assert result.query(v) == eval_fog_naive(lonely, reference,
                                                     {"x": v})


class TestEnumerationBridge:
    def test_boolean_output_enumerates(self):
        structure = weighted_structure(triangulated_grid(3, 3), seed=3)
        reference = structure.copy()
        heavy = guarded("V", ("y",), greater_than(NATURAL), wN("y"),
                        s_sum("z", SIverson(E("y", "z"), NATURAL) * wN("z")))
        query = E("x", "y") & heavy
        result = evaluate_fog(structure, query)
        answers = sorted(result.enumerate())
        expected = sorted(
            (a, b) for a in reference.domain for b in reference.domain
            if eval_fog_naive(query, reference, {"x": a, "y": b}))
        assert answers == expected
