"""The overflow-guarded exact-carrier fast paths (repro.circuits.vectorized).

Three families:

* a hypothesis equivalence suite proving the int64 fast path, the exact
  object-dtype kernel, and the pure-Python backend agree on random
  circuits under random valuations for ``N``/``Z``/``Q`` — with a
  dedicated strategy that straddles the int64 (and, for ``Q``, the
  2^53 float) overflow boundary so the guarded fallback branch is
  actually exercised, plus a slow-marked deep sweep for the nightly
  hypothesis profile (see ``tests/conftest.py``);
* deterministic unit tests of the guards themselves: exact boundary
  values (``2^63 - 1`` stays native, ``2^63`` trips), negative products,
  the ``INT64_MIN * -1`` wraparound that defeats naive division checks,
  ``Q`` denominator blow-ups, mixed-layer circuits where only one layer
  overflows, and the fallback telemetry surfaced through
  ``stats()``/``explain()``;
* eager validation of the ``exact_mode`` knob through the one shared
  seam (:mod:`repro.circuits.backends`): unknown modes and
  ``"int64"``-without-NumPy are both rejected at
  :class:`~repro.api.ExecOptions` construction — these run (and matter
  most) on the no-numpy CI leg.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

import repro.circuits.backends as backends_module
from repro.api import Database, ExecOptions
from repro.circuits import (HAVE_NUMPY, BatchedEvaluator, CircuitBuilder,
                            VectorizedEvaluator, kernel_for,
                            valuation_from_dict, validate_exact_mode)
from repro.logic.weighted import WConst
from repro.semirings import INTEGER, NATURAL, RATIONAL

from tests.test_properties import circuits

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

INT64_MAX = 2 ** 63 - 1
INT64_MIN = -(2 ** 63)


def build_sum(*keys):
    """One add gate over fresh inputs."""
    builder = CircuitBuilder()
    return builder.build(builder.add([builder.input(k) for k in keys])), keys


def build_product(*keys):
    """One mul gate over fresh inputs."""
    builder = CircuitBuilder()
    return builder.build(builder.mul([builder.input(k) for k in keys])), keys


def run_all_paths(circuit, sr, assignments):
    """(python, object-kernel, int64-kernel evaluator) for one batch."""
    valuations = [valuation_from_dict(a, sr.zero) for a in assignments]
    python = BatchedEvaluator(circuit, sr, valuations).results()
    exact = VectorizedEvaluator(circuit, sr, valuations,
                                kernel=kernel_for(sr, "object"))
    fast = VectorizedEvaluator(circuit, sr, valuations,
                               kernel=kernel_for(sr, "int64"))
    return python, exact, fast


# -- hypothesis: the three paths agree, straddling the overflow boundary --------

#: Values concentrated around the int64 (and 2^53) boundaries, mixed
#: with small counting weights: products and sums of a handful of these
#: routinely cross 2^63, so the guarded fallback branch runs for real.
def straddling_naturals():
    return st.one_of(
        st.integers(0, 9),
        st.integers(2 ** 31, 2 ** 32),        # pairs overflow products
        st.integers(2 ** 62, 2 ** 63 + 2),    # straddles the add boundary
        st.integers(2 ** 63, 2 ** 70),        # beyond int64 entirely
    )


def straddling_integers():
    magnitude = straddling_naturals()
    return st.builds(lambda v, neg: -v if neg else v,
                     magnitude, st.booleans()) | st.just(INT64_MIN)


def straddling_rationals():
    return st.one_of(
        straddling_integers().map(Fraction),
        st.integers(2 ** 52, 2 ** 54).map(Fraction),  # the float window edge
        st.fractions(min_value=-10, max_value=10, max_denominator=12),
    )


STRADDLE_CASES = [
    ("N", NATURAL, straddling_naturals),
    ("Z", INTEGER, straddling_integers),
    ("Q", RATIONAL, straddling_rationals),
]


def _assert_three_way(sr, data):
    circuit, keys = data.draw(circuits())
    strategy = {name: strat for name, _, strat in STRADDLE_CASES}[sr.name]()
    batch = data.draw(st.integers(1, 4))
    assignments = [{key: data.draw(strategy) for key in keys}
                   for _ in range(batch)]
    python, exact, fast = run_all_paths(circuit, sr, assignments)
    for a, b, c in zip(python, exact.results(), fast.results()):
        assert sr.eq(a, b), (sr.name, a, b)
        assert sr.eq(a, c), (sr.name, a, c)
    # The native path may have promoted mid-run; its telemetry must say so.
    assert fast.kernel_requested.endswith(("-int64", "-f64int"))
    if fast.fallbacks:
        assert fast.kernel_used == f"{sr.name}-object"


@needs_numpy
@pytest.mark.parametrize("sr", [sr for _, sr, _ in STRADDLE_CASES],
                         ids=[name for name, _, _ in STRADDLE_CASES])
@given(data=st.data())
def test_fast_path_exact_across_overflow_boundary(sr, data):
    _assert_three_way(sr, data)


@needs_numpy
@pytest.mark.slow
@pytest.mark.parametrize("sr", [sr for _, sr, _ in STRADDLE_CASES],
                         ids=[name for name, _, _ in STRADDLE_CASES])
@settings(max_examples=200)
@given(data=st.data())
def test_fast_path_exact_deep_sweep(sr, data):
    """The nightly-budget version of the three-way equivalence sweep."""
    _assert_three_way(sr, data)


@needs_numpy
@given(data=st.data())
def test_override_path_matches_full_batch(data):
    """from_overrides (the serving hot path) agrees with the full-batch
    constructor and the pure-Python backend under straddling edits."""
    circuit, keys = data.draw(circuits())
    strategy = straddling_integers()
    base = {key: data.draw(strategy) for key in keys}
    overrides = [
        {key: data.draw(strategy)
         for key in data.draw(st.lists(st.sampled_from(list(keys)),
                                       unique=True, max_size=len(keys)))}
        for _ in range(data.draw(st.integers(1, 3)))]
    evaluator = VectorizedEvaluator.from_overrides(
        circuit, INTEGER, base, overrides,
        kernel=kernel_for(INTEGER, "int64"))
    expected = BatchedEvaluator(circuit, INTEGER, [
        valuation_from_dict({**base, **override}, 0)
        for override in overrides]).results()
    assert evaluator.results() == expected


# -- deterministic guard unit tests ---------------------------------------------

@needs_numpy
class TestInt64Guard:
    def test_sum_landing_on_int64_max_stays_native(self):
        circuit, _ = build_sum("u", "v")
        python, exact, fast = run_all_paths(
            circuit, NATURAL, [{"u": 2 ** 62, "v": 2 ** 62 - 1}])
        assert python == exact.results() == fast.results() == [INT64_MAX]
        assert fast.fallbacks == 0
        assert fast.kernel_used == "N-int64"

    def test_sum_one_past_int64_max_falls_back_exactly(self):
        circuit, _ = build_sum("u", "v")
        python, exact, fast = run_all_paths(
            circuit, NATURAL, [{"u": 2 ** 62, "v": 2 ** 62}])
        assert python == exact.results() == fast.results() == [2 ** 63]
        assert fast.fallbacks == 1
        assert fast.kernel_used == "N-object"

    def test_negative_sum_boundary(self):
        circuit, _ = build_sum("u", "v")
        keep = [{"u": INT64_MIN + 1, "v": -1}]   # lands exactly on INT64_MIN
        trip = [{"u": INT64_MIN, "v": -1}]       # one past it
        for assignments, fallbacks in ((keep, 0), (trip, 1)):
            python, exact, fast = run_all_paths(circuit, INTEGER, assignments)
            assert python == exact.results() == fast.results()
            assert fast.fallbacks == fallbacks

    def test_negative_product_overflow_detected(self):
        circuit, _ = build_product("u", "v")
        python, exact, fast = run_all_paths(
            circuit, INTEGER, [{"u": -(2 ** 32), "v": 2 ** 32}])
        assert python == exact.results() == fast.results() == [-(2 ** 64)]
        assert fast.fallbacks == 1

    def test_negative_product_landing_on_int64_min_stays_native(self):
        circuit, _ = build_product("u", "v")
        python, exact, fast = run_all_paths(
            circuit, INTEGER, [{"u": -(2 ** 31), "v": 2 ** 32}])
        assert python == exact.results() == fast.results() == [INT64_MIN]
        assert fast.fallbacks == 0

    def test_int64_min_times_minus_one_wraparound_detected(self):
        # The one product whose division-based check itself overflows:
        # INT64_MIN * -1 wraps back to INT64_MIN and INT64_MIN // -1
        # cannot be computed in int64 — the guard masks it explicitly.
        circuit, _ = build_product("u", "v")
        python, exact, fast = run_all_paths(
            circuit, INTEGER, [{"u": INT64_MIN, "v": -1}])
        assert python == exact.results() == fast.results() == [2 ** 63]
        assert fast.fallbacks == 1

    def test_inputs_beyond_int64_fall_back_before_any_gate(self):
        circuit, _ = build_sum("u", "v")
        python, exact, fast = run_all_paths(
            circuit, NATURAL, [{"u": 2 ** 100, "v": 1}])
        assert python == exact.results() == fast.results() == [2 ** 100 + 1]
        assert fast.fallbacks == 1
        assert fast.kernel_used == "N-object"

    def test_mixed_layer_circuit_promotes_at_the_overflowing_layer(self):
        # Layer 1: two in-range sums.  Layer 2: their product overflows.
        # The guard must trip exactly once, at the product layer, and the
        # result must equal the exact backends'.
        builder = CircuitBuilder()
        a = builder.add([builder.input("a1"), builder.input("a2")])
        b = builder.add([builder.input("b1"), builder.input("b2")])
        circuit = builder.build(builder.mul([a, b]))
        assignments = [{"a1": 2 ** 31, "a2": 2 ** 31,
                        "b1": 2 ** 31, "b2": 2 ** 31}]
        python, exact, fast = run_all_paths(circuit, NATURAL, assignments)
        assert python == exact.results() == fast.results() == [2 ** 64]
        assert fast.fallbacks == 1
        assert fast.kernel_requested == "N-int64"
        assert fast.kernel_used == "N-object"

    def test_batch_isolation_one_hot_row_demotes_whole_batch_exactly(self):
        # One overflowing row in a 5-row batch: everything stays exact.
        circuit, _ = build_product("u", "v")
        assignments = [{"u": i, "v": i + 1} for i in range(4)]
        assignments.append({"u": 2 ** 40, "v": 2 ** 40})
        python, exact, fast = run_all_paths(circuit, NATURAL, assignments)
        assert python == exact.results() == fast.results()
        assert fast.results()[-1] == 2 ** 80


@needs_numpy
class TestRationalGuard:
    def test_integer_rationals_ride_the_float_fast_path(self):
        circuit, _ = build_product("u", "v")
        python, exact, fast = run_all_paths(
            circuit, RATIONAL, [{"u": Fraction(6), "v": Fraction(7)}])
        assert python == exact.results() == fast.results() == [Fraction(42)]
        assert fast.fallbacks == 0
        assert fast.kernel_used == "Q-f64int"
        assert all(isinstance(v, Fraction) for v in fast.results())

    def test_denominator_blow_up_falls_back_before_losing_precision(self):
        circuit, _ = build_sum("u", "v")
        python, exact, fast = run_all_paths(
            circuit, RATIONAL,
            [{"u": Fraction(1, 3), "v": Fraction(1, 10 ** 12 + 39)}])
        assert python == exact.results() == fast.results()
        assert fast.fallbacks == 1
        assert fast.kernel_used == "Q-object"

    def test_product_leaving_the_exact_float_window_trips(self):
        circuit, _ = build_product("u", "v")
        python, exact, fast = run_all_paths(
            circuit, RATIONAL,
            [{"u": Fraction(2 ** 30), "v": Fraction(2 ** 30)}])
        assert python == exact.results() == fast.results() \
            == [Fraction(2 ** 60)]
        assert fast.fallbacks == 1

    def test_promote_is_total_over_uninitialized_garbage(self):
        # Mid-run promotion walks the whole np.empty value array; slots
        # of not-yet-computed (and dead) gates hold heap garbage that
        # may be NaN/Inf.  promote must map them to placeholders (they
        # are overwritten before any read), never raise.
        import numpy as np
        kernel = kernel_for(RATIONAL, "int64")
        garbage = np.array([[7.0, np.nan], [np.inf, -np.inf]])
        promoted = kernel.promote(garbage)
        assert promoted[0][0] == Fraction(7)
        assert all(isinstance(v, Fraction) for v in promoted.ravel())

    def test_guard_trip_survives_nan_poisoned_heap(self):
        # The end-to-end shape of the same bug: poison the allocator
        # with NaNs, then force a mid-run f64 guard trip — the fallback
        # must run, not crash in the promotion.
        import numpy as np
        poison = [np.full(4096, np.nan) for _ in range(32)]
        del poison
        circuit, _ = build_product("u", "v")
        python, exact, fast = run_all_paths(
            circuit, RATIONAL,
            [{"u": Fraction(2 ** 40), "v": Fraction(2 ** 40)}])
        assert python == exact.results() == fast.results() \
            == [Fraction(2 ** 80)]
        assert fast.fallbacks == 1

    def test_sum_inside_the_window_is_exact_and_native(self):
        circuit, _ = build_sum("u", "v")
        python, exact, fast = run_all_paths(
            circuit, RATIONAL,
            [{"u": Fraction(2 ** 52), "v": Fraction(2 ** 52 - 1)}])
        assert python == exact.results() == fast.results() \
            == [Fraction(2 ** 53 - 1)]
        assert fast.fallbacks == 0


@needs_numpy
class TestTelemetry:
    def test_prepared_base_records_demotion(self):
        circuit, _ = build_sum("u", "v")
        kernel = kernel_for(NATURAL, "int64")
        small = VectorizedEvaluator.prepare_base(circuit, NATURAL,
                                                 {"u": 1, "v": 2},
                                                 kernel=kernel)
        assert small.kernel_name == "N-int64"
        huge = VectorizedEvaluator.prepare_base(circuit, NATURAL,
                                                {"u": 2 ** 90, "v": 2},
                                                kernel=kernel)
        assert huge.kernel_name == "N-object"

    def test_stats_and_explain_report_kernel_and_fallbacks(
            self, small_grid_structure):
        from repro.logic import Atom, Bracket, Sum, Weight
        edge_sum = Sum(("x", "y"),
                       Bracket(Atom("E", ("x", "y"))) * Weight("w",
                                                               ("x", "y")))
        edges = sorted(small_grid_structure.relations["E"])
        with Database(small_grid_structure) as db:
            q = db.prepare(edge_sum)
            q.batch([{("w", "w", edges[0]): 5}, {}], NATURAL)
            stats = q.stats()["exact_kernel"]
            assert stats["requested"] == "N-int64"
            assert stats["used"] == "N-int64"
            assert stats["fallbacks"] == 0
            assert stats["batches"] == 1
            q.batch([{("w", "w", edges[0]): 2 ** 70}], NATURAL)
            stats = q.stats()["exact_kernel"]
            assert stats["fallbacks"] == 1
            assert stats["used"] == "N-object"
            text = q.explain()
            assert "exact kernel" in text and "1 fallback(s)" in text

    def test_service_stats_surface_exact_mode_and_kernel(
            self, small_grid_structure):
        from repro.logic import Atom, Bracket, Sum, Weight
        degree = Sum("y", Bracket(Atom("E", ("x", "y"))) * Weight("w",
                                                                  ("x", "y")))
        with Database(small_grid_structure) as db:
            with db.serve(degree, NATURAL, exact_mode="auto") as service:
                vertex = small_grid_structure.domain[0]
                service.query(vertex)
                stats = service.stats()
                assert stats["exact_mode"] == "auto"
                assert stats["exact_kernel"]["requested"] == "N-int64"
                assert stats["exact_kernel"]["fallbacks"] == 0

    def test_schedule_stats_expose_reduction_group_metadata(
            self, small_grid_structure):
        from repro.logic import Atom, Bracket, Sum, Weight
        edge_sum = Sum(("x", "y"),
                       Bracket(Atom("E", ("x", "y"))) * Weight("w",
                                                               ("x", "y")))
        with Database(small_grid_structure) as db:
            stats = db.prepare(edge_sum).plan().schedule().stats()
            assert stats["gate_kinds"]["input"] == stats["inputs"]
            assert stats["reducible_gates"] == \
                stats["gate_kinds"].get("add", 0) \
                + stats["gate_kinds"].get("mul", 0)


# -- eager exact_mode validation (the shared backends seam) ----------------------

class TestExactModeValidation:
    def test_unknown_exact_mode_rejected_everywhere(self,
                                                    small_grid_structure):
        with pytest.raises(ValueError, match="unknown exact_mode"):
            ExecOptions(exact_mode="int32")
        with pytest.raises(ValueError, match="unknown exact_mode"):
            validate_exact_mode("float128")
        with Database(small_grid_structure) as db:
            prepared = db.prepare(WConst(1))
            with pytest.raises(ValueError, match="unknown exact_mode"):
                prepared.batch([{}], NATURAL, exact_mode="int32")

    def test_int64_requires_numpy_same_eager_error_as_unknown_backends(
            self, monkeypatch):
        """The no-numpy contract: ``exact_mode='int64'`` must be rejected
        at ExecOptions construction — through the one shared
        ``repro.circuits.backends`` seam, with the same eager ValueError
        shape as an unknown backend — never accepted only to degrade or
        fail later.  Simulated on the numpy leg, real on the no-numpy leg.
        """
        monkeypatch.setattr(backends_module, "_HAVE_NUMPY", False)
        with pytest.raises(ValueError, match="requires numpy"):
            ExecOptions(exact_mode="int64")
        with pytest.raises(ValueError, match="requires numpy"):
            validate_exact_mode("int64")
        # The other modes stay valid without numpy.
        assert ExecOptions(exact_mode="object").exact_mode == "object"
        assert ExecOptions(exact_mode="auto").exact_mode == "auto"

    @pytest.mark.skipif(HAVE_NUMPY, reason="the real no-numpy leg")
    def test_int64_rejected_for_real_without_numpy(self):
        with pytest.raises(ValueError, match="requires numpy"):
            ExecOptions(exact_mode="int64")

    @needs_numpy
    def test_exact_modes_accepted_with_numpy(self):
        for mode in ("auto", "int64", "object"):
            assert ExecOptions(exact_mode=mode).exact_mode == mode
        assert kernel_for(NATURAL, "int64").name == "N-int64"
        assert kernel_for(NATURAL, "object").name == "N-object"
        assert kernel_for(NATURAL, "auto").name == "N-int64"
