"""Permanent algebra: static evaluation and all four dynamic maintainers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (FiniteMaintainer, RingMaintainer,
                           SegmentTreeMaintainer, falling_factorial,
                           make_maintainer, matrix_dimensions, partitions_of,
                           perm_prime, permanent, permanent_naive,
                           permanent_via_perm_prime)
from repro.semirings import (BOOLEAN, INTEGER, MIN_PLUS, NATURAL,
                             FreeSemiring, ModularRing, SetAlgebra)

FREE = FreeSemiring()


def random_matrix(k, n, seed, hi=5):
    rng = random.Random(seed)
    return [[rng.randint(0, hi) for _ in range(n)] for _ in range(k)]


@given(st.integers(1, 3), st.integers(0, 6), st.integers(0, 10 ** 6))
@settings(max_examples=60, deadline=None)
def test_permanent_matches_naive_integers(k, n, seed):
    matrix = random_matrix(k, n, seed)
    assert permanent(matrix, INTEGER) == permanent_naive(matrix, INTEGER)


@given(st.integers(1, 3), st.integers(1, 6), st.integers(0, 10 ** 6))
@settings(max_examples=40, deadline=None)
def test_permanent_matches_naive_minplus(k, n, seed):
    matrix = random_matrix(k, n, seed, hi=9)
    assert permanent(matrix, MIN_PLUS) == permanent_naive(matrix, MIN_PLUS)


@given(st.integers(1, 3), st.integers(0, 5), st.integers(0, 10 ** 6))
@settings(max_examples=40, deadline=None)
def test_lemma10_orderings_decomposition(k, n, seed):
    """perm(M) equals the sum of perm' over all row orderings (Lemma 10)."""
    matrix = random_matrix(k, n, seed)
    assert permanent_via_perm_prime(matrix, INTEGER) == \
        permanent_naive(matrix, INTEGER)


def test_perm_prime_increasing_only():
    # perm' of [[a, b], [c, d]] with increasing injections: a*d only.
    assert perm_prime([[2, 3], [5, 7]], INTEGER) == 2 * 7


def test_edge_cases():
    assert permanent([], INTEGER) == 1                 # zero rows
    assert permanent([[1, 2], [3, 4], [5, 6]], INTEGER) == \
        permanent_naive([[1, 2], [3, 4], [5, 6]], INTEGER)
    # more rows than columns: no injection
    assert permanent([[1], [2]], INTEGER) == 0
    with pytest.raises(ValueError):
        matrix_dimensions([[1, 2], [3]])


def test_permanent_in_free_semiring():
    a, b, c, d = (FREE.generator(g) for g in "abcd")
    matrix = [[a, b], [c, d]]
    result = permanent(matrix, FREE)
    expected = FREE.add(FREE.mul(a, d), FREE.mul(b, c))
    assert result == expected


MAINTAINER_CASES = [
    ("recompute", INTEGER, lambda v: v),
    ("segment-tree", INTEGER, lambda v: v),
    ("segment-tree", MIN_PLUS, lambda v: v),
    ("segment-tree", BOOLEAN, lambda v: v > 2),
    ("ring", INTEGER, lambda v: v),
    ("ring", ModularRing(7), lambda v: v % 7),
    ("finite", BOOLEAN, lambda v: v > 2),
    ("finite", ModularRing(5), lambda v: v % 5),
]


@pytest.mark.parametrize("strategy,sr,conv", MAINTAINER_CASES,
                         ids=[f"{s}-{sr.name}" for s, sr, _ in MAINTAINER_CASES])
@pytest.mark.parametrize("k,n", [(1, 5), (2, 6), (3, 7)])
def test_maintainer_update_sequences(strategy, sr, conv, k, n):
    rng = random.Random(k * 100 + n)
    matrix = [[conv(rng.randint(0, 6)) for _ in range(n)] for _ in range(k)]
    maintainer = make_maintainer(matrix, sr, strategy=strategy)
    assert sr.eq(maintainer.value(), permanent(matrix, sr))
    for _ in range(15):
        row, col = rng.randrange(k), rng.randrange(n)
        entry = conv(rng.randint(0, 6))
        matrix[row][col] = entry
        maintainer.update(row, col, entry)
        assert sr.eq(maintainer.value(), permanent(matrix, sr)), strategy
        assert sr.eq(maintainer.get(row, col), entry)


def test_make_maintainer_dispatch():
    matrix = [[1, 2], [3, 4]]
    assert isinstance(make_maintainer(matrix, INTEGER), RingMaintainer)
    assert isinstance(make_maintainer([[True, False]], BOOLEAN),
                      FiniteMaintainer)
    assert isinstance(make_maintainer(matrix, MIN_PLUS),
                      SegmentTreeMaintainer)
    zmod = ModularRing(3)
    assert isinstance(make_maintainer([[1, 2]], zmod), RingMaintainer)


def test_ring_maintainer_requires_ring():
    with pytest.raises(TypeError):
        RingMaintainer([[1]], NATURAL)
    with pytest.raises(TypeError):
        FiniteMaintainer([[1]], INTEGER)


def test_finite_maintainer_set_algebra():
    sr = SetAlgebra("xy")
    elements = list(sr.elements())
    rng = random.Random(3)
    matrix = [[rng.choice(elements) for _ in range(5)] for _ in range(2)]
    maintainer = FiniteMaintainer(matrix, sr)
    assert maintainer.value() == permanent(matrix, sr)
    for _ in range(10):
        row, col = rng.randrange(2), rng.randrange(5)
        entry = rng.choice(elements)
        matrix[row][col] = entry
        maintainer.update(row, col, entry)
        assert maintainer.value() == permanent(matrix, sr)


def test_update_column_helper():
    matrix = [[1, 2, 3], [4, 5, 6]]
    maintainer = make_maintainer(matrix, INTEGER)
    maintainer.update_column(1, [9, 9])
    matrix[0][1] = matrix[1][1] = 9
    assert maintainer.value() == permanent(matrix, INTEGER)


def test_partitions_and_falling_factorial():
    assert sorted(len(list(partitions_of(tuple(range(k)))))
                  for k in range(1, 5)) == [1, 2, 5, 15]  # Bell numbers
    assert falling_factorial(5, 0) == 1
    assert falling_factorial(5, 3) == 60
    assert falling_factorial(2, 3) == 0


@given(st.integers(2, 3), st.integers(2, 6), st.integers(0, 10 ** 6))
@settings(max_examples=30, deadline=None)
def test_segment_tree_vs_ring_agree(k, n, seed):
    matrix = random_matrix(k, n, seed)
    seg = SegmentTreeMaintainer(matrix, INTEGER)
    ring = RingMaintainer(matrix, INTEGER)
    assert seg.value() == ring.value()
    rng = random.Random(seed)
    for _ in range(5):
        row, col, entry = rng.randrange(k), rng.randrange(n), rng.randint(0, 9)
        seg.update(row, col, entry)
        ring.update(row, col, entry)
        assert seg.value() == ring.value()
