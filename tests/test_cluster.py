"""Multi-process sharded serving: sharder, protocol, gateway, recovery.

Five families:

* the sharder — Gaifman-component placement (hash/contiguous/custom),
  full-schema shards, the cross-shard-tuple refusal policy, and the
  query-side ``check_shardable`` guarantee;
* the wire protocol — data-only codec round trips for every shipped
  carrier, refusal of un-servable values, frame integrity;
* ⊕-merge equivalence — for **all 13 shipped semirings**, the sharded
  gateway's point, batch, closed, and grouped answers equal the
  single-process ``PreparedQuery``'s, including after routed updates;
* robustness — worker death mid-load yields no wrong answers (respawn
  with plan-store warm restart), admission control sheds with the typed
  ``Overloaded``, deadlines raise ``TimeoutError`` with cancellation;
* the serving contract — both ``ClusterService`` and the single-process
  ``QueryService`` refuse semirings that do not declare their ``⊕``
  commutative/associative (``is_mergeable``).
"""

from __future__ import annotations

import asyncio
import math
import os
import signal
import threading
import time
from fractions import Fraction

import pytest

from repro.api import Database
from repro.cluster import (ClusterCodecError, ClusterService, Overloaded,
                           ShardingError, check_shardable,
                           connected_components, shard_structure)
from repro.cluster.protocol import (check_wire_roundtrip, decode_message,
                                    decode_structure, decode_value,
                                    encode_message, encode_structure,
                                    encode_value)
from repro.logic import Atom, Bracket, Sum, WConst, Weight, forall
from repro.semirings import (BOOLEAN, NATURAL, Semiring, ensure_mergeable,
                             register_semiring, resolve_semiring,
                             SEMIRING_REGISTRY, FreeSemiring)
from repro.serve import QueryService
from repro.structures import Structure

from tests.test_plan_store import SEMIRING_CASES

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: f(x) = Σ_y [E(x, y)] * w(x, y) — per-element, shard-routable.
DEGREE = Sum("y", Bracket(E("x", "y")) * w("x", "y"))
#: closed: total edge weight — fan-out + ⊕-merge.
EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))


def two_component_structure(conv=lambda v: v):
    """Two disjoint weighted paths — exactly two Gaifman components."""
    structure = Structure(["a0", "a1", "a2", "b0", "b1", "b2"])
    edges = [("a0", "a1"), ("a1", "a2"), ("b0", "b1"), ("b1", "b2")]
    for rank, (u, v) in enumerate(edges):
        structure.add_tuple("E", (u, v))
        structure.add_tuple("E", (v, u))
        structure.set_weight("w", (u, v), conv(rank + 1))
        structure.set_weight("w", (v, u), conv(rank + 2))
    return structure


def many_component_structure(parts=6, conv=lambda v: v):
    """``parts`` disjoint weighted edges (one component each)."""
    structure = Structure([f"v{i}{side}" for i in range(parts)
                           for side in "lr"])
    for i in range(parts):
        u, v = f"v{i}l", f"v{i}r"
        structure.add_tuple("E", (u, v))
        structure.add_tuple("E", (v, u))
        structure.set_weight("w", (u, v), conv(i + 1))
        structure.set_weight("w", (v, u), conv(i + 2))
    return structure


# -- the sharder -----------------------------------------------------------------

class TestSharder:
    def test_connected_components_in_domain_order(self):
        structure = two_component_structure()
        components = connected_components(structure)
        assert components == [["a0", "a1", "a2"], ["b0", "b1", "b2"]]

    @pytest.mark.parametrize("policy", ["hash", "contiguous"])
    def test_partition_routes_every_tuple(self, policy):
        structure = many_component_structure()
        plan = shard_structure(structure, 3, policy=policy)
        assert 1 <= len(plan.shards) <= 3
        assert plan.components == 6
        # Every element owned, every shard's domain disjoint and complete.
        seen = []
        for index, shard in enumerate(plan.shards):
            for element in shard.domain:
                assert plan.owner_of(element) == index
            seen.extend(shard.domain)
        assert sorted(seen) == sorted(structure.domain)
        # Every relation tuple and weight landed on exactly one shard.
        total_tuples = sum(len(shard.relations["E"])
                           for shard in plan.shards)
        assert total_tuples == len(structure.relations["E"])
        total_weights = sum(len(shard.weights["w"])
                            for shard in plan.shards)
        assert total_weights == len(structure.weights["w"])

    def test_every_shard_declares_the_full_schema(self):
        structure = two_component_structure()
        structure.add_tuple("OnlyA", ("a0",))
        plan = shard_structure(structure, 2, policy="contiguous")
        for shard in plan.shards:
            assert set(shard.relations) == {"E", "OnlyA"}
            assert set(shard.weights) == {"w"}
            assert shard.arity("OnlyA") == 1

    def test_contiguous_packs_domain_order_runs(self):
        structure = many_component_structure(parts=4)
        plan = shard_structure(structure, 2, policy="contiguous")
        assert len(plan.shards) == 2
        assert plan.shards[0].domain == ["v0l", "v0r", "v1l", "v1r"]
        assert plan.shards[1].domain == ["v2l", "v2r", "v3l", "v3r"]

    def test_hash_placement_is_stable_under_reordering(self):
        structure = two_component_structure()
        reordered = Structure(list(reversed(structure.domain)))
        for name, tuples in structure.relations.items():
            for tup in tuples:
                reordered.add_tuple(name, tup)
        for name, mapping in structure.weights.items():
            for tup, value in mapping.items():
                reordered.set_weight(name, tup, value)
        first = shard_structure(structure, 4).owner
        second = shard_structure(reordered, 4).owner
        # Component representatives differ ('a0' vs 'a2'), so only the
        # *within*-run stability is guaranteed: elements of one
        # component always land together.
        for plan_owner in (first, second):
            assert len({plan_owner[e] for e in ("a0", "a1", "a2")}) == 1
            assert len({plan_owner[e] for e in ("b0", "b1", "b2")}) == 1

    def test_more_shards_than_components_drops_empties(self):
        structure = two_component_structure()
        plan = shard_structure(structure, 5, policy="contiguous")
        assert len(plan.shards) == 2
        assert plan.requested == 5
        assert all(shard.domain for shard in plan.shards)

    def test_custom_assign_is_validated(self):
        structure = two_component_structure()
        with pytest.raises(ShardingError, match="does not place"):
            shard_structure(structure, 2, assign={"a0": 0})
        full = {element: 0 for element in structure.domain}
        with pytest.raises(ShardingError, match="outside"):
            shard_structure(structure, 2, assign={**full, "b0": 7})

    def test_custom_assign_splitting_a_tuple_is_refused(self):
        structure = two_component_structure()
        assign = {element: (0 if element != "a2" else 1)
                  for element in structure.domain}
        with pytest.raises(ShardingError, match="⊕-merge"):
            shard_structure(structure, 2, assign=assign)

    def test_shard_of_tuple_refuses_spans(self):
        structure = two_component_structure()
        plan = shard_structure(structure, 2, policy="contiguous")
        assert plan.shard_of_tuple(("a0", "a1")) == plan.owner_of("a0")
        with pytest.raises(ShardingError, match="spans shards"):
            plan.shard_of_tuple(("a0", "b0"))

    def test_unknown_element_raises_key_error(self):
        plan = shard_structure(two_component_structure(), 2)
        with pytest.raises(KeyError, match="not in the structure's domain"):
            plan.owner_of("zz")

    def test_bad_policy_and_shard_count(self):
        structure = two_component_structure()
        with pytest.raises(ValueError, match="shard_policy"):
            shard_structure(structure, 2, policy="round-robin")
        with pytest.raises(ValueError, match=">= 1"):
            shard_structure(structure, 0)


class TestCheckShardable:
    def test_accepts_connected_positive_queries(self):
        check_shardable(DEGREE)
        check_shardable(EDGE_SUM)
        check_shardable(Sum(("x", "y", "z"),
                            Bracket(E("x", "y") & E("y", "z"))
                            * w("x", "y")))

    def test_rejects_constant_terms(self):
        with pytest.raises(ShardingError, match="constant term"):
            check_shardable(DEGREE + WConst(1))

    def test_rejects_disconnected_variables(self):
        cross = Sum(("x", "y"), Bracket(Atom("S", ("x",)))
                    * Weight("u", ("y",)))
        with pytest.raises(ShardingError, match="not linked"):
            check_shardable(cross)

    def test_rejects_terms_missing_free_variables(self):
        partial = (Sum("y", Bracket(E("x", "y")) * w("x", "y"))
                   + Weight("u", ("z",)))
        with pytest.raises(ShardingError, match="never mentions"):
            check_shardable(partial)

    def test_rejects_universal_quantifiers(self):
        with pytest.raises(ShardingError, match="∀"):
            check_shardable(Sum("x", Bracket(
                forall("y", E("x", "y")) & Atom("S", ("x",)))))

    def test_rejects_negated_quantifiers(self):
        from repro.logic import Not, Exists
        with pytest.raises(ShardingError, match="negated quantifiers"):
            check_shardable(Sum("x", Bracket(
                Not(Exists(("y",), E("x", "y"))) & Atom("S", ("x",)))))

    def test_disjunction_keeps_only_common_edges(self):
        # Both branches link x-y -> accepted.
        from repro.logic import Or
        both = Sum(("x", "y"), Bracket(Or((E("x", "y"), E("y", "x"))))
                   * w("x", "y"))
        check_shardable(both)
        # Only one branch links them -> refused.
        one = Sum(("x", "y"), Bracket(
            Or((E("x", "y"), Atom("S", ("x",)) & Atom("S", ("y",))))))
        with pytest.raises(ShardingError, match="not linked"):
            check_shardable(one)


# -- the wire protocol -----------------------------------------------------------

class TestWireProtocol:
    @pytest.mark.parametrize("value", [
        None, True, 0, -3, 2.5, "text", math.inf, -math.inf,
        (1, ("a", 2)), [1, [2, 3]], {1, 2}, frozenset({"a", "b"}),
        Fraction(-7, 3), b"\x00\xffbytes",
        {"k": (1, 2), ("t", 1): frozenset({3})},
    ])
    def test_value_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value
        assert check_wire_roundtrip(value) == value

    def test_roundtrip_preserves_types(self):
        assert isinstance(decode_value(encode_value((1,))), tuple)
        assert isinstance(decode_value(encode_value([1])), list)
        assert isinstance(decode_value(encode_value({1})), set)
        assert isinstance(decode_value(encode_value(frozenset({1}))),
                          frozenset)

    def test_nan_survives(self):
        out = decode_value(encode_value(float("nan")))
        assert math.isnan(out)

    def test_unservable_carrier_is_refused(self):
        poly = FreeSemiring().one
        with pytest.raises(ClusterCodecError, match="data-only"):
            encode_value(poly)

    def test_message_framing_roundtrip(self):
        message = {"op": "batch", "id": 7, "args": [("a", 1)]}
        assert decode_message(encode_message(message)) == message

    def test_corrupt_frames_are_refused(self):
        frame = encode_message({"op": "ping", "id": 1})
        with pytest.raises(ClusterCodecError, match="declares"):
            decode_message(frame + b"junk")
        with pytest.raises(ClusterCodecError, match="truncated"):
            decode_message(b"\x00")

    def test_structure_snapshot_roundtrip(self):
        structure = two_component_structure(lambda v: Fraction(v, 2))
        structure.add_tuple("OnlyA", ("a0",))
        clone = decode_structure(encode_structure(structure))
        assert clone.domain == structure.domain
        assert clone.relations == structure.relations
        assert clone.weights == structure.weights
        assert clone.fingerprint() == structure.fingerprint()


# -- ⊕-merge equivalence across every shipped semiring ---------------------------

class TestShardedEquivalence:
    @pytest.mark.parametrize("name,sr,conv", SEMIRING_CASES,
                             ids=[case[0] for case in SEMIRING_CASES])
    def test_matches_single_process(self, name, sr, conv):
        structure = two_component_structure(conv)
        with Database(structure.copy()) as db:
            prepared = db.prepare(DEGREE)
            service = db.serve_sharded(DEGREE, sr, shards=2,
                                         shard_policy="contiguous")
            assert len(service.handles) == 2
            # Point queries, one per element (routed to owning shards).
            for element in structure.domain:
                assert (service.query_sync(element)
                        == prepared.bind(x=element).value(sr))
            # One caller-assembled batch spanning both shards.
            batch = [(element,) for element in structure.domain]
            assert (service.query_batch_sync(batch)
                    == prepared.batch(batch, sr))
            # The grouped sweep (canonical enumeration order).
            assert (list(service.group_by_sync())
                    == list(prepared.group_by(None, sr)))
            # A routed update, then every mode again.
            with db.update() as tx:
                tx.set_weight("w", ("a0", "a1"), conv(5))
            for element in ("a0", "a1", "b0"):
                assert (service.query_sync(element)
                        == prepared.bind(x=element).value(sr))
            assert (list(service.group_by_sync())
                    == list(prepared.group_by(None, sr)))

    def test_closed_query_fans_out_and_merges(self):
        structure = many_component_structure(parts=5)
        with Database(structure.copy()) as db:
            expected = db.prepare(EDGE_SUM).value(NATURAL)
            service = db.serve_sharded(EDGE_SUM, NATURAL, shards=3,
                                       shard_policy="contiguous")
            assert service.query_sync() == expected
            stats = service.stats()
            assert stats["merge_seconds"] >= 0
            assert stats["shards"] == len(service.handles) >= 2

    def test_explicit_group_keys_and_having_rollup(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            prepared = db.prepare(DEGREE)
            service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")
            keys = ["a0", "b1", "a2", "b2"]
            assert (list(service.group_by_sync(keys))
                    == list(prepared.group_by(keys, NATURAL)))
            having = lambda value: value > 2
            assert (list(service.group_by_sync(keys, having=having,
                                               rollup=True))
                    == list(prepared.group_by(keys, NATURAL,
                                              having=having, rollup=True)))

    def test_cross_shard_arguments_resolve_to_zero(self):
        structure = two_component_structure()
        pair = Bracket(E("x", "y")) * w("x", "y")
        with Database(structure.copy()) as db:
            prepared = db.prepare(pair)
            service = db.serve_sharded(pair, NATURAL, shards=2,
                                       shard_policy="contiguous")
            # Same-shard pair: the true value; cross-shard: sr.zero
            # without any worker round trip.
            assert (service.query_sync("a0", "a1")
                    == prepared.bind(x="a0", y="a1").value(NATURAL))
            before = service.stats()["zero_routed"]
            assert service.query_sync("a0", "b0") == NATURAL.zero
            assert service.stats()["zero_routed"] == before + 1

    def test_async_api_round_trip(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            prepared = db.prepare(DEGREE)
            service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")

            async def drive():
                async with service:
                    single = await service.query("a1")
                    batch = await service.query_batch(
                        [(element,) for element in structure.domain])
                    table = await service.group_by()
                    return single, batch, list(table)

            single, batch, rows = asyncio.run(drive())
            assert single == prepared.bind(x="a1").value(NATURAL)
            assert batch == prepared.batch(
                [(element,) for element in structure.domain], NATURAL)
            assert rows == list(prepared.group_by(None, NATURAL))
            assert service.closed

    def test_unshardable_query_is_refused_eagerly(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            with pytest.raises(ShardingError):
                db.serve_sharded(DEGREE + WConst(1), NATURAL, shards=2)

    def test_unservable_semiring_is_refused_eagerly(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            with pytest.raises(ClusterCodecError):
                db.serve_sharded(DEGREE, FreeSemiring(), shards=2)


# -- updates through the database router -----------------------------------------

class TestRoutedUpdates:
    def test_cross_shard_weight_update_is_refused(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")
            with pytest.raises(KeyError, match="cannot recompile"):
                with db.update() as tx:
                    tx.set_weight("w", ("a0", "b0"), 9)

    def test_cross_shard_relation_toggle_is_refused(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")
            with pytest.raises(ValueError, match="cannot absorb"):
                with db.update() as tx:
                    tx.set_relation("E", ("a0", "b0"), True)

    def test_relation_toggle_routes_to_owner(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            prepared = db.prepare(DEGREE)
            service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")
            with db.update() as tx:
                tx.set_relation("E", ("a0", "a2"), True)
                tx.set_weight("w", ("a0", "a2"), 4)
            assert (service.query_sync("a0")
                    == prepared.bind(x="a0").value(NATURAL))

    def test_database_close_drains_the_gateway(self):
        structure = two_component_structure()
        db = Database(structure.copy())
        service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")
        db.close()
        assert service.closed
        with pytest.raises(RuntimeError, match="closed"):
            service.query_sync("a0")


# -- robustness: recovery, admission, deadlines ----------------------------------

class TestRecovery:
    def test_killed_worker_respawns_with_no_wrong_answers(self, tmp_path):
        structure = two_component_structure()
        with Database(structure.copy(),
                      plan_store_path=tmp_path / "plans") as db:
            prepared = db.prepare(DEGREE)
            service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")
            # A routed update the respawned worker must not forget.
            with db.update() as tx:
                tx.set_weight("w", ("a0", "a1"), 7)
            expected = {element: prepared.bind(x=element).value(NATURAL)
                        for element in structure.domain}
            for round_ in range(2):
                victim = service.stats()["workers"][round_ % 2]
                os.kill(victim["pid"], signal.SIGKILL)
                got = {element: service.query_sync(element)
                       for element in structure.domain}
                assert got == expected
            stats = service.stats()
            assert stats["respawns"] >= 2
            assert all(entry["alive"] for entry in stats["workers"])
            # Warm restart: the respawned worker of the *untouched*
            # shard loaded its plan from the shared store (the updated
            # shard's fingerprint moved, so it recompiles — and saves
            # the new plan for the next respawn).
            hits = [entry["stats"]["plan_store"]["hits"]
                    for entry in service.worker_stats()]
            assert any(count >= 1 for count in hits)

    def test_worker_death_mid_request_retries_transparently(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            prepared = db.prepare(DEGREE)
            service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")
            target = "a1"
            shard = service._plan.owner_of(target)
            pid = service.stats()["workers"][shard]["pid"]
            # Freeze the worker so the request is in flight, then kill:
            # the dispatcher must respawn and retry, not fail or hang.
            os.kill(pid, signal.SIGSTOP)
            future = service.submit(target)
            time.sleep(0.05)
            os.kill(pid, signal.SIGKILL)
            os.kill(pid, signal.SIGCONT)
            assert future.result(timeout=30) == \
                prepared.bind(x=target).value(NATURAL)
            assert service.stats()["respawns"] >= 1


class TestAdmission:
    def _frozen_service(self, db, **knobs):
        structure_service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                             shard_policy="contiguous",
                                             **knobs)
        for entry in structure_service.stats()["workers"]:
            os.kill(entry["pid"], signal.SIGSTOP)
        return structure_service

    def _thaw(self, service):
        for entry in service.stats()["workers"]:
            try:
                os.kill(entry["pid"], signal.SIGCONT)
            except ProcessLookupError:  # pragma: no cover
                pass

    def test_gateway_cap_sheds_with_typed_overloaded(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            service = self._frozen_service(db, max_pending=2)
            try:
                first = service.submit("a0")
                second = service.submit("a1")
                with pytest.raises(Overloaded) as shed:
                    service.submit("a2")
                assert shed.value.scope == "gateway"
                assert shed.value.limit == 2
                assert service.stats()["sheds"] == 1
            finally:
                self._thaw(service)
            assert first.result(timeout=30) is not None
            assert second.result(timeout=30) is not None
            # Capacity frees as requests complete: admitted again.
            assert service.query_sync("a2", timeout=30) is not None

    def test_per_client_cap_keeps_other_clients_admitted(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            service = self._frozen_service(db,
                                           max_inflight_per_client=1)
            try:
                held = service.submit("a0", client="greedy")
                with pytest.raises(Overloaded) as shed:
                    service.submit("a1", client="greedy")
                assert shed.value.scope == "client"
                other = service.submit("a1", client="polite")
            finally:
                self._thaw(service)
            assert held.result(timeout=30) is not None
            assert other.result(timeout=30) is not None

    def test_group_by_is_one_admission_unit(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous",
                                       max_inflight_per_client=1)
            # 6 groups >> the per-client cap of 1, yet one call fits.
            table = service.group_by_sync(timeout=30)
            assert len(list(table)) == len(structure.domain)


class TestDeadlines:
    def test_sync_timeout_raises_builtin_timeout_error(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous")
            pids = [entry["pid"] for entry in service.stats()["workers"]]
            for pid in pids:
                os.kill(pid, signal.SIGSTOP)
            try:
                with pytest.raises(TimeoutError, match="timed out"):
                    service.query_sync("a0", timeout=0.2)
            finally:
                for pid in pids:
                    os.kill(pid, signal.SIGCONT)
            # The gateway recovers once the workers thaw.
            assert service.query_sync("a0", timeout=30) is not None

    def test_async_timeout_cancels_queued_request(self):
        structure = two_component_structure()
        with Database(structure.copy()) as db:
            service = db.serve_sharded(DEGREE, NATURAL, shards=2,
                                       shard_policy="contiguous",
                                       request_timeout=0.2)
            pids = [entry["pid"] for entry in service.stats()["workers"]]
            for pid in pids:
                os.kill(pid, signal.SIGSTOP)

            async def drive():
                with pytest.raises(TimeoutError):
                    await service.query("a0")

            try:
                asyncio.run(drive())
            finally:
                for pid in pids:
                    os.kill(pid, signal.SIGCONT)
            # The per-service default applies; explicit timeouts win.
            assert service.query_sync("a0", timeout=30) is not None


# -- the is_mergeable contract ---------------------------------------------------

class _NoncommutativeSemiring(Semiring):
    """⊕ = string concatenation: associative but not commutative."""

    name = "concat"
    is_mergeable = False
    zero = ""
    one = "1"

    def add(self, a, b):
        return a + b

    def mul(self, a, b):
        return f"({a}*{b})" if a != self.one and b != self.one \
            else (b if a == self.one else a)


class TestMergeableContract:
    def test_every_registered_semiring_declares_mergeable(self):
        for name, spec in SEMIRING_REGISTRY.items():
            assert spec.is_mergeable, name
            assert resolve_semiring(name).is_mergeable

    def test_registry_rejects_duplicates_and_unknowns(self):
        with pytest.raises(ValueError, match="already registered"):
            register_semiring("N", lambda: NATURAL)
        with pytest.raises(KeyError, match="registered"):
            resolve_semiring("no-such-semiring")

    def test_ensure_mergeable_passes_and_refuses(self):
        assert ensure_mergeable(NATURAL) is NATURAL
        with pytest.raises(ValueError, match="is_mergeable"):
            ensure_mergeable(_NoncommutativeSemiring(), "shard merge")

    def test_cluster_service_refuses_unmergeable_semirings(self):
        structure = two_component_structure(str)
        with Database(structure.copy()) as db:
            with pytest.raises(ValueError, match="is_mergeable"):
                db.serve_sharded(DEGREE, _NoncommutativeSemiring(),
                                 shards=2)

    def test_query_service_refuses_unmergeable_semirings(self):
        structure = two_component_structure(str)
        with pytest.raises(ValueError, match="is_mergeable"):
            QueryService(structure, DEGREE, _NoncommutativeSemiring())

    def test_boolean_still_accepted_everywhere(self):
        structure = two_component_structure(lambda v: v > 0)
        service = QueryService(structure, DEGREE, BOOLEAN)
        try:
            assert service.query(structure.domain[0]) in (True, False)
        finally:
            service.close()
