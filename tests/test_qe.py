"""Quantifier elimination layer (the Theorem 3 substitution)."""

from __future__ import annotations

import itertools

import pytest

from repro.enumeration import AnswerEnumerator
from repro.graphs import path_graph, star_graph, triangulated_grid
from repro.logic import (Atom, StructureModel, eval_formula, exists, forall,
                         is_quantifier_free, neq)
from repro.qe import eliminate_quantifiers, existential_sentence_value
from repro.structures import graph_structure

E = lambda x, y: Atom("E", (x, y))


def check_equivalent(structure, original, rewritten, variables, sample=5):
    reference = StructureModel(structure)
    for tup in itertools.product(structure.domain[:sample],
                                 repeat=len(variables)):
        env = dict(zip(variables, tup))
        assert eval_formula(rewritten, reference, env) == \
            eval_formula(original, reference, env), env


FORMULAS = [
    ("inner-exists", exists("y", E("x", "y")), False),
    ("exists-conj", exists("y", E("x", "y") & neq("x", "y")), False),
    ("forall", forall("y", ~E("x", "y") | E("y", "x")), True),
    ("nested", exists("y", E("x", "y") &
                      exists("z", E("y", "z") & neq("z", "x"))), True),
    ("alternation", forall("y", ~E("x", "y") |
                           exists("z", E("y", "z") & E("z", "x"))), True),
]


@pytest.mark.parametrize("name,formula,densify", FORMULAS,
                         ids=[n for n, _, _ in FORMULAS])
def test_elimination_preserves_semantics(name, formula, densify):
    structure = graph_structure(triangulated_grid(3, 3))
    reference = structure.copy()
    rewritten = eliminate_quantifiers(structure, formula,
                                      allow_densify=densify)
    assert is_quantifier_free(rewritten)
    reference_model = StructureModel(reference)
    model = StructureModel(structure)
    for v in structure.domain:
        assert eval_formula(rewritten, model, {"x": v}) == \
            eval_formula(formula, reference_model, {"x": v})


def test_unary_materialization_preserves_gaifman():
    structure = graph_structure(path_graph(6))
    before = structure.gaifman().edge_count()
    eliminate_quantifiers(structure, exists("y", E("x", "y")))
    assert structure.gaifman().edge_count() == before


def test_binary_materialization_guarded():
    structure = graph_structure(path_graph(6))
    distant = exists("z", E("x", "z") & E("z", "y") & neq("x", "y"))
    with pytest.raises(ValueError):
        eliminate_quantifiers(structure, distant)
    rewritten = eliminate_quantifiers(structure.copy() if False else
                                      graph_structure(path_graph(6)),
                                      distant, allow_densify=True)
    assert is_quantifier_free(rewritten)


def test_sentence_folds_to_constant():
    structure = graph_structure(triangulated_grid(2, 3))
    sentence = exists(("x", "y"), E("x", "y"))
    rewritten = eliminate_quantifiers(structure, sentence)
    assert rewritten.free_vars() == frozenset()
    assert eval_formula(rewritten, StructureModel(structure))


def test_existential_sentence_via_boolean_summation():
    with_triangles = graph_structure(triangulated_grid(3, 3))
    without = graph_structure(path_graph(8))
    triangle = E("x", "y") & E("y", "z") & E("z", "x")
    assert existential_sentence_value(with_triangles, ("x", "y", "z"),
                                      triangle)
    assert not existential_sentence_value(without, ("x", "y", "z"), triangle)
    with pytest.raises(ValueError):
        existential_sentence_value(without, ("x",), exists("y", E("x", "y")))
    with pytest.raises(ValueError):
        existential_sentence_value(without, ("x",), E("x", "y"))


def test_qe_feeds_enumeration():
    """The Theorem 24 workflow for a quantified query: eliminate, then
    enumerate the quantifier-free rewriting."""
    structure = graph_structure(star_graph(8))
    has_neighbor = exists("y", E("x", "y") & neq("x", "y"))
    reference = structure.copy()
    rewritten = eliminate_quantifiers(structure, has_neighbor)
    answers = sorted(a for (a,) in AnswerEnumerator(structure, rewritten,
                                                    free_order=("x",)))
    expected = sorted(v for v in reference.domain
                      if eval_formula(has_neighbor, StructureModel(reference),
                                      {"x": v}))
    assert answers == expected
