"""Shapes (Lemmas 30-32): enumeration, partition property, residuals."""

from __future__ import annotations

import itertools
import random

import pytest
from repro.core import (chain_info, enumerate_shapes, exclusive_assignments,
                        required_comparable, residual_formula)
from repro.core.shapes import Shape
from repro.logic import Block, Eq, LabelAtom, TRUE, FALSE
from repro.logic.fo import FuncAtom

from tests.util import random_labeled_forest


def shape_matches(shape: Shape, forest, assignment) -> bool:
    """Does a concrete tuple realize this shape in the forest?"""
    for var, node in assignment.items():
        if forest.depth[node] != shape.depth_of[var]:
            return False
    for x, y in itertools.combinations(shape.variables, 2):
        a, b = assignment[x], assignment[y]
        pa, pb = forest.path[a], forest.path[b]
        meet = -1
        for depth in range(min(len(pa), len(pb))):
            if pa[depth] == pb[depth]:
                meet = depth
            else:
                break
        if meet != shape.meet(x, y):
            return False
    return True


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("p", [1, 2, 3])
def test_shapes_partition_all_tuples(seed, p):
    """Every variable tuple realizes exactly one shape (Lemma 32's mutual
    exclusivity) — the cornerstone invariant of the compiler."""
    forest = random_labeled_forest(9, 3, seed)
    variables = tuple(f"x{i}" for i in range(p))
    shapes = list(enumerate_shapes(variables, forest.height() - 1))
    nodes = forest.nodes()
    rng = random.Random(seed)
    samples = [tuple(rng.choice(nodes) for _ in range(p)) for _ in range(40)]
    for tup in samples:
        assignment = dict(zip(variables, tup))
        matching = [s for s in shapes if shape_matches(s, forest, assignment)]
        assert len(matching) == 1, (tup, len(matching))


def test_shape_count_small_cases():
    # Depth 0, p = 2: both at depth 0; meet either -1 (distinct roots) or
    # 0 (equal).
    shapes = list(enumerate_shapes(("x", "y"), 0))
    assert len(shapes) == 2
    # p = 1 on depth <= 2: one shape per depth.
    assert len(list(enumerate_shapes(("x",), 2))) == 3


def test_shape_relations():
    # x at depth 2, y at depth 1 on the same path (meet 1): y above x.
    [shape] = [s for s in enumerate_shapes(("x", "y"), 2)
               if s.depth_of["x"] == 2 and s.depth_of["y"] == 1
               and s.meet("x", "y") == 1]
    assert shape.relation("x", "y") == ("below", 1)
    assert shape.relation("y", "x") == ("above", 1)
    assert not shape.same_node("x", "y")
    info = chain_info(shape, ("x", "y"))
    assert info == ((2, 1), "x")


def test_incomparable_chain_info_none():
    [shape] = [s for s in enumerate_shapes(("x", "y"), 1)
               if s.depth_of["x"] == 1 and s.depth_of["y"] == 1
               and s.meet("x", "y") == 0]
    assert shape.relation("x", "y")[0] == "incomparable"
    assert chain_info(shape, ("x", "y")) is None


def test_equal_variables_shape():
    [shape] = [s for s in enumerate_shapes(("x", "y"), 1)
               if s.depth_of["x"] == 1 and s.depth_of["y"] == 1
               and s.meet("x", "y") == 1]
    assert shape.same_node("x", "y")
    assert chain_info(shape, ("x", "y")) == ((1, 1), "x")


def test_comparable_pruning_forces_meets():
    comparable = {frozenset(("x", "y"))}
    shapes = list(enumerate_shapes(("x", "y"), 3,
                                   comparable_pairs=comparable))
    for shape in shapes:
        assert shape.relation("x", "y")[0] != "incomparable"
    unpruned = [s for s in enumerate_shapes(("x", "y"), 3)
                if s.relation("x", "y")[0] != "incomparable"]
    assert len(shapes) == len(unpruned)


def test_allowed_depths_restriction():
    shapes = list(enumerate_shapes(("x", "y"), 4,
                                   allowed_depths={"x": {0}, "y": {2}}))
    assert all(s.depth_of["x"] == 0 and s.depth_of["y"] == 2 for s in shapes)
    assert len(shapes) == 2  # meet in {-1, 0}


def test_ultrametric_rejects_invalid_triples():
    variables = ("x", "y", "z")
    shapes = list(enumerate_shapes(variables, 2))
    for shape in shapes:
        meets = sorted([shape.meet("x", "y"), shape.meet("y", "z"),
                        shape.meet("x", "z")])
        assert meets[0] == meets[1]  # minimum attained twice


class TestResiduals:
    def _shape(self, predicate):
        for shape in enumerate_shapes(("x", "y"), 2):
            if predicate(shape):
                return shape
        raise AssertionError("no such shape")

    def test_equality_residual(self):
        same = self._shape(lambda s: s.same_node("x", "y"))
        diff = self._shape(lambda s: not s.same_node("x", "y"))
        assert residual_formula(Eq("x", "y"), same) == TRUE
        assert residual_formula(Eq("x", "y"), diff) == FALSE

    def test_parent_atom_residual(self):
        shape = self._shape(
            lambda s: s.depth_of["x"] == 1 and s.depth_of["y"] == 0
            and s.meet("x", "y") == 0)
        atom = FuncAtom(("parent", 1), "x", "y")
        assert residual_formula(atom, shape) == TRUE
        shape2 = self._shape(
            lambda s: s.depth_of["x"] == 1 and s.depth_of["y"] == 0
            and s.meet("x", "y") == -1)
        assert residual_formula(atom, shape2) == FALSE

    def test_relation_atom_becomes_reltup_label(self):
        from repro.logic.fo import Atom
        shape = self._shape(
            lambda s: s.depth_of["x"] == 0 and s.depth_of["y"] == 2
            and s.meet("x", "y") == 0)
        residual = residual_formula(Atom("E", ("x", "y")), shape)
        assert residual == LabelAtom(("reltup", "E", (0, 2)), "y")

    def test_incomparable_relation_is_false(self):
        from repro.logic.fo import Atom
        shape = self._shape(
            lambda s: s.depth_of["x"] == 1 and s.depth_of["y"] == 1
            and s.meet("x", "y") == 0)
        assert residual_formula(Atom("E", ("x", "y")), shape) == FALSE


class TestExclusiveAssignments:
    def test_paths_partition_satisfying_set(self):
        a, b, c = (LabelAtom(k, "x") for k in "abc")
        formula = (a & ~b) | c
        paths = exclusive_assignments(formula)
        # Check exactness and mutual exclusivity by brute force.
        atoms = [a.label, b.label, c.label]
        for bits in itertools.product([False, True], repeat=3):
            valuation = dict(zip([a, b, c], bits))
            expected = (bits[0] and not bits[1]) or bits[2]
            covering = [p for p in paths
                        if all(valuation[atom] == val
                               for atom, val in p.items())]
            assert len(covering) == (1 if expected else 0)

    def test_constants(self):
        assert exclusive_assignments(TRUE) == [{}]
        assert exclusive_assignments(FALSE) == []


def test_required_comparable_from_weights_and_brackets():
    from repro.logic.fo import Atom
    block = Block(vars=("x", "y", "z"),
                  weight_factors=[("w", ("x", "y"))],
                  brackets=[Atom("E", ("y", "z"))])
    forced = required_comparable(block)
    assert frozenset(("x", "y")) in forced
    assert frozenset(("y", "z")) in forced
    assert frozenset(("x", "z")) not in forced


def test_required_comparable_negation_is_not_forced():
    from repro.logic.fo import Atom
    block = Block(vars=("x", "y"), brackets=[~Atom("E", ("x", "y"))])
    assert required_comparable(block) == set()
