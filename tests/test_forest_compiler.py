"""Forest compiler (Lemma 29): circuits match naive semantics exactly."""

from __future__ import annotations

import random

import pytest

from repro.circuits import DynamicEvaluator, StaticEvaluator, valuation_from_dict
from repro.core import compile_forest_query
from repro.logic import (Bracket, Eq, Sum, WConst, Weight, eval_expression,
                         model_for, neq, normalize)
from repro.logic.fo import FuncAtom, LabelAtom
from repro.semirings import INTEGER, NATURAL
from repro.structures import LabeledForest

from tests.util import SEMIRING_CASES, random_labeled_forest

P = lambda x, y: FuncAtom(("parent", 1), x, y)
R = lambda x: LabelAtom("R", x)
B = lambda x: LabelAtom("B", x)
w = lambda x: Weight("w", (x,))
u = lambda x: Weight("u", (x,))

EXPRESSIONS = {
    "sum_w": Sum("x", w("x")),
    "pairs_distinct": Sum(("x", "y"), Bracket(neq("x", "y")) * w("x") * u("y")),
    "parent_pairs": Sum(("x", "y"), Bracket(P("x", "y")) * w("x") * u("y")),
    "label_mix": Sum(("x", "y"),
                     Bracket((R("x") & ~B("y")) | Eq("x", "y"))
                     * w("x") * u("y")),
    "grandchildren": Sum(("x", "y", "z"),
                         Bracket(P("x", "y") & P("y", "z"))
                         * w("x") * u("y") * w("z")),
    "neg_parent": Sum(("x", "y"),
                      Bracket(~P("x", "y") & R("x")) * u("x") * u("y")),
    "const_plus": Sum("x", w("x")) + WConst(7),
    "square": Sum("x", w("x") * w("x") * Bracket(R("x"))),
    "distinct3": Sum(("x", "y", "z"),
                     Bracket(neq("x", "y") & neq("y", "z") & neq("x", "z"))
                     * w("x") * u("y") * u("z")),
    "siblings": Sum(("x", "y", "p"),
                    Bracket(P("x", "p") & P("y", "p") & neq("x", "y"))
                    * w("x") * u("y")),
}


def build_and_check(tag, sr, conv, seed, n=12, depth=3):
    expr = EXPRESSIONS[tag]
    forest = random_labeled_forest(n, depth, seed, conv=conv)
    model = model_for(forest, zero=sr.zero)
    expected = eval_expression(expr, model, sr)
    circuit = compile_forest_query(forest, normalize(expr))
    values = {("w", name, (node,)): value
              for name, mapping in forest.weights.items()
              for node, value in mapping.items()}
    got = StaticEvaluator(circuit, sr,
                          valuation_from_dict(values, sr.zero)).value()
    assert sr.eq(got, expected), (tag, sr.name, got, expected)
    return circuit, forest, values


@pytest.mark.parametrize("sr,conv",
                         [(sr, conv) for _, sr, conv in SEMIRING_CASES],
                         ids=[name for name, _, _ in SEMIRING_CASES])
@pytest.mark.parametrize("tag", sorted(EXPRESSIONS))
def test_circuit_matches_naive(tag, sr, conv):
    for seed in (0, 1):
        build_and_check(tag, sr, conv, seed)


@pytest.mark.parametrize("tag", ["grandchildren", "distinct3", "siblings"])
def test_dynamic_updates_match_recompute(tag):
    circuit, forest, values = build_and_check(tag, INTEGER, lambda v: v, 11,
                                              n=15)
    dynamic = DynamicEvaluator(circuit, INTEGER,
                               valuation_from_dict(values, 0))
    rng = random.Random(5)
    keys = sorted(values)
    for _ in range(25):
        key = rng.choice(keys)
        value = rng.randint(0, 6)
        values[key] = value
        dynamic.update_input(key, value)
        static = StaticEvaluator(circuit, INTEGER,
                                 valuation_from_dict(values, 0)).value()
        assert dynamic.value() == static


@pytest.mark.parametrize("strategy", ["recompute", "segment-tree", "ring"])
def test_dynamic_strategies_agree(strategy):
    circuit, forest, values = build_and_check("distinct3", INTEGER,
                                              lambda v: v, 3, n=10)
    dynamic = DynamicEvaluator(circuit, INTEGER,
                               valuation_from_dict(values, 0),
                               strategy=strategy)
    rng = random.Random(7)
    keys = sorted(values)
    for _ in range(10):
        key = rng.choice(keys)
        value = rng.randint(0, 5)
        values[key] = value
        dynamic.update_input(key, value)
    static = StaticEvaluator(circuit, INTEGER,
                             valuation_from_dict(values, 0)).value()
    assert dynamic.value() == static


def test_theorem6_circuit_shape_bounds():
    """Bounded depth, fan-out and permanent rows; size grows linearly."""
    sizes = {}
    for n in (20, 40, 80):
        expr = EXPRESSIONS["grandchildren"]
        forest = random_labeled_forest(n, 3, seed=2)
        circuit = compile_forest_query(forest, normalize(expr))
        stats = circuit.stats()
        assert stats["depth"] <= 2 * forest.height() + 3
        assert stats["max_perm_rows"] <= 3
        sizes[n] = stats["size"]
    assert sizes[80] <= 8 * max(sizes[20], 1)


def test_multi_row_permanent_gates_appear():
    """distinct3 on a flat forest needs a genuine 3-row permanent."""
    parent = {i: None for i in range(6)}
    forest = LabeledForest(parent, labels={"R": set(range(6))},
                           weights={"w": {i: i + 1 for i in range(6)},
                                    "u": {i: 1 for i in range(6)}})
    circuit = compile_forest_query(forest, normalize(EXPRESSIONS["distinct3"]))
    assert circuit.stats()["max_perm_rows"] == 3
    values = {("w", name, (node,)): val
              for name, mp in forest.weights.items()
              for node, val in mp.items()}
    got = StaticEvaluator(circuit, NATURAL,
                          valuation_from_dict(values, 0)).value()
    expected = eval_expression(EXPRESSIONS["distinct3"],
                               model_for(forest, zero=0), NATURAL)
    assert got == expected


def test_empty_forest():
    circuit = compile_forest_query(LabeledForest({}),
                                   normalize(EXPRESSIONS["sum_w"]))
    assert StaticEvaluator(circuit, NATURAL,
                           valuation_from_dict({}, 0)).value() == 0


def test_variable_free_blocks():
    circuit = compile_forest_query(LabeledForest({}),
                                   normalize(WConst(4) + WConst(3)))
    assert StaticEvaluator(circuit, NATURAL,
                           valuation_from_dict({}, 0)).value() == 7


def test_undeclared_weight_prunes_to_zero():
    parent = {0: None, 1: 0}
    forest = LabeledForest(parent, weights={"w": {0: 5}})
    # u undeclared anywhere: the whole block is zero.
    expr = Sum("x", Weight("u", ("x",)))
    circuit = compile_forest_query(forest, normalize(expr))
    assert StaticEvaluator(circuit, NATURAL,
                           valuation_from_dict({}, 0)).value() == 0
