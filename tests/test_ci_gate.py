"""The CI perf-regression gate's comparison logic (benchmarks/ci_smoke.py)."""

from __future__ import annotations

import importlib.util
import os

HERE = os.path.dirname(os.path.abspath(__file__))
CI_SMOKE = os.path.join(HERE, os.pardir, "benchmarks", "ci_smoke.py")

spec = importlib.util.spec_from_file_location("ci_smoke", CI_SMOKE)
ci_smoke = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ci_smoke)


def report(**seconds):
    return {"benches": [{"bench": name, "seconds": value}
                        for name, value in seconds.items()]}


class TestCompareToBaseline:
    def test_within_bounds_passes(self):
        failures, notes = ci_smoke.compare_to_baseline(
            report(a=1.1, b=2.0), report(a=1.0, b=2.0),
            max_regression=0.25, grace=0.25)
        assert failures == [] and notes == []

    def test_25_percent_regression_fails(self):
        # 10s -> 13s is +30%: past the 25% bound even with grace.
        failures, _ = ci_smoke.compare_to_baseline(
            report(a=13.0), report(a=10.0),
            max_regression=0.25, grace=0.25)
        assert len(failures) == 1 and "a" in failures[0]

    def test_grace_shields_subsecond_noise(self):
        # 0.2s -> 0.4s is +100% but within the absolute grace window.
        failures, _ = ci_smoke.compare_to_baseline(
            report(a=0.4), report(a=0.2),
            max_regression=0.25, grace=0.25)
        assert failures == []

    def test_new_and_removed_benches_are_notes_not_failures(self):
        failures, notes = ci_smoke.compare_to_baseline(
            report(new_bench=5.0), report(old_bench=1.0),
            max_regression=0.25, grace=0.25)
        assert failures == []
        assert any("new_bench" in note for note in notes)
        assert any("old_bench" in note for note in notes)


class TestBaselineForBackend:
    def test_plain_report_form(self):
        plain = report(a=1.0)
        assert ci_smoke.baseline_for_backend(plain, "numpy") is plain

    def test_backend_keyed_form(self):
        data = {"numpy": report(a=1.0), "python": report(a=2.0)}
        assert ci_smoke.baseline_for_backend(data, "python") == report(a=2.0)
        assert ci_smoke.baseline_for_backend(data, "pypy") is None
