"""The CI perf-regression gate's comparison logic (benchmarks/ci_smoke.py)."""

from __future__ import annotations

import importlib.util
import os

HERE = os.path.dirname(os.path.abspath(__file__))
CI_SMOKE = os.path.join(HERE, os.pardir, "benchmarks", "ci_smoke.py")

spec = importlib.util.spec_from_file_location("ci_smoke", CI_SMOKE)
ci_smoke = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ci_smoke)


def report(**seconds):
    return {"benches": [{"bench": name, "seconds": value}
                        for name, value in seconds.items()]}


def calibrated(calibration, **seconds):
    data = report(**seconds)
    data["calibration_seconds"] = calibration
    return data


class TestCompareToBaseline:
    def test_within_bounds_passes(self):
        failures, notes = ci_smoke.compare_to_baseline(
            calibrated(0.1, a=1.1, b=2.0), calibrated(0.1, a=1.0, b=2.0),
            max_regression=0.25, grace=0.25)
        assert failures == [] and notes == []

    def test_25_percent_regression_fails(self):
        # 10s -> 13s is +30%: past the 25% bound even with grace, on a
        # same-speed runner (equal calibration samples).
        failures, _ = ci_smoke.compare_to_baseline(
            calibrated(0.1, a=13.0), calibrated(0.1, a=10.0),
            max_regression=0.25, grace=0.25)
        assert len(failures) == 1 and "a" in failures[0]

    def test_grace_shields_subsecond_noise(self):
        # 0.2s -> 0.4s is +100% but within the absolute grace window.
        failures, _ = ci_smoke.compare_to_baseline(
            report(a=0.4), report(a=0.2),
            max_regression=0.25, grace=0.25)
        assert failures == []

    def test_new_and_removed_benches_are_notes_not_failures(self):
        failures, notes = ci_smoke.compare_to_baseline(
            report(new_bench=5.0), report(old_bench=1.0),
            max_regression=0.25, grace=0.25)
        assert failures == []
        assert any("new_bench" in note for note in notes)
        assert any("old_bench" in note for note in notes)


class TestCalibrationScaling:
    def test_slow_runner_relaxes_the_gate(self):
        # 2x slower machine (calibration 0.2 vs 0.1): a uniform 2x
        # slowdown of a 10s bench stays within the scaled threshold.
        failures, notes = ci_smoke.compare_to_baseline(
            calibrated(0.2, a=20.0), calibrated(0.1, a=10.0),
            max_regression=0.25, grace=0.25)
        assert failures == []
        assert any("2.00x slower" in note for note in notes)

    def test_same_speed_runner_still_fails_real_regressions(self):
        failures, _ = ci_smoke.compare_to_baseline(
            calibrated(0.1, a=20.0), calibrated(0.1, a=10.0),
            max_regression=0.25, grace=0.25)
        assert len(failures) == 1 and "calibration scale" in failures[0]

    def test_fast_runner_never_tightens_below_the_floor(self):
        # 4x faster machine: scale clamps at 1.0, so a bench matching
        # its baseline (well within 25% + grace) still passes.
        failures, _ = ci_smoke.compare_to_baseline(
            calibrated(0.025, a=10.0), calibrated(0.1, a=10.0),
            max_regression=0.25, grace=0.25)
        assert failures == []

    def test_scale_is_clamped_at_4x(self):
        # 10x slower calibration must not excuse a 10x slowdown: the
        # scale clamps at 4x, so 10s -> 100s still fails.
        failures, _ = ci_smoke.compare_to_baseline(
            calibrated(1.0, a=100.0), calibrated(0.1, a=10.0),
            max_regression=0.25, grace=0.25)
        assert len(failures) == 1

    def test_scale_helper_bounds(self):
        assert ci_smoke.calibration_scale(calibrated(0.2, a=1),
                                          calibrated(0.1, a=1)) == 2.0
        assert ci_smoke.calibration_scale(calibrated(0.01, a=1),
                                          calibrated(0.1, a=1)) == 1.0
        assert ci_smoke.calibration_scale(calibrated(9.9, a=1),
                                          calibrated(0.1, a=1)) == 4.0
        assert ci_smoke.calibration_scale(report(a=1),
                                          calibrated(0.1, a=1)) is None

    def test_calibrate_returns_positive_seconds(self):
        sample = ci_smoke.calibrate(repeats=1)
        assert 0 < sample < 30


class TestShareFallback:
    def test_uniform_slowdown_cancels_in_shares(self):
        # No calibration on the baseline: a machine-wide 2x slowdown
        # keeps every bench's share of the total identical — no flake.
        failures, notes = ci_smoke.compare_to_baseline(
            report(a=20.0, b=4.0), report(a=10.0, b=2.0),
            max_regression=0.25, grace=0.25)
        assert failures == []
        assert any("relative-share" in note for note in notes)

    def test_single_bench_regression_shifts_its_share(self):
        # Only one bench slowed (10s -> 30s while its peer held): its
        # share of the total grew past the allowance.
        failures, _ = ci_smoke.compare_to_baseline(
            report(a=30.0, b=10.0), report(a=10.0, b=10.0),
            max_regression=0.25, grace=0.25)
        assert len(failures) == 1 and "share" in failures[0]

    def test_absolute_floor_still_shields_small_benches(self):
        # Share doubled but the bench sits inside 25% + 0.25s grace.
        failures, _ = ci_smoke.compare_to_baseline(
            report(a=0.3, b=10.0), report(a=0.15, b=10.0),
            max_regression=0.25, grace=0.25)
        assert failures == []


class TestSpeedupGate:
    @staticmethod
    def speedup_report(fast, **speedups):
        return {"fast_mode": fast,
                "benches": [{"bench": name, "seconds": 1.0,
                             "python_seconds": 1.0 * value,
                             "speedup_vs_python": value}
                            for name, value in speedups.items()]}

    def test_slower_than_python_fails(self):
        failures = ci_smoke.check_speedups(self.speedup_report(
            False, **{"bench_x.py": 0.8, "bench_y.py": 2.0}))
        assert len(failures) == 1 and "bench_x.py" in failures[0]

    def test_fast_mode_exempts_known_small_benches(self):
        report = self.speedup_report(
            True, **{"bench_batched_eval.py": 0.5, "bench_serve.py": 0.9})
        assert ci_smoke.check_speedups(report) == []

    def test_full_mode_checks_everything(self):
        report = self.speedup_report(
            False, **{"bench_batched_eval.py": 0.5, "bench_serve.py": 0.9})
        assert len(ci_smoke.check_speedups(report)) == 2

    def test_benches_without_a_recording_are_skipped(self):
        assert ci_smoke.check_speedups(report(a=1.0, b=2.0)) == []


class TestMergeBaseline:
    def test_merge_preserves_the_other_leg(self):
        existing = {"python": report(a=1.0)}
        merged = ci_smoke.merge_baseline(existing, "numpy", report(a=0.5))
        assert set(merged) == {"python", "numpy"}
        assert merged["python"] == report(a=1.0)
        assert existing == {"python": report(a=1.0)}  # input untouched

    def test_merge_overwrites_the_same_leg(self):
        merged = ci_smoke.merge_baseline({"numpy": report(a=1.0)},
                                         "numpy", report(a=0.5))
        assert merged["numpy"] == report(a=0.5)

    def test_merge_lifts_legacy_single_report_form(self):
        legacy = dict(report(a=1.0), backend="python")
        merged = ci_smoke.merge_baseline(legacy, "numpy", report(a=0.5))
        assert merged["python"]["benches"] == report(a=1.0)["benches"]
        assert merged["numpy"] == report(a=0.5)


class TestBaselineForBackend:
    def test_plain_report_form(self):
        plain = report(a=1.0)
        assert ci_smoke.baseline_for_backend(plain, "numpy") is plain

    def test_backend_keyed_form(self):
        data = {"numpy": report(a=1.0), "python": report(a=2.0)}
        assert ci_smoke.baseline_for_backend(data, "python") == report(a=2.0)
        assert ci_smoke.baseline_for_backend(data, "pypy") is None
