"""Optimizer passes + batched evaluation: semantics-preservation suite.

The contract under test: for every circuit and every commutative
semiring, the optimized circuit computes the same value as the original
under every valuation — statically, dynamically (Theorem 8 maintenance),
batched, and through the full Theorem 6 pipeline.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits import (AddGate, BatchedEvaluator, CircuitBuilder,
                            ConstGate, DEFAULT_PIPELINE, DynamicEvaluator,
                            InputGate, MulGate, PermGate, StaticEvaluator,
                            describe_optimization, optimize_circuit,
                            render_dot, render_text, summarize,
                            valuation_from_dict)
from repro.semirings import (BOOLEAN, FreeSemiring, INTEGER, MIN_PLUS,
                             NATURAL)

SEMIRINGS = [
    pytest.param(NATURAL, lambda rng: rng.randint(0, 5), id="numeric"),
    pytest.param(MIN_PLUS, lambda rng: rng.randint(0, 5), id="tropical"),
    pytest.param(BOOLEAN, lambda rng: rng.random() < 0.6, id="boolean"),
]


def provenance_setup():
    sr = FreeSemiring()
    return sr, lambda rng: sr.generator(("g", rng.randrange(4)))


def build_random_circuit(seed, n_inputs=8, steps=14):
    """Random DAG mixing all gate kinds, with deliberate constant litter
    and nested add/add + mul/mul chains so every pass has work to do."""
    rng = random.Random(seed)
    builder = CircuitBuilder()
    pool = [builder.input(("x", i)) for i in range(n_inputs)]
    pool += [builder.const(0), builder.const(1), builder.const(2),
             builder.const(True)]
    for _ in range(steps):
        kind = rng.choice(["add", "mul", "perm", "add", "mul"])
        if kind == "add":
            gate = builder.add(rng.sample(pool, rng.randint(2, 4)))
        elif kind == "mul":
            gate = builder.mul(rng.sample(pool, rng.randint(2, 3)))
        else:
            cols = rng.randint(2, 4)
            entries = [[rng.choice(pool + [None]) for _ in range(cols)]
                       for _ in range(2)]
            gate = builder.perm(entries)
        if gate is not None:
            pool.append(gate)
    output = builder.add(pool[-4:])
    return builder.build(output)


def random_valuation(seed, sample, n_inputs=8):
    rng = random.Random(seed)
    return {("x", i): sample(rng) for i in range(n_inputs)}


class TestEquivalence:
    @pytest.mark.parametrize("sr,sample", SEMIRINGS)
    @pytest.mark.parametrize("seed", range(8))
    def test_optimized_matches_original(self, seed, sr, sample):
        circuit = build_random_circuit(seed)
        optimized = optimize_circuit(circuit).circuit
        for trial in range(4):
            values = random_valuation(seed * 31 + trial, sample)
            valuation = valuation_from_dict(values, sr.zero)
            expected = StaticEvaluator(circuit, sr, valuation).value()
            actual = StaticEvaluator(optimized, sr, valuation).value()
            assert sr.eq(expected, actual), (seed, trial, sr.name)

    @pytest.mark.parametrize("seed", range(4))
    def test_optimized_matches_original_provenance(self, seed):
        sr, sample = provenance_setup()
        circuit = build_random_circuit(seed)
        optimized = optimize_circuit(circuit).circuit
        for trial in range(3):
            values = random_valuation(seed * 17 + trial, sample)
            valuation = valuation_from_dict(values, sr.zero)
            expected = StaticEvaluator(circuit, sr, valuation).value()
            actual = StaticEvaluator(optimized, sr, valuation).value()
            assert sr.eq(expected, actual), (seed, trial)

    @pytest.mark.parametrize("passes", [("fold",), ("flatten",), ("cse",),
                                        ("dce",), DEFAULT_PIPELINE])
    @pytest.mark.parametrize("seed", range(4))
    def test_each_pass_alone_preserves_value(self, seed, passes):
        circuit = build_random_circuit(seed)
        optimized = optimize_circuit(circuit, passes=passes).circuit
        values = random_valuation(seed, lambda rng: rng.randint(0, 5))
        valuation = valuation_from_dict(values, 0)
        expected = StaticEvaluator(circuit, INTEGER, valuation).value()
        assert StaticEvaluator(optimized, INTEGER, valuation).value() \
            == expected

    def test_unknown_pass_rejected(self):
        circuit = build_random_circuit(0)
        with pytest.raises(ValueError, match="unknown optimization pass"):
            optimize_circuit(circuit, passes=("mystery",))


class TestDynamicOnOptimized:
    """Theorem 8 maintenance must hold on optimized circuits: a dynamic
    evaluator over the rewritten circuit tracks full recomputation."""

    @pytest.mark.parametrize("sr,sample", SEMIRINGS)
    @pytest.mark.parametrize("seed", range(5))
    def test_updates_match_recomputation(self, seed, sr, sample):
        circuit = optimize_circuit(build_random_circuit(seed)).circuit
        rng = random.Random(seed + 1000)
        values = random_valuation(seed, sample)
        dynamic = DynamicEvaluator(
            circuit, sr, valuation_from_dict(dict(values), sr.zero))
        for _ in range(10):
            key = ("x", rng.randrange(8))
            value = sample(rng)
            values[key] = value
            dynamic.update_input(key, value)
            static = StaticEvaluator(
                circuit, sr, valuation_from_dict(values, sr.zero)).value()
            assert sr.eq(dynamic.value(), static), seed

    def test_folded_away_inputs_are_harmless(self):
        """An input multiplied by a constant zero is eliminated; updating
        it afterwards is a no-op rather than an error."""
        builder = CircuitBuilder()
        a = builder.input("a")
        b = builder.input("b")
        dead = builder.mul([a, builder.const(0)])
        live = builder.mul([b, builder.const(3)])
        circuit = builder.build(builder.add([dead, live]))
        optimized = optimize_circuit(circuit).circuit
        assert "a" not in optimized.inputs
        dynamic = DynamicEvaluator(optimized, INTEGER,
                                   valuation_from_dict({"b": 2}, 0))
        assert dynamic.update_input("a", 99) == 0
        assert dynamic.value() == 6
        dynamic.update_input("b", 5)
        assert dynamic.value() == 15


class TestPasses:
    def test_constant_folding_collapses_const_circuit(self):
        builder = CircuitBuilder()
        two = builder.const(2)
        three = builder.const(3)
        total = builder.add([builder.mul([two, three]), builder.const(4)])
        result = optimize_circuit(builder.build(total))
        assert result.gates_after == 1
        gate = result.circuit.gates[result.circuit.output]
        assert isinstance(gate, ConstGate) and gate.value == 10

    def test_constant_folding_through_perm(self):
        builder = CircuitBuilder()
        entries = [[builder.const(1), builder.const(2)],
                   [builder.const(3), builder.const(4)]]
        gate = builder.perm(entries)
        result = optimize_circuit(builder.build(gate))
        out = result.circuit.gates[result.circuit.output]
        assert isinstance(out, ConstGate)
        assert out.value == 1 * 4 + 2 * 3  # permanent of [[1,2],[3,4]]

    def test_zero_entries_pruned_from_perm(self):
        builder = CircuitBuilder()
        x = builder.input("x")
        y = builder.input("y")
        zero = builder.const(0)
        gate = builder.perm([[x, zero, x], [zero, y, y]])
        result = optimize_circuit(builder.build(gate), passes=("fold",))
        out = result.circuit.gates[result.circuit.output]
        assert isinstance(out, PermGate)
        assert out.entries[0][1] is None and out.entries[1][0] is None

    def test_flatten_merges_chains(self):
        builder = CircuitBuilder()
        xs = [builder.input(("x", i)) for i in range(6)]
        nested = builder.add([builder.add(xs[:2]),
                              builder.add([builder.add(xs[2:4]), xs[4]]),
                              xs[5]])
        result = optimize_circuit(builder.build(nested),
                                  passes=("flatten",))
        out = result.circuit.gates[result.circuit.output]
        assert isinstance(out, AddGate) and len(out.children) == 6

    def test_flatten_keeps_shared_children(self):
        builder = CircuitBuilder()
        xs = [builder.input(("x", i)) for i in range(3)]
        shared = builder.add(xs[:2])
        top = builder.add([builder.mul([shared, xs[2]]), shared])
        result = optimize_circuit(builder.build(top), passes=("flatten",))
        # `shared` feeds two parents: it must survive as its own gate,
        # not be spliced into the top addition.
        out = result.circuit.gates[result.circuit.output]
        mapped = result.remap[shared]
        assert isinstance(out, AddGate) and mapped in out.children
        assert isinstance(result.circuit.gates[mapped], AddGate)

    def test_cse_merges_structural_duplicates(self):
        gates = [InputGate("a"), InputGate("b"),
                 AddGate((0, 1)), AddGate((0, 1)),
                 MulGate((2, 3))]
        from repro.circuits import Circuit
        circuit = Circuit(gates, 4, {"a": 0, "b": 1})
        result = optimize_circuit(circuit, passes=("cse",))
        assert result.gates_after < len(gates)
        assert result.remap[2] == result.remap[3]

    def test_remap_translates_every_live_gate(self):
        for seed in range(4):
            circuit = build_random_circuit(seed)
            result = optimize_circuit(circuit)
            live = set(circuit.live_gates())
            assert set(result.remap) == live
            for new in result.remap.values():
                if new is not None:
                    assert 0 <= new < len(result.circuit.gates)

    def test_inputs_table_rebuilt(self):
        circuit = build_random_circuit(2)
        result = optimize_circuit(circuit)
        for key, gate_id in result.circuit.inputs.items():
            gate = result.circuit.gates[gate_id]
            assert isinstance(gate, InputGate) and gate.key == key


class TestBatchedEvaluator:
    @pytest.mark.parametrize("sr,sample", SEMIRINGS)
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_per_valuation_static(self, seed, sr, sample):
        circuit = build_random_circuit(seed)
        batch = [random_valuation(seed * 7 + t, sample) for t in range(5)]
        batched = BatchedEvaluator(
            circuit, sr,
            [valuation_from_dict(values, sr.zero) for values in batch])
        for index, values in enumerate(batch):
            expected = StaticEvaluator(
                circuit, sr, valuation_from_dict(values, sr.zero)).value()
            assert sr.eq(batched.value(index), expected)
        assert len(batched.results()) == len(batch)

    def test_values_of_intermediate_gate(self):
        builder = CircuitBuilder()
        a, b = builder.input("a"), builder.input("b")
        total = builder.add([a, b])
        circuit = builder.build(builder.mul([total, total]))
        batched = BatchedEvaluator(circuit, INTEGER, [
            valuation_from_dict({"a": 1, "b": 2}, 0),
            valuation_from_dict({"a": 3, "b": 4}, 0)])
        assert batched.values_of(total) == [3, 7]
        assert batched.results() == [9, 49]

    def test_empty_batch(self):
        circuit = build_random_circuit(0)
        batched = BatchedEvaluator(circuit, INTEGER, [])
        assert batched.results() == []


class TestStatsAndRender:
    """The satellite fix: post-optimization circuits report and render
    with remapped ids and no dangling references."""

    def test_stats_on_optimized_circuit(self):
        circuit = build_random_circuit(3)
        result = optimize_circuit(circuit)
        stats = result.circuit.stats()
        assert stats["gates"] <= circuit.stats()["gates"]
        assert stats["stored_gates"] == len(result.circuit.gates)
        assert stats["dead_gates"] == stats["stored_gates"] - stats["gates"]
        assert stats["max_fan_in"] >= 2

    def test_render_optimized_circuit_has_no_dangling_ids(self):
        circuit = build_random_circuit(4)
        result = optimize_circuit(circuit)
        dot = render_dot(result.circuit)
        declared = {line.split(" ", 3)[2]
                    for line in dot.splitlines() if "[label=" in line}
        for line in dot.splitlines():
            if "->" in line:
                src, dst = line.strip().rstrip(";").split(" -> ")
                assert src in declared and dst in declared
        text = render_text(result.circuit)
        assert text  # walks without KeyError/IndexError

    def test_summarize_reports_dead_gates(self):
        from repro.circuits import Circuit
        gates = [InputGate("a"), InputGate("b"), AddGate((0, 1))]
        circuit = Circuit(gates, 0, {"a": 0})  # gates 1, 2 are dead
        summary = summarize(circuit)
        assert "1 gates" in summary and "+2 dead" in summary
        live_only = optimize_circuit(circuit).circuit
        assert "dead" not in summarize(live_only)

    def test_describe_optimization(self):
        result = optimize_circuit(build_random_circuit(5))
        text = describe_optimization(result)
        assert "optimized" in text and "->" in text
        for name, _ in result.trace:
            assert name in text
