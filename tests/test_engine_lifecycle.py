"""Engine lifecycle regressions: exception-safe point queries, selector
teardown via close()/context manager, and race-free engine tagging."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import SELECTOR_PREFIX, WeightedQueryEngine
from repro.graphs import path_graph, triangulated_grid
from repro.logic import Atom, Bracket, StructureModel, Sum, Weight, \
    eval_expression
from repro.semirings import NATURAL, IntegerRing

from tests.util import weighted_graph_structure

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

OUT_SUM = Sum("y", Bracket(E("x", "y")) * w("x", "y"))
EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))


class FailingRing(IntegerRing):
    """Z whose ``add`` can be armed to blow up once, mid-propagation."""

    name = "Z-failing"

    def __init__(self):
        self.failures_left = 0

    def arm(self, failures: int = 1) -> None:
        self.failures_left = failures

    def add(self, a, b):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise ArithmeticError("injected semiring failure")
        return a + b


def selector_names(structure):
    return {name for name in structure.weights
            if name.startswith(SELECTOR_PREFIX)}


class TestQueryExceptionSafety:
    def test_failed_query_does_not_poison_later_queries(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=4)
        sr = FailingRing()
        engine = WeightedQueryEngine(structure, OUT_SUM, sr)
        model = StructureModel(structure, 0)
        probes = structure.domain[:4]
        expected = [eval_expression(OUT_SUM, model, sr, {"x": v})
                    for v in probes]
        assert [engine.query(v) for v in probes] == expected

        sr.arm(1)  # the next semiring add (selector raise) explodes
        with pytest.raises(ArithmeticError):
            engine.query(probes[0])

        # Regression: selectors must be back at zero, so every later
        # query still sees exactly one hot selector per free variable.
        assert [engine.query(v) for v in probes] == expected

    def test_restore_loop_survives_a_failing_restore(self):
        # Regression: with two free variables and a double failure (the
        # read path and then the first restore), the restore loop must
        # still zero the *second* selector instead of aborting.
        structure = weighted_graph_structure(path_graph(6), seed=2)
        sr = FailingRing()
        expr = Bracket(E("x", "y")) * w("x", "y")
        engine = WeightedQueryEngine(structure, expr, sr,
                                     free_order=("x", "y"))
        a, b = structure.domain[0], structure.domain[1]
        expected = engine.query(a, b)
        sr.arm(2)  # failure 1: raising a selector; failure 2: one restore
        with pytest.raises(ArithmeticError):
            engine.query(a, b)
        for name, element in zip(engine.selectors, (a, b)):
            assert engine.compiled.structure.weights[name][(element,)] == 0
        assert engine.query(a, b) == expected

    def test_selectors_zeroed_in_dynamic_state_after_failure(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=7)
        sr = FailingRing()
        engine = WeightedQueryEngine(structure, OUT_SUM, sr)
        v = structure.domain[0]
        sr.arm(1)
        with pytest.raises(ArithmeticError):
            engine.query(v)
        for name in engine.selectors:
            assert engine.compiled.structure.weights[name][(v,)] == 0


class TestCloseLifecycle:
    def test_close_strips_selector_weights(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=1)
        weight_names = set(structure.weights)
        engine = WeightedQueryEngine(structure, OUT_SUM, NATURAL)
        assert selector_names(structure)  # constructor installed selectors
        engine.close()
        assert selector_names(structure) == set()
        assert set(structure.weights) == weight_names
        assert engine.closed

    def test_close_is_idempotent_and_blocks_use(self):
        structure = weighted_graph_structure(path_graph(5), seed=0)
        engine = WeightedQueryEngine(structure, OUT_SUM, NATURAL)
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError):
            engine.query(structure.domain[0])
        with pytest.raises(RuntimeError):
            engine.query_batch([(structure.domain[0],)])
        with pytest.raises(RuntimeError):
            engine.update_weight("w", next(iter(structure.relations["E"])), 2)

    def test_context_manager(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=3)
        model = StructureModel(structure, 0)
        with WeightedQueryEngine(structure, OUT_SUM, NATURAL) as engine:
            v = structure.domain[1]
            assert engine.query(v) == eval_expression(OUT_SUM, model,
                                                      NATURAL, {"x": v})
        assert engine.closed
        assert selector_names(structure) == set()

    def test_repeated_engines_do_not_grow_weight_table(self):
        # Regression: constructing engines on one shared structure used to
        # leak |free| selector weight functions per engine, forever.
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=8)
        baseline = len(structure.weights)
        values = []
        for _ in range(12):
            with WeightedQueryEngine(structure, OUT_SUM, NATURAL) as engine:
                values.append(engine.query(structure.domain[0]))
            assert len(structure.weights) == baseline
        assert len(set(values)) == 1  # engines see identical data

    def test_failed_construction_leaves_no_selectors_behind(self):
        # Regression: if compilation/initial evaluation raises, there is
        # no engine object to close() — the constructor itself must strip
        # the selectors it already installed.
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=2)
        weight_names = set(structure.weights)
        sr = FailingRing()
        sr.arm(1)  # first semiring add (initial circuit pass) explodes
        with pytest.raises(ArithmeticError):
            WeightedQueryEngine(structure, OUT_SUM, sr)
        assert set(structure.weights) == weight_names

    def test_closed_query_close_is_harmless(self):
        structure = weighted_graph_structure(path_graph(4), seed=0)
        with WeightedQueryEngine(structure, EDGE_SUM, NATURAL) as engine:
            assert engine.value() == eval_expression(
                EDGE_SUM, StructureModel(structure, 0), NATURAL)


class TestEngineTagging:
    def test_concurrent_construction_mints_unique_selectors(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=5)

        def build(_):
            engine = WeightedQueryEngine(structure.copy(), OUT_SUM, NATURAL)
            try:
                return tuple(engine.selectors)
            finally:
                engine.close()

        with ThreadPoolExecutor(max_workers=8) as pool:
            all_selectors = list(pool.map(build, range(32)))
        flat = [name for selectors in all_selectors for name in selectors]
        assert len(flat) == len(set(flat)), "colliding selector names"
