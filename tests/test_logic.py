"""Formulas, weighted expressions, normalization, naive evaluation."""

from __future__ import annotations

import random

import pytest
from repro.graphs import triangulated_grid
from repro.logic import (FALSE, TRUE, Atom, Bracket, Eq,
                         StructureModel, Sum, Truth, WAdd, WConst, WMul,
                         Weight, assign_atoms, atoms_of, conj, disj,
                         eval_expression, eval_formula, exists, forall,
                         is_quantifier_free, map_atoms, negate,
                         normalize, substitute_vars)
from repro.semirings import BOOLEAN, MIN_PLUS, NATURAL
from repro.structures import graph_structure

from tests.util import weighted_graph_structure

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))


class TestFormulas:
    def test_operators_and_free_vars(self):
        phi = (E("x", "y") & ~Eq("x", "y")) | Atom("R", ("z",))
        assert phi.free_vars() == {"x", "y", "z"}
        assert exists(("x", "z"), phi).free_vars() == {"y"}

    def test_constant_folding(self):
        assert conj() == TRUE
        assert conj(TRUE, FALSE) == FALSE
        assert disj(FALSE, E("x", "y")) == E("x", "y")
        assert negate(negate(E("x", "y"))) == E("x", "y")
        assert negate(TRUE) == FALSE

    def test_substitution(self):
        phi = exists("y", E("x", "y") & Eq("x", "z"))
        renamed = substitute_vars(phi, {"x": "a", "y": "ignored"})
        assert renamed == exists("y", E("a", "y") & Eq("a", "z"))

    def test_substitution_respects_binding(self):
        phi = exists("x", E("x", "y"))
        assert substitute_vars(phi, {"x": "a"}) == phi

    def test_quantifier_free_check(self):
        assert is_quantifier_free(E("x", "y") & ~Eq("x", "y"))
        assert not is_quantifier_free(~exists("y", E("x", "y")))

    def test_atoms_of_and_assignment(self):
        phi = (E("x", "y") & ~Eq("x", "y")) | E("y", "x")
        atoms = atoms_of(phi)
        assert set(atoms) == {E("x", "y"), Eq("x", "y"), E("y", "x")}
        reduced = assign_atoms(phi, {E("x", "y"): True, Eq("x", "y"): False})
        assert reduced == TRUE

    def test_map_atoms_preserves_negation(self):
        phi = ~(E("x", "y") & Eq("x", "y"))
        flipped = map_atoms(phi, lambda a: Truth(True)
                            if isinstance(a, Eq) else a)
        assert flipped == negate(conj(E("x", "y"), TRUE))


class TestWeightedExpressions:
    def test_operator_composition(self):
        expr = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y") + WConst(1))
        assert expr.free_vars() == frozenset()
        assert isinstance(expr.inner, WAdd)

    def test_lifting_of_plain_values(self):
        expr = 2 * Weight("u", ("x",)) + 3
        assert isinstance(expr, WAdd)
        assert any(isinstance(p, WConst) and p.value == 3
                   for p in expr.parts)

    def test_formula_lifting_in_products(self):
        expr = Weight("u", ("x",)) * E("x", "x")
        assert any(isinstance(p, Bracket) for p in expr.parts)


class TestNormalization:
    def test_rejects_open_expressions(self):
        with pytest.raises(ValueError):
            normalize(Weight("u", ("x",)))

    def test_rejects_quantified_brackets(self):
        with pytest.raises(ValueError):
            normalize(Sum("x", Bracket(exists("y", E("x", "y")))))

    def test_block_structure_of_triangle_query(self):
        tri = Sum(("x", "y", "z"),
                  Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
                  * w("x", "y") * w("y", "z") * w("z", "x"))
        blocks = normalize(tri)
        assert len(blocks) == 1
        block = blocks[0]
        assert len(block.vars) == 3
        assert len(block.weight_factors) == 3
        assert len(block.brackets) == 1

    def test_distribution_counts_blocks(self):
        expr = Sum("x", (Weight("u", ("x",)) + Weight("v", ("x",)))
                   * (Weight("a", ("x",)) + Weight("b", ("x",))))
        assert len(normalize(expr)) == 4

    def test_nested_sums_flatten(self):
        expr = Sum("x", Weight("u", ("x",)) * Sum("y", Weight("v", ("y",))))
        blocks = normalize(expr)
        assert len(blocks) == 1
        assert len(blocks[0].vars) == 2

    def test_alpha_renaming_keeps_sums_independent(self):
        inner = Sum("x", Weight("u", ("x",)))
        expr = inner * inner  # same bound name used twice
        blocks = normalize(expr)
        assert len(blocks) == 1
        assert len(set(blocks[0].vars)) == 2

    NORMALIZE_SEMANTICS_CASES = [
        Sum("x", Weight("u", ("x",)) * Sum("y", Weight("v", ("y",)))),
        Sum("x", Weight("u", ("x",))) * Sum("y", Weight("v", ("y",))),
        Sum(("x", "y"), (Bracket(E("x", "y")) + Bracket(Eq("x", "y")))
            * Weight("u", ("x",)) * Weight("v", ("y",))),
        Sum("x", Weight("u", ("x",))) + WConst(5),
    ]

    @pytest.mark.parametrize("case", range(len(NORMALIZE_SEMANTICS_CASES)))
    def test_normalization_preserves_semantics(self, case):
        """Blocks evaluated naively must sum to the original expression."""
        expr = self.NORMALIZE_SEMANTICS_CASES[case]
        structure = graph_structure(triangulated_grid(2, 3))
        rng = random.Random(case)
        for name in ("u", "v"):
            for node in structure.domain:
                structure.set_weight(name, (node,), rng.randint(0, 4))
        model = StructureModel(structure, 0)
        expected = eval_expression(expr, model, NATURAL)
        total = 0
        for block in normalize(expr):
            rebuilt = Sum(block.vars, WMul(
                tuple(Weight(n, t) for n, t in block.weight_factors)
                + tuple(WConst(c) for c in block.const_factors)
                + tuple(Bracket(b) for b in block.brackets))) \
                if block.vars else WMul(
                tuple(WConst(c) for c in block.const_factors)
                + tuple(Bracket(b) for b in block.brackets))
            total += eval_expression(rebuilt, model, NATURAL)
        assert total == expected


class TestNaiveEvaluation:
    def test_formula_quantifiers(self):
        structure = graph_structure(triangulated_grid(2, 2))
        model = StructureModel(structure)
        assert eval_formula(exists(("x", "y"), E("x", "y")), model)
        assert not eval_formula(
            forall(("x", "y"), E("x", "y")), model)
        assert eval_formula(
            forall("x", exists("y", E("x", "y"))), model)

    def test_expression_semantics_counting(self):
        structure = weighted_graph_structure(triangulated_grid(2, 2))
        model = StructureModel(structure, 0)
        count = eval_expression(
            Sum(("x", "y"), Bracket(E("x", "y"))), model, NATURAL)
        assert count == len(structure.relations["E"])

    def test_expression_semantics_minplus(self):
        structure = weighted_graph_structure(triangulated_grid(2, 2), seed=4)
        model = StructureModel(structure, MIN_PLUS.zero)
        cheapest = eval_expression(
            Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y")),
            model, MIN_PLUS)
        assert cheapest == min(structure.weights["w"].values())

    def test_boolean_evaluation_via_brackets(self):
        structure = graph_structure(triangulated_grid(2, 2))
        model = StructureModel(structure, BOOLEAN.zero)
        truth = eval_expression(
            Sum(("x", "y", "z"),
                Bracket(E("x", "y") & E("y", "z") & E("z", "x"))),
            model, BOOLEAN)
        assert truth is True
