"""Grouped aggregation: ``PreparedQuery.group_by`` and friends.

Five families:

* equivalence — the one-sweep grouped table matches ``k`` independent
  point queries across every shipped semiring (deterministic and
  hypothesis-random weights);
* the ResultTable surface — columns, iteration, lookup, ``to_dicts``,
  ``to_numpy``, HAVING/ROLLUP edge cases and degenerate group sets;
* cache coherence — group entries share the epoch-tagged result cache
  with bound point queries, and a routed ``db.update()`` invalidates
  only the touched groups (weights and dynamic relations);
* the serving/sugar seams — ``QueryService.group_by`` and
  ``db.select(...).group_by(...).having(...).run(sr)``;
* satellites — ExecOptions group knobs, the ``enumerate`` keyword
  migration (one DeprecationWarning on the old positional spelling,
  none on the new), and per-stage compile timings in stats/explain.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Database, ExecOptions, ResultTable, Select, TOTAL
from repro.logic import Atom, Bracket, Sum, Weight
from repro.semirings import BOOLEAN, MIN_PLUS, NATURAL
from repro.structures import Structure, graph_structure
from repro.graphs import triangulated_grid

from tests.test_plan_store import SEMIRING_CASES, weighted_structure

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

#: f(x) = Σ_y [E(x,y)] · w(x,y) — one aggregate per group key x.
NEIGHBOR_SUM = Sum(("y",), Bracket(E("x", "y")) * w("x", "y"))


def path_db(n: int = 4):
    structure = Structure(
        domain=list(range(n)),
        relations={"E": [(i, i + 1) for i in range(n - 1)]},
        weights={"w": {(i,): i + 1 for i in range(n)}})
    expr = Sum(("y",), Bracket(E("x", "y")) * Weight("w", ("y",)))
    db = Database(structure)
    return db, db.prepare(expr, params=("x",))


# -- equivalence across all shipped semirings ------------------------------------


@pytest.mark.parametrize("sr,conv",
                         [(sr, conv) for _, sr, conv in SEMIRING_CASES],
                         ids=[name for name, _, _ in SEMIRING_CASES])
def test_group_by_matches_point_queries_per_semiring(sr, conv):
    structure = weighted_structure(conv, side=3)
    with Database(structure) as db:
        q = db.prepare(NEIGHBOR_SUM, params=("x",))
        table = q.group_by(sr)
        assert table.columns == ("x", "value")
        assert len(table) == len(structure.domain)
        fresh = db.prepare(NEIGHBOR_SUM, params=("x",),
                           result_cache_size=0)
        for x in structure.domain:
            assert table[x] == fresh.bind(x).value(sr)


@pytest.mark.parametrize("sr,conv",
                         [(sr, conv) for _, sr, conv in SEMIRING_CASES],
                         ids=[name for name, _, _ in SEMIRING_CASES])
def test_group_by_python_backend_matches(sr, conv):
    structure = weighted_structure(conv, side=3)
    with Database(structure) as db:
        q = db.prepare(NEIGHBOR_SUM, params=("x",), result_cache_size=0)
        fast = q.group_by(sr)
        slow = q.group_by(sr, backend="python")
        assert fast.keys() == slow.keys()
        assert fast.values() == slow.values()


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=9),
                min_size=16, max_size=16))
def test_group_by_matches_point_queries_random_weights(raw):
    structure = graph_structure(triangulated_grid(2, 2))
    edges = sorted(structure.relations["E"])
    for value, edge in zip(raw, edges):
        structure.set_weight("w", edge, value)
    with Database(structure) as db:
        q = db.prepare(NEIGHBOR_SUM, params=("x",), result_cache_size=0)
        for sr in (NATURAL, MIN_PLUS):
            table = q.group_by(sr) if sr is NATURAL else q.group_by(
                sr, exact_mode="auto")
            for x in structure.domain:
                assert table[x] == q.bind(x).value(sr)


# -- the ResultTable surface ------------------------------------------------------


def test_result_table_surface():
    db, q = path_db()
    try:
        table = q.group_by(NATURAL)
        assert table.columns == ("x", "value")
        assert len(table) == 4
        rows = list(table)
        assert rows[0] == (0, 2)
        assert table.keys() == [(x,) for x in range(4)]
        assert table[2] == table[(2,)]
        assert (3,) in table and 3 in table
        assert (99,) not in table
        with pytest.raises(KeyError):
            table[99]
        dicts = table.to_dicts()
        assert dicts[0] == {"x": 0, "value": 2}
        numpy = pytest.importorskip("numpy")
        column = table.to_numpy()
        assert list(column) == table.values()
        assert table.stats["groups"] == 4
    finally:
        db.close()


def test_result_table_validates_lengths():
    with pytest.raises(ValueError):
        ResultTable(("x", "value"), [(1,)], [])


def test_having_filters_base_rows_only():
    db, q = path_db()
    try:
        table = q.group_by(NATURAL, having=lambda v: v > 2, rollup=True)
        base = [row for row in table if row[0] is not TOTAL]
        # x=0 (value 2) and x=3 (value 0) are filtered out of the base...
        assert base == [(1, 3), (2, 4)]
        # ...but the grand total still aggregates ALL base groups (SQL
        # semantics: HAVING applies after ROLLUP's source rows).
        assert table[(TOTAL,)] == 2 + 3 + 4 + 0
    finally:
        db.close()


def test_rollup_levels_and_total_sentinel():
    structure = Structure(
        domain=["a", "b"],
        relations={"E": [("a", "a"), ("a", "b"), ("b", "b")]},
        weights={"w": {(("a")): 0}})
    structure.set_weight("v", ("a",), 1)
    structure.set_weight("v", ("b",), 10)
    expr = Bracket(E("x", "y")) * Weight("v", ("x",)) * Weight("v", ("y",))
    with Database(structure) as db:
        q = db.prepare(expr, params=("x", "y"))
        table = q.group_by(NATURAL, rollup=True)
        # 4 base groups + 2 level-1 subtotals + 1 grand total.
        assert len(table) == 7
        assert table[("a", "a")] == 1 and table[("a", "b")] == 10
        assert table[("a", TOTAL)] == 11
        assert table[("b", TOTAL)] == 100
        assert table[(TOTAL, TOTAL)] == 111
        assert repr(TOTAL) == "TOTAL"


def test_explicit_keys_dedup_and_degenerate_cases():
    db, q = path_db()
    try:
        # Empty key list: an empty table (and no sweep at all).
        empty = q.group_by([], NATURAL)
        assert len(empty) == 0 and empty.stats["sweeps"] == 0
        # Single group, bare-element spelling for a 1-ary key.
        one = q.group_by([2], NATURAL)
        assert list(one) == [(2, 4)]
        # Duplicates evaluate and appear once.
        deduped = q.group_by([1, (1,), [1], 3], NATURAL)
        assert deduped.keys() == [(1,), (3,)]
        with pytest.raises(ValueError):
            q.group_by([(1, 2)], NATURAL)  # arity mismatch
    finally:
        db.close()


def test_group_by_argument_errors():
    db, q = path_db()
    try:
        with pytest.raises(TypeError):
            q.group_by()  # no semiring
        closed = db.prepare(Sum(("x", "y"),
                                Bracket(E("x", "y")) * Weight("w", ("y",))))
        with pytest.raises(ValueError):
            closed.group_by(NATURAL)  # closed query: no grouping keys
        with pytest.raises(ValueError):
            q.group_by(NATURAL, max_groups=2)  # |domain|^1 = 4 > 2
    finally:
        db.close()


def test_group_batch_size_chunks_sweeps():
    db, q = path_db()
    try:
        table = q.group_by(NATURAL, group_batch_size=2)
        assert table.stats["sweeps"] == 2
        assert table.stats["groups"] == 4
        assert [table[x] for x in range(4)] == [2, 3, 4, 0]
    finally:
        db.close()


# -- cache coherence --------------------------------------------------------------


def test_group_entries_shared_with_bound_points():
    db, q = path_db()
    try:
        table = q.group_by(NATURAL)
        assert table.stats["cache_misses"] == 4
        # The sweep warmed the point-query cache...
        for x in range(4):
            assert q.bind(x).value(NATURAL) == table[x]
        # ...and the points keep the next sweep entirely warm.
        again = q.group_by(NATURAL)
        assert again.stats["cache_hits"] == 4
        assert again.stats["sweeps"] == 0
    finally:
        db.close()


def test_update_invalidates_only_touched_groups():
    db, q = path_db()
    try:
        before = q.group_by(NATURAL)
        assert before[0] == 2
        with db.update() as tx:
            tx.set_weight("w", (1,), 100)
        after = q.group_by(NATURAL)
        # w(1) only feeds group x=0 (the edge 0->1): one miss, three
        # carried-forward hits.
        assert after[0] == 100
        assert after.stats["cache_misses"] == 1
        assert after.stats["cache_hits"] == 3
        assert [after[x] for x in range(1, 4)] == [3, 4, 0]
    finally:
        db.close()


def test_relation_toggle_invalidates_only_reachable_groups():
    structure = Structure(
        domain=[0, 1, 2, 3],
        relations={"E": [(0, 1), (1, 2), (2, 3)], "S": [(0,), (2,)]},
        weights={"w": {(i,): i + 1 for i in range(4)}})
    expr = Sum(("y",), Bracket(E("x", "y") & Atom("S", ("y",)))
               * Weight("w", ("y",)))
    with Database(structure) as db:
        q = db.prepare(expr, params=("x",), dynamic=("S",))
        before = q.group_by(NATURAL)
        assert before[0] == 0
        with db.update() as tx:
            tx.set_relation("S", (1,), True)
        after = q.group_by(NATURAL)
        assert after[0] == 2
        # Toggling S(1) can only reach groups whose monomials contain
        # y=1 — the co-occurrence analysis keeps the rest warm.
        assert after.stats["cache_misses"] <= 2
        assert after.stats["cache_hits"] >= 2


def test_unrelated_weight_keeps_every_group_warm():
    structure = Structure(
        domain=[0, 1, 2],
        relations={"E": [(0, 1), (1, 2)]},
        weights={"w": {(i,): i + 1 for i in range(3)},
                 "other": {(0,): 5}})
    expr = Sum(("y",), Bracket(E("x", "y")) * Weight("w", ("y",)))
    with Database(structure) as db:
        q = db.prepare(expr, params=("x",))
        q.group_by(NATURAL)
        # A second prepared query *does* read "other": the write is
        # effective database-wide, yet q's groups all stay warm.
        other = db.prepare(Sum(("x",), Weight("other", ("x",))))
        assert other.value(NATURAL) == 5
        with db.update() as tx:
            tx.set_weight("other", (0,), 6)
        again = q.group_by(NATURAL)
        assert again.stats["cache_hits"] == 3
        assert again.stats["sweeps"] == 0
        assert other.value(NATURAL) == 6


# -- serving and sugar seams ------------------------------------------------------


def test_service_group_by():
    db, q = path_db()
    try:
        svc = db.serve(Sum(("y",), Bracket(E("x", "y"))
                           * Weight("w", ("y",))), NATURAL, params=("x",))
        table = svc.group_by()
        assert list(table) == [(0, 2), (1, 3), (2, 4), (3, 0)]
        assert table.columns == ("x", "value")
        svc.update_weight("w", (1,), 50)
        after = svc.group_by(having=lambda v: v > 0, rollup=True)
        assert after[0] == 50
        assert after[(TOTAL,)] == 50 + 3 + 4
        stats = svc.stats()
        assert stats["group_tables"] == 2
        assert stats["group_rows"] == 8
        # The untouched groups were carried across the epoch bump.
        assert stats["retagged"] >= 2
        with pytest.raises(ValueError):
            svc.group_by(max_groups=2)
    finally:
        db.close()


def test_select_sugar():
    db, q = path_db()
    try:
        expr = Sum(("y",), Bracket(E("x", "y")) * Weight("w", ("y",)))
        table = (db.select(expr)
                   .group_by("x")
                   .having(lambda v: v > 2)
                   .run(NATURAL))
        assert isinstance(table, ResultTable)
        assert list(table) == [(1, 3), (2, 4)]
        builder = db.select(expr).group_by("x", keys=[0, 1]).rollup()
        assert isinstance(builder, Select)
        rolled = builder.run(NATURAL)
        assert rolled[(TOTAL,)] == 2 + 3
        # Repeated runs reuse the prepared handle (and its warm cache).
        again = builder.run(NATURAL)
        assert again.stats["cache_hits"] == 2
        with pytest.raises(ValueError):
            db.select(expr).run(NATURAL)  # no group_by clause
        with pytest.raises(ValueError):
            db.select(expr).group_by()
    finally:
        db.close()


# -- satellite: ExecOptions group knobs -------------------------------------------


def test_exec_options_group_knobs_validated_eagerly():
    assert ExecOptions().group_batch_size is None
    assert ExecOptions(group_batch_size=8).group_batch_size == 8
    with pytest.raises(ValueError):
        ExecOptions(group_batch_size=0)
    with pytest.raises(ValueError):
        ExecOptions(max_groups=0)
    with pytest.raises(TypeError):
        ExecOptions().merged(group_size=8)  # typo'd knob fails loudly


# -- satellite: enumerate keyword migration ---------------------------------------


def enum_db():
    structure = Structure(domain=[0, 1, 2],
                          relations={"E": [(0, 1), (1, 2)],
                                     "S": [(0,), (1,), (2,)]})
    db = Database(structure)
    return db, db.prepare(E("x", "y") & Atom("S", ("x",)), dynamic=("S",))


def test_enumerate_positional_dynamic_is_deprecated():
    db, q = enum_db()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            answers = sorted(q.enumerate(["S"]))
        assert answers == [(0, 1), (1, 2)]
        deprecations = [entry for entry in caught
                        if issubclass(entry.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "enumerate" in str(deprecations[0].message)
    finally:
        db.close()


def test_enumerate_keyword_style_is_warning_free():
    db, q = enum_db()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            answers = sorted(q.enumerate(dynamic=["S"]))
            unopt = sorted(q.enumerate(optimize=False))
        assert answers == [(0, 1), (1, 2)]
        assert unopt == answers
        assert not [entry for entry in caught
                    if issubclass(entry.category, DeprecationWarning)]
        with pytest.raises(TypeError):
            q.enumerate(["S"], dynamic=["S"])
        with pytest.raises(TypeError):
            q.enumerate(bogus_option=1)
    finally:
        db.close()


# -- satellite: per-stage compile timings -----------------------------------------


def test_compile_stage_timings_surface():
    db, q = path_db()
    try:
        closed = db.prepare(Sum(("x", "y"),
                                Bracket(E("x", "y")) * Weight("w", ("y",))))
        stats = closed.stats()
        stages = stats["compile_stages"]
        for stage in ("normalize", "forests", "forest_compiler"):
            assert stages[stage] >= 0.0
        assert "optimize" in stages  # optimize=True is the default
        assert "compile stages:" in closed.explain()
        # Plan-cache hits rebind the original compilation — the stage
        # timings (of the one compile that happened) travel with it.
        twin = db.prepare(Sum(("x", "y"),
                              Bracket(E("x", "y")) * Weight("w", ("y",))))
        assert twin.stats()["compile_stages"] == stages
    finally:
        db.close()


def test_group_by_telemetry_in_stats_and_explain():
    db, q = path_db()
    try:
        q.group_by(NATURAL)
        stats = q.stats()
        assert stats["group_by"]["groups"] == 4
        assert stats["group_by"]["sweeps"] == 1
        assert stats["group_by"]["sweep_shape"][1] == 4
        assert stats["group_by"]["kernel"]
        assert "last group_by: 4 group(s)" in q.explain()
    finally:
        db.close()


def test_boolean_group_by_uses_sweep():
    db, q = path_db()
    try:
        table = q.group_by(BOOLEAN)
        assert [table[x] for x in range(4)] == [True, True, True, False]
    finally:
        db.close()
