"""End-to-end Theorem 6/8 pipeline: correctness against the naive oracle."""

from __future__ import annotations

import random

import pytest

from repro.core import compile_structure_query, forest_from_structure
from repro.engine import WeightedQueryEngine
from repro.graphs import (cycle_graph, path_graph, random_tree, star_graph,
                          triangulated_grid)
from repro.logic import (Atom, Bracket, Eq, StructureModel, Sum, WConst,
                         Weight, eval_expression, neq)
from repro.semirings import BOOLEAN, INTEGER, MIN_PLUS, NATURAL
from repro.structures import graph_structure

from tests.util import weighted_graph_structure

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

TRIANGLE = Sum(("x", "y", "z"),
               Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
               * w("x", "y") * w("y", "z") * w("z", "x"))
TRIANGLE_COUNT = Sum(("x", "y", "z"),
                     Bracket(E("x", "y") & E("y", "z") & E("z", "x")))
PATH2 = Sum(("x", "y", "z"),
            Bracket(E("x", "y") & E("y", "z") & neq("x", "z"))
            * w("x", "y") * w("y", "z"))
EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))
NON_EDGES = Sum(("x", "y"), Bracket(~E("x", "y") & ~Eq("x", "y")))

GRAPH_CASES = {
    "tri3x3": triangulated_grid(3, 3),
    "path8": path_graph(8),
    "cycle7": cycle_graph(7),
    "star8": star_graph(8),
    "tree12": random_tree(12, seed=6),
}


@pytest.mark.parametrize("graph_name", list(GRAPH_CASES))
@pytest.mark.parametrize("expr_name,expr", [
    ("triangle", TRIANGLE), ("path2", PATH2), ("edges", EDGE_SUM)])
def test_weighted_queries_match_naive(graph_name, expr_name, expr):
    structure = weighted_graph_structure(GRAPH_CASES[graph_name], seed=3)
    compiled = compile_structure_query(structure, expr)
    for sr in (NATURAL, INTEGER, MIN_PLUS):
        expected = eval_expression(expr, StructureModel(structure, sr.zero),
                                   sr)
        assert sr.eq(compiled.evaluate(sr), expected), (graph_name,
                                                        expr_name, sr.name)


@pytest.mark.parametrize("graph_name", ["tri3x3", "path8", "star8"])
def test_counting_and_boolean(graph_name):
    structure = graph_structure(GRAPH_CASES[graph_name])
    compiled = compile_structure_query(structure, TRIANGLE_COUNT)
    expected = eval_expression(TRIANGLE_COUNT,
                               StructureModel(structure, 0), NATURAL)
    assert compiled.evaluate(NATURAL) == expected
    assert compiled.evaluate(BOOLEAN) == (expected > 0)


def test_negated_relation_query():
    structure = graph_structure(path_graph(6))
    compiled = compile_structure_query(structure, NON_EDGES)
    expected = eval_expression(NON_EDGES, StructureModel(structure, 0),
                               NATURAL)
    assert compiled.evaluate(NATURAL) == expected


def test_exactness_for_any_coloring():
    """Lemma 35's decomposition is exact even for an adversarial coloring."""
    structure = weighted_graph_structure(triangulated_grid(3, 3), seed=1)
    rng = random.Random(0)
    bad_coloring = {v: rng.randrange(3) for v in structure.domain}
    compiled = compile_structure_query(structure, TRIANGLE,
                                       coloring=bad_coloring)
    expected = eval_expression(TRIANGLE, StructureModel(structure, 0),
                               NATURAL)
    assert compiled.evaluate(NATURAL) == expected


def test_dynamic_weight_updates():
    structure = weighted_graph_structure(triangulated_grid(3, 3), seed=2)
    compiled = compile_structure_query(structure, TRIANGLE)
    dynamic = compiled.dynamic(INTEGER)
    rng = random.Random(7)
    edges = sorted(structure.relations["E"])
    for _ in range(15):
        edge = rng.choice(edges)
        value = rng.randint(0, 5)
        dynamic.update_weight("w", edge, value)
        expected = eval_expression(TRIANGLE, StructureModel(structure, 0),
                                   INTEGER)
        assert dynamic.value() == expected


def test_dynamic_updates_reject_undeclared_tuples():
    structure = weighted_graph_structure(path_graph(5), seed=0)
    compiled = compile_structure_query(structure, EDGE_SUM)
    dynamic = compiled.dynamic(INTEGER)
    with pytest.raises(KeyError):
        dynamic.update_weight("w", (0, 4), 3)


def test_dynamic_relation_updates_value():
    structure = graph_structure(triangulated_grid(3, 3))
    for v in structure.domain:
        structure.add_tuple("S", (v,))
    expr = Sum(("x", "y"),
               Bracket(E("x", "y") & Atom("S", ("x",)) & ~Atom("S", ("y",))))
    compiled = compile_structure_query(structure, expr,
                                       dynamic_relations=("S",))
    dynamic = compiled.dynamic(NATURAL)
    rng = random.Random(3)
    for _ in range(12):
        v = rng.choice(structure.domain)
        dynamic.set_relation("S", (v,), rng.random() < 0.5)
        expected = eval_expression(expr, StructureModel(structure, 0),
                                   NATURAL)
        assert dynamic.value() == expected


def test_stats_report_theorem6_quantities(small_grid_structure):
    compiled = compile_structure_query(small_grid_structure, TRIANGLE)
    stats = compiled.stats()
    assert stats["gates"] > 0
    assert stats["max_perm_rows"] <= 3
    assert stats["colors"] >= 1 and stats["color_subsets"] >= 1
    assert stats["depth"] <= 2 * stats["max_forest_height"] + 4


def test_forest_from_structure_chain_encoding():
    structure = weighted_graph_structure(triangulated_grid(3, 3), seed=5)
    forest = forest_from_structure(structure)
    # Every stored edge decodes back from its reltup label.
    count = 0
    for key, nodes in forest.labels.items():
        if isinstance(key, tuple) and key[0] == "reltup":
            _, name, depths = key
            for node in nodes:
                tup = tuple(forest.ancestor(node, d) for d in depths)
                assert structure.has_tuple(name, tup)
                count += 1
    assert count == len(structure.relations["E"])


def test_unary_relations_and_weights():
    structure = graph_structure(path_graph(6))
    rng = random.Random(1)
    for v in structure.domain:
        if rng.random() < 0.5:
            structure.add_tuple("R", (v,))
        structure.set_weight("u", (v,), rng.randint(0, 3))
    expr = Sum("x", Bracket(Atom("R", ("x",))) * Weight("u", ("x",)))
    compiled = compile_structure_query(structure, expr)
    expected = eval_expression(expr, StructureModel(structure, 0), NATURAL)
    assert compiled.evaluate(NATURAL) == expected


def test_empty_structure():
    structure = graph_structure(path_graph(0))
    compiled = compile_structure_query(structure, EDGE_SUM + WConst(2))
    assert compiled.evaluate(NATURAL) == 2


class TestEngine:
    def test_free_variable_queries(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=4)
        expr = Sum("y", Bracket(E("x", "y")) * w("x", "y"))
        engine = WeightedQueryEngine(structure, expr, INTEGER)
        model = StructureModel(structure, 0)
        for v in structure.domain[:6]:
            expected = eval_expression(expr, model, INTEGER, {"x": v})
            assert engine.query(v) == expected

    def test_query_then_update_then_query(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=4)
        expr = Sum("y", Bracket(E("x", "y")) * w("x", "y"))
        engine = WeightedQueryEngine(structure, expr, INTEGER)
        v = structure.domain[0]
        before = engine.query(v)
        edge = next(iter(e for e in structure.relations["E"] if e[0] == v))
        engine.update_weight("w", edge, structure.weight("w", edge) + 10)
        assert engine.query(v) == before + 10

    def test_minplus_queries_need_log_strategy(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=9)
        expr = Sum(("y", "z"),
                   Bracket(E("x", "y") & E("y", "z") & E("z", "x"))
                   * w("x", "y") * w("y", "z") * w("z", "x"))
        engine = WeightedQueryEngine(structure, expr, MIN_PLUS)
        model = StructureModel(structure, MIN_PLUS.zero)
        for v in structure.domain[:4]:
            expected = eval_expression(expr, model, MIN_PLUS, {"x": v})
            assert MIN_PLUS.eq(engine.query(v), expected)

    def test_two_free_variables(self):
        structure = weighted_graph_structure(path_graph(6), seed=2)
        expr = Bracket(E("x", "y")) * w("x", "y")
        engine = WeightedQueryEngine(structure, expr, INTEGER,
                                     free_order=("x", "y"))
        model = StructureModel(structure, 0)
        for a in structure.domain[:3]:
            for b in structure.domain[:3]:
                expected = eval_expression(expr, model, INTEGER,
                                           {"x": a, "y": b})
                assert engine.query(a, b) == expected

    def test_closed_value_and_errors(self):
        structure = weighted_graph_structure(path_graph(4), seed=0)
        engine = WeightedQueryEngine(structure, EDGE_SUM, NATURAL)
        assert engine.value() == eval_expression(
            EDGE_SUM, StructureModel(structure, 0), NATURAL)
        open_engine = WeightedQueryEngine(
            structure, Sum("y", Bracket(E("x", "y"))), NATURAL)
        with pytest.raises(ValueError):
            open_engine.value()
        with pytest.raises(ValueError):
            open_engine.query()

    def test_query_batch_matches_pointwise(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=4)
        expr = Sum("y", Bracket(E("x", "y")) * w("x", "y"))
        engine = WeightedQueryEngine(structure, expr, INTEGER)
        probes = structure.domain[:6]
        batched = engine.query_batch([(v,) for v in probes])
        assert batched == [engine.query(v) for v in probes]
        # A weight update must be visible to subsequent batches.
        edge = next(iter(structure.relations["E"]))
        engine.update_weight("w", edge, structure.weight("w", edge) + 10)
        assert engine.query_batch([(v,) for v in probes]) \
            == [engine.query(v) for v in probes]

    def test_query_batch_arity_checked(self):
        structure = weighted_graph_structure(path_graph(4), seed=0)
        engine = WeightedQueryEngine(
            structure, Sum("y", Bracket(E("x", "y"))), NATURAL)
        with pytest.raises(ValueError):
            engine.query_batch([(structure.domain[0], structure.domain[1])])


class TestOptimizedPipeline:
    @pytest.mark.parametrize("graph_name", ["tri3x3", "cycle7", "tree12"])
    @pytest.mark.parametrize("expr_name,expr", [
        ("triangle", TRIANGLE), ("path2", PATH2), ("edges", EDGE_SUM)])
    def test_optimize_flag_preserves_values(self, graph_name, expr_name,
                                            expr):
        structure = weighted_graph_structure(GRAPH_CASES[graph_name], seed=3)
        raw = compile_structure_query(structure, expr, optimize=False)
        opt = compile_structure_query(structure, expr, optimize=True)
        assert opt.stats()["size"] <= raw.stats()["size"]
        for sr in (NATURAL, INTEGER, MIN_PLUS, BOOLEAN):
            assert sr.eq(opt.evaluate(sr), raw.evaluate(sr)), \
                (graph_name, expr_name, sr.name)

    def test_dynamic_updates_on_optimized_circuit(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=7)
        compiled = compile_structure_query(structure, TRIANGLE,
                                           optimize=True)
        dynamic = compiled.dynamic(NATURAL)
        rng = random.Random(11)
        edges = sorted(structure.relations["E"])
        for _ in range(8):
            edge = rng.choice(edges)
            dynamic.update_weight("w", edge, rng.randint(0, 9))
            expected = eval_expression(
                TRIANGLE, StructureModel(structure, 0), NATURAL)
            assert dynamic.value() == expected

    def test_evaluate_batch_weight_overrides(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=7)
        compiled = compile_structure_query(structure, TRIANGLE)
        edges = sorted(structure.relations["E"])[:4]
        valuations = [{}] + [{("w", "w", edge): 0} for edge in edges]
        batched = compiled.evaluate_batch(NATURAL, valuations)
        assert batched[0] == compiled.evaluate(NATURAL)
        for edge, value in zip(edges, batched[1:]):
            old = structure.weight("w", edge)
            structure.set_weight("w", edge, 0)
            expected = eval_expression(
                TRIANGLE, StructureModel(structure, 0), NATURAL)
            structure.set_weight("w", edge, old)
            assert value == expected
