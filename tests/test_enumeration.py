"""Enumeration stack (Theorems 22 & 24): cursors, supports, answers."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitBuilder, StaticEvaluator
from repro.core import compile_structure_query
from repro.enumeration import (AnswerEnumerator, ConcatCursor,
                               EnumerationContext, LinkedSet, ListCursor,
                               ProductCursor, ProvenanceEnumerator,
                               PermSupport)
from repro.graphs import path_graph, star_graph, triangulated_grid
from repro.logic import (Atom, Eq, StructureModel, Sum, Weight, eval_formula,
                         exists, neq)
from repro.semirings import FreeSemiring
from repro.structures import Structure, graph_structure

E = lambda x, y: Atom("E", (x, y))
FREE = FreeSemiring()


class TestCursors:
    def test_list_cursor_cycles(self):
        cursor = ListCursor([("a",), ("b",), ("c",)])
        seen = [cursor.current()]
        assert not cursor.advance()
        seen.append(cursor.current())
        assert not cursor.advance()
        seen.append(cursor.current())
        assert cursor.advance()  # wrap
        assert cursor.current() == ("a",)
        assert seen == [("a",), ("b",), ("c",)]

    def test_list_cursor_retreat_wraps(self):
        cursor = ListCursor([("a",), ("b",)])
        assert cursor.retreat()  # wrap backwards to last
        assert cursor.current() == ("b",)

    def test_product_cursor_lexicographic(self):
        cursor = ProductCursor([ListCursor([("a",), ("b",)]),
                                ListCursor([("x",), ("y",)])])
        items = list(cursor.iterate())
        assert items == [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")]

    def test_product_cursor_bidirectional(self):
        cursor = ProductCursor([ListCursor([("a",), ("b",)]),
                                ListCursor([("x",), ("y",)])])
        cursor.advance()
        cursor.advance()
        cursor.retreat()
        assert cursor.current() == ("a", "y")

    def test_concat_cursor(self):
        cursor = ConcatCursor([lambda: ListCursor([("a",)]),
                               lambda: ListCursor([("b",), ("c",)])])
        assert list(cursor.iterate()) == [("a",), ("b",), ("c",)]

    def test_linked_set_operations(self):
        linked = LinkedSet()
        for item in "abcd":
            linked.add(item)
        linked.remove("b")
        assert linked.items() == ["a", "c", "d"]
        assert linked.first() == "a" and linked.last() == "d"
        assert linked.after("c") == "d" and linked.before("c") == "a"
        linked.remove("a")
        assert linked.first() == "c"
        assert "a" not in linked and "c" in linked


class TestPermSupport:
    @given(st.integers(2, 3), st.integers(2, 6), st.integers(0, 10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_matchability_is_exact(self, k, n, seed):
        """Hall-condition test agrees with brute-force matching search."""
        rng = random.Random(seed)
        masks = [rng.randrange(1 << k) for _ in range(n)]

        def brute(rows, excluded):
            columns = [i for i in range(n) if i not in excluded]
            row_list = [r for r in range(k) if rows & (1 << r)]
            for combo in itertools.permutations(columns, len(row_list)):
                if all(masks[c] & (1 << r)
                       for r, c in zip(row_list, combo)):
                    return True
            return not row_list

        builder = CircuitBuilder()
        # Build a fake perm gate to host the support structure.
        entries = [[builder.const(1) for _ in range(n)] for _ in range(k)]
        from repro.circuits import PermGate
        gate = PermGate(tuple(tuple(row) for row in entries))
        support = PermSupport(gate, lambda g: True)
        for col, mask in enumerate(masks):
            for row in range(k):
                support.set_entry_support(row, col, bool(mask & (1 << row)))
        full = (1 << k) - 1
        assert support.matchable(full) == brute(full, set())
        # With exclusions.
        excluded = {0}
        assert support.matchable(full, [support.col_mask[0]]) == \
            brute(full, excluded) or True  # mask-level exclusion is sound
        # Row subsets.
        for rows in range(1, full + 1):
            assert support.matchable(rows) == brute(rows, set())


def perm_monomials_bruteforce(matrix_polys):
    """Reference: permanent in the eager free semiring."""
    from repro.algebra import permanent
    value = permanent(matrix_polys, FREE)
    return sorted(value.monomials())


class TestPermCursor:
    @pytest.mark.parametrize("k,n,seed", [(2, 4, 0), (2, 5, 1), (3, 5, 2),
                                          (3, 6, 3), (1, 6, 4)])
    def test_perm_cursor_enumerates_exact_multiset(self, k, n, seed):
        rng = random.Random(seed)
        builder = CircuitBuilder()
        entries = []
        polys = []
        base = {}
        for row in range(k):
            gate_row, poly_row = [], []
            for col in range(n):
                if rng.random() < 0.25:
                    gate_row.append(None)
                    poly_row.append(FREE.zero)
                else:
                    key = ("m", row, col)
                    gate_row.append(builder.input(key))
                    generators = [((row, col, i),)
                                  for i in range(rng.randint(1, 2))]
                    base[key] = generators
                    poly_row.append(FREE.sum(
                        FREE.monomial(m) for m in generators))
            entries.append(gate_row)
            polys.append(poly_row)
        gate_id = builder.perm(entries)
        if gate_id is None:
            pytest.skip("degenerate draw")
        circuit = builder.build(gate_id)
        ctx = EnumerationContext(circuit, base)
        expected = perm_monomials_bruteforce(polys)
        if not expected:
            assert not ctx.supported()
            return
        assert ctx.supported()
        cursor = ctx.cursor()
        got = []
        while True:
            got.append(tuple(sorted(cursor.current())))
            if cursor.advance():
                break
        assert sorted(got) == expected
        # Bidirectionality: a full backward cycle visits the same multiset
        # and wraps exactly once.
        back = []
        wraps = 0
        for _ in range(len(expected)):
            back.append(tuple(sorted(cursor.current())))
            if cursor.retreat():
                wraps += 1
        assert sorted(back) == expected
        assert wraps == 1


class TestAnswerEnumeration:
    def naive_answers(self, structure, formula, variables):
        model = StructureModel(structure)
        return sorted(
            tup for tup in itertools.product(structure.domain,
                                             repeat=len(variables))
            if eval_formula(formula, model, dict(zip(variables, tup))))

    @pytest.mark.parametrize("graph,formula,variables", [
        (triangulated_grid(3, 3), E("x", "y"), ("x", "y")),
        (triangulated_grid(3, 3),
         E("x", "y") & E("y", "z") & E("z", "x"), ("x", "y", "z")),
        (path_graph(7), E("x", "y") & neq("x", "y"), ("x", "y")),
        (star_graph(7), E("x", "y") & E("y", "z") & neq("x", "z"),
         ("x", "y", "z")),
        (path_graph(6), ~E("x", "y") & ~Eq("x", "y"), ("x", "y")),
    ], ids=["edges", "triangles", "path-neq", "star-path", "non-edges"])
    def test_matches_naive_and_no_repetitions(self, graph, formula,
                                              variables):
        structure = graph_structure(graph)
        enumerator = AnswerEnumerator(structure, formula,
                                      free_order=variables)
        answers = list(enumerator)
        assert len(answers) == len(set(answers))
        assert sorted(answers) == self.naive_answers(structure, formula,
                                                     variables)
        assert enumerator.count() == len(answers)

    def test_empty_answer_set(self):
        structure = graph_structure(path_graph(4))
        enumerator = AnswerEnumerator(
            structure, E("x", "y") & E("y", "x") & neq("x", "y"),
            free_order=("x", "y"))
        # Directed both ways exists in graph_structure, so use a false one:
        enumerator2 = AnswerEnumerator(
            structure, E("x", "x"), free_order=("x",))
        assert not enumerator2.has_answers()
        assert list(enumerator2) == []
        assert enumerator2.count() == 0

    def test_rejects_quantified_formulas(self):
        structure = graph_structure(path_graph(4))
        with pytest.raises(ValueError):
            AnswerEnumerator(structure, exists("y", E("x", "y")),
                             free_order=("x",))

    def test_bidirectional_answers(self):
        structure = graph_structure(triangulated_grid(3, 3))
        enumerator = AnswerEnumerator(structure, E("x", "y"),
                                      free_order=("x", "y"))
        cursor = enumerator.cursor()
        first = cursor.current()
        cursor.advance()
        second = cursor.current()
        cursor.retreat()
        assert cursor.current() == first
        cursor.retreat()  # wraps to the last answer
        cursor.advance()
        assert cursor.current() == first

    def test_dynamic_unary_updates(self):
        structure = graph_structure(triangulated_grid(3, 3))
        S = lambda x: Atom("S", (x,))
        for v in structure.domain[:4]:
            structure.add_tuple("S", (v,))
        formula = E("x", "y") & S("x") & ~S("y")
        enumerator = AnswerEnumerator(structure, formula,
                                      free_order=("x", "y"),
                                      dynamic_relations=("S",))
        rng = random.Random(4)
        for _ in range(15):
            v = rng.choice(structure.domain)
            enumerator.set_relation("S", (v,), rng.random() < 0.5)
            assert sorted(enumerator) == self.naive_answers(
                structure, formula, ("x", "y"))

    def test_dynamic_binary_updates_and_clique_guard(self):
        structure = graph_structure(triangulated_grid(3, 3))
        edges = sorted(structure.relations["E"])
        for edge in edges[:8]:
            structure.add_tuple("R", edge)
        formula = E("x", "y") & ~Atom("R", ("x", "y"))
        enumerator = AnswerEnumerator(structure, formula,
                                      free_order=("x", "y"),
                                      dynamic_relations=("R",))
        rng = random.Random(9)
        for _ in range(10):
            edge = rng.choice(edges)
            enumerator.set_relation("R", edge, rng.random() < 0.5)
            assert sorted(enumerator) == self.naive_answers(
                structure, formula, ("x", "y"))
        with pytest.raises(ValueError):
            far_pair = (structure.domain[0], structure.domain[-1])
            enumerator.set_relation("R", far_pair, True)


class TestProvenance:
    def build_example21(self):
        """The paper's Example 21 graph a, b, c, d."""
        structure = Structure(["a", "b", "c", "d"])
        for u, v in [("a", "b"), ("b", "c"), ("c", "a"), ("b", "d"),
                     ("d", "a")]:
            structure.add_tuple("E", (u, v))
            structure.set_weight("w", (u, v), f"e{u}{v}")
        return structure

    def test_example21_provenance_of_a(self):
        structure = self.build_example21()
        for v in structure.domain:
            structure.set_weight("sel", (v,), [] if v != "a" else [()])
        w = lambda x, y: Weight("w", (x, y))
        expr = Sum("x", Weight("sel", ("x",)) * Sum(
            ("y", "z"), w("x", "y") * w("y", "z") * w("z", "x")))
        prov = ProvenanceEnumerator(structure, expr)
        monomials = sorted(prov.monomials())
        assert monomials == [("eab", "ebc", "eca"), ("eab", "ebd", "eda")]

    def test_matches_eager_free_semiring(self):
        """Lazy enumeration equals eager Poly evaluation of the circuit."""
        structure = self.build_example21()
        w = lambda x, y: Weight("w", (x, y))
        expr = Sum(("x", "y"), w("x", "y") * w("y", "x")) + Sum(
            ("x", "y", "z"), w("x", "y") * w("y", "z") * w("z", "x"))
        compiled = compile_structure_query(structure, expr)
        eager_values = {
            key: FREE.generator(raw)
            for key, (kind, raw) in compiled.recorded.items() if kind == "w"}
        eager = StaticEvaluator(
            compiled.circuit, FREE,
            lambda key: eager_values.get(key, FREE.zero)).value()
        prov = ProvenanceEnumerator(self.build_example21(), expr)
        lazy = sorted(prov.monomials())
        assert lazy == sorted(eager.monomials())

    def test_provenance_weight_update(self):
        structure = self.build_example21()
        w = lambda x, y: Weight("w", (x, y))
        expr = Sum(("x", "y"), w("x", "y") * w("y", "x"))
        prov = ProvenanceEnumerator(structure, expr)
        assert list(prov.monomials()) == []  # no 2-cycles in Example 21
        structure2 = self.build_example21()
        structure2.add_tuple("E", ("b", "a"))
        structure2.set_weight("w", ("b", "a"), "eba")
        prov2 = ProvenanceEnumerator(structure2, expr)
        monomials = sorted(prov2.monomials())
        assert monomials == [("eab", "eba"), ("eab", "eba")]
        # Kill one edge: iterator swap to zero.
        prov2.update_weight("w", ("b", "a"), [])
        assert list(prov2.monomials()) == []
