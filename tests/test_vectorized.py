"""Vectorized (NumPy) backend: equivalence with the pure-Python backend,
fallback behaviour for semirings without an array carrier, and batch edge
cases (empty batch, single valuation, thread-sharded sweeps)."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.circuits import (HAVE_NUMPY, BatchedEvaluator, kernel_for,
                            valuation_from_dict)
from repro.core import compile_structure_query
from repro.engine import WeightedQueryEngine
from repro.graphs import path_graph, triangulated_grid
from repro.logic import Atom, Bracket, Sum, Weight
from repro.semirings import (BOOLEAN, FLOAT, INF, INTEGER, MAX_PLUS, MIN_MAX,
                             MIN_PLUS, NATURAL, RATIONAL, FreeSemiring,
                             ModularRing, ProductSemiring)

from tests.test_schedule import random_circuit
from tests.util import weighted_graph_structure

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

E = lambda x, y: Atom("E", (x, y))
w = lambda x, y: Weight("w", (x, y))

EDGE_SUM = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))

#: (id, semiring, random carrier element) for every array-carried semiring.
ARRAY_CASES = [
    ("N", NATURAL, lambda rng: rng.randint(0, 5)),
    ("Z", INTEGER, lambda rng: rng.randint(-5, 5)),
    ("Q", RATIONAL,
     lambda rng: Fraction(rng.randint(-4, 4), rng.randint(1, 5))),
    ("float", FLOAT, lambda rng: round(rng.uniform(-2.0, 2.0), 3)),
    ("min-plus", MIN_PLUS,
     lambda rng: INF if rng.random() < 0.2 else rng.randint(0, 9)),
    ("max-plus", MAX_PLUS,
     lambda rng: -INF if rng.random() < 0.2 else rng.randint(0, 9)),
    ("min-max", MIN_MAX,
     lambda rng: INF if rng.random() < 0.2 else rng.randint(0, 9)),
]

FALLBACK_SEMIRINGS = [BOOLEAN, ModularRing(5), FreeSemiring(),
                      ProductSemiring(INTEGER, BOOLEAN)]


def array_params():
    return pytest.mark.parametrize(
        "sr,element", [(sr, element) for _, sr, element in ARRAY_CASES],
        ids=[name for name, _, _ in ARRAY_CASES])


def random_valuations(circuit, sr, element, seed, batch):
    rng = random.Random(seed)
    keys = sorted(circuit.inputs, key=repr)
    return [valuation_from_dict({key: element(rng) for key in keys}, sr.zero)
            for _ in range(batch)]


def assert_rows_equal(sr, got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert sr.eq(a, b), (sr.name, a, b)


@needs_numpy
class TestEquivalence:
    @array_params()
    @pytest.mark.parametrize("seed", range(4))
    def test_random_circuits(self, sr, element, seed):
        from repro.circuits import VectorizedEvaluator
        circuit = random_circuit(seed)
        valuations = random_valuations(circuit, sr, element, seed + 17,
                                       batch=7)
        expected = BatchedEvaluator(circuit, sr, valuations).results()
        got = VectorizedEvaluator(circuit, sr, valuations).results()
        assert_rows_equal(sr, got, expected)

    @array_params()
    def test_from_overrides_matches_callables(self, sr, element):
        from repro.circuits import VectorizedEvaluator
        circuit = random_circuit(11)
        rng = random.Random(42)
        keys = sorted(circuit.inputs, key=repr)
        base = {key: element(rng) for key in keys}
        overrides = [{key: element(rng)
                      for key in rng.sample(keys, 3)} for _ in range(5)]
        overrides.append({})  # no-edit row reproduces the base valuation
        evaluator = VectorizedEvaluator.from_overrides(circuit, sr, base,
                                                       overrides)
        expected = BatchedEvaluator(circuit, sr, [
            valuation_from_dict({**base, **override}, sr.zero)
            for override in overrides]).results()
        assert_rows_equal(sr, evaluator.results(), expected)
        for index in range(len(overrides)):
            assert sr.eq(evaluator.value(index), expected[index])

    def test_values_of_interior_gate(self):
        from repro.circuits import VectorizedEvaluator
        circuit = random_circuit(3)
        valuations = random_valuations(circuit, NATURAL,
                                       lambda rng: rng.randint(0, 4), 5, 4)
        batched = BatchedEvaluator(circuit, NATURAL, valuations)
        vectorized = VectorizedEvaluator(circuit, NATURAL, valuations)
        for gate_id in circuit.live_gates():
            assert vectorized.values_of(gate_id) == batched.values_of(gate_id)
        with pytest.raises(KeyError):
            dead = next(g for g in range(len(circuit.gates))
                        if g not in set(circuit.live_gates()))
            vectorized.values_of(dead)

    @pytest.mark.parametrize("batch", [0, 1])
    def test_edge_batches(self, batch):
        from repro.circuits import VectorizedEvaluator
        circuit = random_circuit(8)
        for sr, element in ((NATURAL, lambda rng: rng.randint(0, 4)),
                            (MIN_PLUS, lambda rng: rng.randint(0, 9))):
            valuations = random_valuations(circuit, sr, element, 1, batch)
            got = VectorizedEvaluator(circuit, sr, valuations).results()
            expected = BatchedEvaluator(circuit, sr, valuations).results()
            assert_rows_equal(sr, got, expected)


@needs_numpy
class TestCompiledBackends:
    def test_backend_equivalence_on_compiled_query(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=2)
        compiled = compile_structure_query(structure, EDGE_SUM)
        edges = sorted(structure.relations["E"])
        rng = random.Random(0)
        batch = [{("w", "w", rng.choice(edges)): rng.randint(1, 9)}
                 for _ in range(9)] + [{}]
        python = compiled.evaluate_batch(NATURAL, batch, backend="python")
        numpy_ = compiled.evaluate_batch(NATURAL, batch, backend="numpy")
        auto = compiled.evaluate_batch(NATURAL, batch)
        assert python == numpy_ == auto
        assert python[-1] == compiled.evaluate(NATURAL)

    def test_callable_valuations_take_generic_path(self):
        structure = weighted_graph_structure(path_graph(6), seed=3)
        compiled = compile_structure_query(structure, EDGE_SUM)
        base = compiled.input_valuation(NATURAL)
        fns = [lambda key, _o=dict(base): _o.get(key, 0), lambda key: 0]
        assert compiled.evaluate_batch(NATURAL, fns, backend="numpy") \
            == compiled.evaluate_batch(NATURAL, fns, backend="python")

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_workers_shard_equivalently(self, backend):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=6)
        compiled = compile_structure_query(structure, EDGE_SUM)
        edges = sorted(structure.relations["E"])
        rng = random.Random(4)
        batch = [{("w", "w", rng.choice(edges)): rng.randint(1, 9)}
                 for _ in range(13)]
        serial = compiled.evaluate_batch(NATURAL, batch, backend=backend)
        sharded = compiled.evaluate_batch(NATURAL, batch, backend=backend,
                                          workers=4)
        assert serial == sharded

    def test_unknown_backend_rejected(self):
        structure = weighted_graph_structure(path_graph(4), seed=0)
        compiled = compile_structure_query(structure, EDGE_SUM)
        with pytest.raises(ValueError):
            compiled.evaluate_batch(NATURAL, [{}], backend="fortran")

    def test_engine_query_batch_backends_agree(self):
        structure = weighted_graph_structure(triangulated_grid(3, 3), seed=4)
        expr = Sum("y", Bracket(E("x", "y")) * w("x", "y"))
        with WeightedQueryEngine(structure, expr, INTEGER) as engine:
            probes = [(v,) for v in structure.domain[:7]]
            python = engine.query_batch(probes, backend="python")
            numpy_ = engine.query_batch(probes, backend="numpy")
            assert python == numpy_
            assert python == [engine.query(*probe) for probe in probes]


class TestFallback:
    @pytest.mark.parametrize("sr", FALLBACK_SEMIRINGS,
                             ids=[sr.name for sr in FALLBACK_SEMIRINGS])
    def test_no_kernel_for_non_array_semirings(self, sr):
        assert kernel_for(sr) is None

    def test_auto_falls_back_to_python(self):
        structure = weighted_graph_structure(
            path_graph(6), seed=1, conv=lambda v: v > 0)
        compiled = compile_structure_query(structure, EDGE_SUM)
        edges = sorted(structure.relations["E"])
        batch = [{("w", "w", edges[0]): False}, {}]
        auto = compiled.evaluate_batch(BOOLEAN, batch)
        python = compiled.evaluate_batch(BOOLEAN, batch, backend="python")
        assert auto == python
        assert auto[-1] == compiled.evaluate(BOOLEAN)

    @needs_numpy
    def test_explicit_numpy_backend_raises_without_kernel(self):
        structure = weighted_graph_structure(path_graph(4), seed=0)
        compiled = compile_structure_query(structure, EDGE_SUM)
        with pytest.raises(RuntimeError):
            compiled.evaluate_batch(BOOLEAN, [{}], backend="numpy")

    @needs_numpy
    def test_vectorized_evaluator_rejects_non_array_semiring(self):
        from repro.circuits import VectorizedEvaluator
        circuit = random_circuit(2)
        with pytest.raises(ValueError):
            VectorizedEvaluator(circuit, BOOLEAN, [])


@needs_numpy
def test_register_kernel_extension_point():
    import numpy as np

    from repro.circuits import VectorizedEvaluator
    from repro.circuits.vectorized import ArrayKernel, register_kernel
    from repro.semirings.boolean import BooleanSemiring

    class VectorBool(BooleanSemiring):
        name = "B-vec"

    register_kernel(VectorBool, lambda sr: ArrayKernel(
        name="bool", dtype=np.bool_, add_reduce=np.logical_or.reduce,
        mul_reduce=np.logical_and.reduce))
    sr = VectorBool()
    assert kernel_for(sr) is not None
    circuit = random_circuit(5)
    valuations = random_valuations(circuit, sr,
                                   lambda rng: rng.random() < 0.5, 9, 6)
    expected = BatchedEvaluator(circuit, sr, valuations).results()
    got = VectorizedEvaluator(circuit, sr, valuations).results()
    assert got == expected
