"""Structures, signatures, labeled forests, unary structures."""

from __future__ import annotations

import pytest

from repro.graphs import path_graph, triangulated_grid
from repro.structures import (LabeledForest, Signature, Structure,
                              graph_structure)
from repro.structures.unary import UnaryStructure


class TestSignature:
    def test_symbols_build_atoms(self):
        sig = Signature()
        E = sig.relation("E", 2)
        w = sig.weight("w", 2)
        atom = E("x", "y")
        weight = w("x", "y")
        assert atom.relation == "E" and weight.name == "w"
        with pytest.raises(ValueError):
            E("x")
        with pytest.raises(ValueError):
            sig.relation("E", 3)
        with pytest.raises(ValueError):
            sig.weight("E", 1)

    def test_build_helper(self):
        sig = Signature.build(relations=[("E", 2), ("R", 1)],
                              weights=[("w", 2)])
        assert sig.relations["E"].arity == 2
        assert sig.weights["w"].arity == 2


class TestStructure:
    def test_arity_enforcement(self):
        structure = Structure(range(5))
        structure.add_tuple("E", (0, 1))
        with pytest.raises(ValueError):
            structure.add_tuple("E", (0, 1, 2))
        with pytest.raises(ValueError):
            structure.add_tuple("E", (0, 99))

    def test_gaifman_graph_cliques(self):
        structure = Structure(range(4))
        structure.add_tuple("T", (0, 1, 2))
        gaifman = structure.gaifman()
        assert gaifman.is_clique([0, 1, 2])
        assert not gaifman.has_edge(0, 3)

    def test_gaifman_includes_weight_support(self):
        structure = Structure(range(3))
        structure.set_weight("w", (0, 2), 5)
        assert structure.gaifman().has_edge(0, 2)

    def test_validate_weight_support(self):
        structure = Structure(range(3))
        structure.add_tuple("E", (0, 1))
        structure.set_weight("w", (0, 1), 3)
        structure.validate()
        structure.set_weight("w", (1, 2), 4)
        with pytest.raises(ValueError):
            structure.validate()

    def test_graph_structure_directed(self):
        structure = graph_structure(path_graph(3))
        assert structure.has_tuple("E", (0, 1))
        assert structure.has_tuple("E", (1, 0))
        undirected = graph_structure(path_graph(3), directed=False)
        assert len(undirected.relations["E"]) == 2

    def test_size_and_copy(self):
        structure = graph_structure(triangulated_grid(2, 2))
        clone = structure.copy()
        clone.add_tuple("R", (clone.domain[0],))
        assert "R" not in structure.relations
        assert structure.size() > len(structure.domain)


class TestLabeledForest:
    def build(self):
        parent = {1: None, 2: 1, 3: 1, 4: 2, 5: 2}
        return LabeledForest(parent, labels={"R": {2, 4}},
                             weights={"w": {1: 10, 4: 2}})

    def test_depths_and_paths(self):
        forest = self.build()
        assert forest.depth == {1: 0, 2: 1, 3: 1, 4: 2, 5: 2}
        assert forest.path[4] == [1, 2, 4]
        assert forest.height() == 3

    def test_ancestors(self):
        forest = self.build()
        assert forest.ancestor(4, 0) == 1
        assert forest.ancestor(4, 5) is None
        assert forest.ancestor_up(4, 1) == 2
        assert forest.ancestor_up(4, 9) == 1  # saturates at the root

    def test_labels_and_weights(self):
        forest = self.build()
        assert forest.has_label("R", 2) and not forest.has_label("R", 3)
        forest.set_label("R", 3)
        assert forest.has_label("R", 3)
        forest.set_label("R", 3, present=False)
        assert not forest.has_label("R", 3)
        assert forest.weight("w", 1) == 10
        assert forest.weight("w", 5, zero=-1) == -1

    def test_bottom_up_order(self):
        forest = self.build()
        order = forest.bottom_up()
        position = {node: i for i, node in enumerate(order)}
        for node, par in forest.parent.items():
            if par is not None:
                assert position[node] < position[par]

    def test_cycle_detection(self):
        with pytest.raises(ValueError):
            LabeledForest({1: 2, 2: 1})


class TestUnaryStructure:
    def test_apply_and_restrict(self):
        unary = UnaryStructure(
            range(4), labels={"R": {0, 2}},
            functions={"f": {0: 1, 1: 1, 2: 3, 3: 3}},
            weights={"w": {0: 7}})
        assert unary.apply("f", 0) == 1
        assert unary.apply("f", 1) == 1   # stored identity (saturating)
        restricted = unary.restrict([0, 2, 3])
        assert restricted.apply("f", 0) is None  # arc to dropped node
        assert restricted.apply("f", 2) == 3
        assert restricted.has_label("R", 2)
        assert restricted.weight("w", 0) == 7

    def test_gaifman_skips_identity_arcs(self):
        unary = UnaryStructure(range(3),
                               functions={"f": {0: 1, 1: 1, 2: 2}})
        gaifman = unary.gaifman()
        assert gaifman.has_edge(0, 1)
        assert gaifman.degree(2) == 0
