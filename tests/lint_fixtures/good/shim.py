"""REP004 positive fixture: deprecation through the sanctioned seam."""

from repro._compat import warn_deprecated


def old_entry_point():
    warn_deprecated("old_entry_point(...)", "new_entry_point(...)")
    return 0
