"""REP001/REP002 positive fixture: the sanctioned lock discipline."""

import threading


class Facade:
    def __init__(self, db):
        self.db = db
        self._engine_lock = threading.RLock()
        self._engines = {}

    def engine(self, name):
        # Correct order: db._lock strictly before _engine_lock, both
        # via `with`.
        with self.db._lock:
            with self._engine_lock:
                return self._engines.get(name)

    def snapshot(self):
        with self.db._lock:
            return dict(self._engines)

    def engines_only(self):
        # Taking only the engine lock is fine — the inversion is
        # acquiring a *db* lock while an engine lock is held.
        with self._engine_lock:
            return list(self._engines)
