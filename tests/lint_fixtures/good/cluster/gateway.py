"""Positive fixture: cluster async paths that only await; sync facades
and dispatcher threads may block (REP006 scopes to `async def` only)."""

import asyncio
import time


class Gateway:
    async def query(self, future):
        return await asyncio.wait_for(asyncio.wrap_future(future), 1.0)

    def query_sync(self, future):
        # Blocking is the sync facade's contract (and it has a deadline).
        return future.result(1.0)

    def _dispatch(self, conn, message):
        # Dispatcher threads own the pipe round trips.
        conn.send_bytes(message)
        return conn.recv_bytes()

    def _backoff(self):
        async def make_plan():
            return None  # a nested coroutine inherits the async scope

        def blocking_helper(future):
            time.sleep(0)  # nested *sync* def: blocking is fine again
            return future.result()

        return make_plan, blocking_helper
