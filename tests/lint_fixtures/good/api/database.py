"""REP007 positive fixture: the update hot path reads only the O(1)
incrementally-maintained fingerprint; full rehashes appear outside the
hot-path function set (debug/verification seams), which is allowed."""


class Router:
    def __init__(self, db):
        self.db = db

    def _apply_write(self, name, tup, value):
        self.db.structure.set_weight(name, tup, value)
        # O(1): the digest was folded by the mutator.
        return self.db.structure.fingerprint()

    def verify_digest(self):
        # Not a hot-path function: verification may rehash.
        return self.db.structure.full_fingerprint()


class Transaction:
    def __init__(self, db):
        self.db = db

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.db._expected_fp = self.db.structure.fingerprint()
