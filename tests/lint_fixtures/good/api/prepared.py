"""REP003 positive fixture: an invalidation path that bumps the epoch."""


class PreparedQuery:
    def __init__(self, db):
        self.db = db
        self._plan = None

    def _invalidate(self):
        self._plan = None
        self.db._epoch += 1

    def refresh(self):
        # Not an invalidation path: the rule keys on the name.
        self._plan = None
