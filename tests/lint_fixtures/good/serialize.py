"""REP005 positive fixture: deterministic, pickle-free serialization."""

import hashlib
import json
import os
import threading


def cache_key(state):
    blob = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def tmp_name(path):
    # Process/thread ids are allowed: they make temp names unique but
    # never leak into stored bytes or keys.
    return f"{path}.{os.getpid()}.{threading.get_ident()}.tmp"
