"""REP005 negative fixture: pickle and nondeterminism in a store module."""

import pickle  # REP005
import time


def cache_key(state):
    return hash(repr(state))  # REP005: salted per process


def entry_name(state):
    return f"{cache_key(state)}-{time.time()}"  # REP005


def dump(state):
    return pickle.dumps(state)
