"""Negative fixture: blocking calls inside cluster `async def` (REP006)."""

import time


class Gateway:
    async def query(self, future):
        time.sleep(0.1)  # blocks the caller's event loop
        return future.result()  # bare wait, no deadline

    async def load(self, conn, message):
        conn.send_bytes(message)  # dispatcher-thread territory
        return conn.recv_bytes()
