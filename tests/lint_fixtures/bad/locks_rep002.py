"""REP002 negative fixture: bare acquire/release instead of `with`."""

import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self.jobs = []

    def push(self, job):
        self._lock.acquire()  # REP002
        try:
            self.jobs.append(job)
        finally:
            self._lock.release()  # REP002
