"""REP001 negative fixture: lock-order inversion (deadlock bait)."""

import threading


class Facade:
    def __init__(self, db):
        self.db = db
        self._engine_lock = threading.RLock()
        self._engines = {}

    def engine(self, name):
        # INVERTED: the engine lock is taken first, then the db lock —
        # the update router takes them the other way around.
        with self._engine_lock:
            with self.db._lock:  # REP001
                return self._engines.get(name)
