"""REP004 negative fixture: a direct DeprecationWarning."""

import warnings


def old_entry_point():
    warnings.warn("old_entry_point is deprecated",
                  DeprecationWarning, stacklevel=2)  # REP004
    return 0
