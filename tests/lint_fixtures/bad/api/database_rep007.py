"""REP007 negative fixture: full-content rehash on the update hot path.

The path places this under an ``api`` layer, where REP007 applies;
``_apply_write`` and the transaction ``__exit__`` are hot-path function
names, so both rehash calls below must fire — and nothing else.
"""


class Router:
    def __init__(self, db):
        self.db = db

    def _apply_write(self, name, tup, value):
        self.db.structure.set_weight(name, tup, value)
        # BAD: O(structure) rehash for one O(delta) write.
        return self.db.structure.full_fingerprint()


class Transaction:
    def __init__(self, db):
        self.db = db

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        # BAD: resynchronising from content on every transaction exit.
        self.db._expected_fp = self.db.structure.rehash()
