"""REP003 negative fixture: invalidation without the epoch bump."""


class PreparedQuery:
    def __init__(self, db):
        self.db = db
        self._plan = None

    def _invalidate(self):  # REP003: never bumps db._epoch
        self._plan = None
