"""Randomized cross-system integration battery.

Random sparse structures with unary/binary/ternary relations and weights,
random small queries — compiled circuits must agree with the naive oracle
in every semiring, and every front-end (engine, enumerator, FOG) must agree
with its own baseline.  These tests are the repository's strongest end-to-
end evidence.
"""

from __future__ import annotations

import random

import pytest

from repro.core import compile_structure_query
from repro.engine import WeightedQueryEngine
from repro.enumeration import AnswerEnumerator
from repro.graphs import enumerate_cliques, sparse_binomial, triangulated_grid
from repro.logic import (Atom, Bracket, Eq, StructureModel, Sum, Weight,
                         eval_expression, eval_formula, neq)
from repro.semirings import INTEGER, MIN_PLUS, NATURAL, ModularRing
from repro.structures import Structure, graph_structure


def rich_structure(seed: int, side: int = 3) -> Structure:
    """Sparse structure with E/2, R/1, T/3 and weights u/1, w/2, h/3."""
    graph = triangulated_grid(side, side)
    structure = graph_structure(graph)
    rng = random.Random(seed)
    for v in structure.domain:
        if rng.random() < 0.5:
            structure.add_tuple("R", (v,))
        structure.set_weight("u", (v,), rng.randint(0, 4))
    for edge in sorted(structure.relations["E"]):
        if rng.random() < 0.7:
            structure.set_weight("w", edge, rng.randint(1, 4))
    for clique in enumerate_cliques(graph, 3):
        if rng.random() < 0.6:
            structure.add_tuple("T", clique)
            structure.set_weight("h", clique, rng.randint(1, 3))
    return structure


E = lambda x, y: Atom("E", (x, y))
R = lambda x: Atom("R", (x,))
T = lambda x, y, z: Atom("T", (x, y, z))
u = lambda x: Weight("u", (x,))
w = lambda x, y: Weight("w", (x, y))
h = lambda x, y, z: Weight("h", (x, y, z))

QUERIES = {
    "hyperedge-weight": Sum(("x", "y", "z"), Bracket(T("x", "y", "z"))
                            * h("x", "y", "z")),
    "guarded-ternary": Sum(("x", "y", "z"),
                           Bracket(E("x", "y") & E("y", "z") & E("z", "x")
                                   & ~T("x", "y", "z")) * u("x")),
    "mixed-arity": Sum(("x", "y"), Bracket(E("x", "y") & R("x") & ~R("y"))
                       * w("x", "y") * u("y")),
    "eq-and-neg": Sum(("x", "y"),
                      Bracket((Eq("x", "y") & R("x"))
                              | (~E("x", "y") & neq("x", "y") & R("y")))
                      * u("x")),
    "two-blocks": Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))
                  + Sum("x", Bracket(R("x")) * u("x") * u("x")),
}

SEMIRINGS = [NATURAL, INTEGER, MIN_PLUS]


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_pipeline_battery(seed, query_name):
    structure = rich_structure(seed)
    expr = QUERIES[query_name]
    compiled = compile_structure_query(structure, expr)
    for sr in SEMIRINGS:
        expected = eval_expression(expr, StructureModel(structure, sr.zero),
                                   sr)
        assert sr.eq(compiled.evaluate(sr), expected), (query_name, sr.name)


@pytest.mark.parametrize("seed", range(2))
def test_dynamic_battery_ternary_weights(seed):
    structure = rich_structure(seed)
    expr = QUERIES["hyperedge-weight"]
    compiled = compile_structure_query(structure, expr)
    dynamic = compiled.dynamic(INTEGER)
    rng = random.Random(seed + 50)
    triples = sorted(structure.weights["h"])
    for _ in range(10):
        triple = rng.choice(triples)
        dynamic.update_weight("h", triple, rng.randint(0, 9))
        expected = eval_expression(expr, StructureModel(structure, 0),
                                   INTEGER)
        assert dynamic.value() == expected


@pytest.mark.parametrize("seed", range(2))
def test_dynamic_ternary_relation_toggles(seed):
    structure = rich_structure(seed)
    expr = QUERIES["guarded-ternary"]
    compiled = compile_structure_query(structure, expr,
                                       dynamic_relations=("T",))
    dynamic = compiled.dynamic(NATURAL)
    graph = triangulated_grid(3, 3)
    cliques = list(enumerate_cliques(graph, 3))
    rng = random.Random(seed + 9)
    for _ in range(8):
        clique = rng.choice(cliques)
        dynamic.set_relation("T", clique, rng.random() < 0.5)
        expected = eval_expression(expr, StructureModel(structure, 0),
                                   NATURAL)
        assert dynamic.value() == expected


@pytest.mark.parametrize("seed", range(2))
def test_engine_battery(seed):
    structure = rich_structure(seed)
    expr = Sum("y", Bracket(E("x", "y") & R("y")) * w("x", "y"))
    engine = WeightedQueryEngine(structure, expr, INTEGER)
    model = StructureModel(structure, 0)
    for v in structure.domain[:5]:
        assert engine.query(v) == eval_expression(expr, model, INTEGER,
                                                  {"x": v})


@pytest.mark.parametrize("seed", range(2))
def test_enumeration_battery(seed):
    structure = rich_structure(seed)
    formula = E("x", "y") & R("x") & ~T("x", "y", "y")
    enumerator = AnswerEnumerator(structure, formula, free_order=("x", "y"))
    model = StructureModel(structure)
    expected = sorted(
        (a, b) for a in structure.domain for b in structure.domain
        if eval_formula(formula, model, {"x": a, "y": b}))
    answers = sorted(enumerator)
    assert answers == expected
    assert len(answers) == len(set(answers))
    assert enumerator.count() == len(expected)


def test_binomial_graph_workload():
    """Sparse random graphs (G(n, c/n)) through the whole pipeline."""
    graph = sparse_binomial(40, 1.8, seed=3)
    structure = graph_structure(graph)
    rng = random.Random(1)
    for edge in sorted(structure.relations["E"]):
        structure.set_weight("w", edge, rng.randint(1, 5))
    expr = Sum(("x", "y"), Bracket(E("x", "y")) * w("x", "y"))
    compiled = compile_structure_query(structure, expr)
    for sr in (NATURAL, MIN_PLUS):
        expected = eval_expression(expr, StructureModel(structure, sr.zero),
                                   sr)
        assert sr.eq(compiled.evaluate(sr), expected)


def test_finite_ring_strategy_through_pipeline():
    """Z_m exercises the finite + ring dispatch inside circuit evaluation."""
    structure = rich_structure(1)
    sr = ModularRing(7)
    conv = {tup: value % 7 for tup, value in structure.weights["w"].items()}
    for tup, value in conv.items():
        structure.set_weight("w", tup, value)
    expr = QUERIES["mixed-arity"]
    compiled = compile_structure_query(structure, expr)
    for strategy in (None, "segment-tree", "recompute"):
        dynamic = compiled.dynamic(sr, strategy=strategy)
        expected = eval_expression(expr, StructureModel(structure, 0), sr)
        assert dynamic.value() == expected
